"""Observability smoke check (CI gate, also `make obs-smoke`).

Runs one small seeded simulation three ways — plain, traced+profiled,
and via the ``repro trace`` / ``repro profile`` CLI — and requires:

1. the JSONL trace parses line by line and round-trips through
   ``read_trace_jsonl`` with the event counts the sink reported;
2. the profiler saw every phase the run exercised;
3. **non-interference**: the traced+profiled result is bit-identical to
   the plain run (same fingerprint, same final loads) — observability
   must never perturb simulation state or RNG streams;
4. **shard non-interference**: a 2-shard parallel run fingerprints
   identically to the sequential run.

Under ``REPRO_SANITIZE=1`` (the CI ``sanitize-smoke`` job) the runtime
determinism sanitizer is live for every leg; the script then also
requires zero sanitizer reports and that an *unsanitized* rerun
fingerprints identically — instrumentation must be invisible.

Exits non-zero with a message on the first violated property.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SimulationConfig  # noqa: E402
from repro.obs import (  # noqa: E402
    JsonlTraceSink,
    PhaseProfiler,
    read_trace_jsonl,
    result_fingerprint,
)
from repro import sanitize  # noqa: E402
from repro.sim.trials import run_trial  # noqa: E402

CONFIG = SimulationConfig(
    strategy="invitation",
    n_nodes=60,
    n_tasks=2000,
    churn_rate=0.02,
    seed=11,
)
SIM_ARGS = [
    "--strategy", "invitation", "--nodes", "60", "--tasks", "2000",
    "--churn", "0.02", "--seed", "11",
]


def fail(msg: str) -> None:
    print(f"obs-smoke: FAIL — {msg}")
    sys.exit(1)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="obs_smoke_"))
    trace_path = workdir / "trace.jsonl"

    plain = run_trial(CONFIG)
    profiler = PhaseProfiler()
    with JsonlTraceSink(trace_path, buffer_events=32) as sink:
        observed = run_trial(CONFIG, trace=sink, profiler=profiler)

    # 1. the trace parses and round-trips
    lines = [l for l in trace_path.read_text().splitlines() if l]
    for line in lines:
        json.loads(line)
    events = list(read_trace_jsonl(trace_path))
    if len(events) != sink.n_written or len(lines) != sink.n_written:
        fail(
            f"event count mismatch: {len(lines)} lines, "
            f"{len(events)} parsed, sink reported {sink.n_written}"
        )

    # 2. the profiler saw the run's phases
    missing = {"strategy", "churn", "consumption", "measurement"} - set(
        profiler.calls
    )
    if missing:
        fail(f"profiler missed phase(s): {sorted(missing)}")

    # 3. non-interference: identical fingerprints with or without obs
    fp_plain = result_fingerprint(plain)
    fp_observed = result_fingerprint(observed)
    if fp_plain != fp_observed:
        fail(f"fingerprint diverged: {fp_plain} != {fp_observed}")
    if not np.array_equal(plain.final_loads, observed.final_loads):
        fail("final_loads diverged between plain and observed runs")

    # 4. shard non-interference: the parallel path fingerprints the same
    sharded = run_trial(CONFIG, shards=2, min_parallel_slots=1)
    fp_sharded = result_fingerprint(sharded)
    if fp_sharded != fp_plain:
        fail(f"sharded fingerprint diverged: {fp_sharded} != {fp_plain}")

    # 5. sanitizer: every leg above ran instrumented when the flag is
    #    set — require a clean report list, then prove the sanitizer
    #    itself does not perturb results by rerunning without it.
    if sanitize.enabled():
        if sanitize.report_count():
            fail(f"sanitizer violations: {sanitize.reports()}")
        flag = os.environ.pop(sanitize.ENV_FLAG)
        try:
            fp_bare = result_fingerprint(run_trial(CONFIG))
        finally:
            os.environ[sanitize.ENV_FLAG] = flag
        if fp_bare != fp_plain:
            fail(
                f"sanitizer perturbed the run: {fp_plain} (sanitized) "
                f"!= {fp_bare} (bare)"
            )
        print("obs-smoke: sanitizer live — zero reports, bit-identical")

    # 6. the CLI subcommands agree with the library fingerprint
    cli_trace = subprocess.run(
        [sys.executable, "-m", "repro", "trace", *SIM_ARGS,
         "--out", str(workdir / "cli_trace.jsonl"), "--json"],
        capture_output=True, text=True, check=True,
    )
    summary = json.loads(cli_trace.stdout)
    if summary["fingerprint"] != fp_plain:
        fail(
            f"CLI trace fingerprint {summary['fingerprint']} != {fp_plain}"
        )
    cli_profile = subprocess.run(
        [sys.executable, "-m", "repro", "profile", *SIM_ARGS, "--json"],
        capture_output=True, text=True, check=True,
    )
    payload = json.loads(cli_profile.stdout)
    if not payload["profile"]["phases"]:
        fail("CLI profile reported no phases")

    print(
        f"obs-smoke: OK — {sink.n_written} events traced, "
        f"{len(profiler.calls)} phases profiled, fingerprint {fp_plain} "
        "identical with observability on/off and across 2 shards"
    )


if __name__ == "__main__":
    main()
