#!/usr/bin/env python
"""Baseline-aware mypy driver (`make typecheck`).

Runs mypy over ``src/repro`` with the strictness ladder configured in
``pyproject.toml``, then filters the output against the committed
baseline ``scripts/mypy-baseline.txt``:

* an error line matching a baseline substring is *tolerated* (printed
  with a ``[baseline]`` tag, does not fail the run);
* any other error fails the run — new type errors cannot land;
* a baseline entry that matches nothing is reported so the file shrinks
  as debts are paid.

When mypy is not installed (the sandboxed test container ships only the
runtime deps) the script exits 0 with a notice: the typecheck gate is
CI's job, where ``pip install -e .[dev]`` provides the pinned mypy.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "scripts" / "mypy-baseline.txt"
TARGET = "src/repro"


def load_baseline() -> list[str]:
    if not BASELINE.is_file():
        return []
    return [
        line.strip()
        for line in BASELINE.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]


def main() -> int:
    try:
        import mypy  # noqa: F401
    except ImportError:
        print(
            "typecheck: mypy is not installed — skipping "
            "(install with `pip install -e .[dev]`; CI runs this gate)"
        )
        return 0

    proc = subprocess.run(
        [sys.executable, "-m", "mypy", TARGET],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    # mypy exits 0 (clean) or 1 (type errors found); anything else is a
    # crash, bad config, or usage error — nothing was actually checked,
    # so the gate must fail loudly instead of reporting "clean".
    if proc.returncode not in (0, 1):
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print(
            f"typecheck: mypy exited {proc.returncode} without a type "
            "report — failing"
        )
        return 1

    baseline = load_baseline()
    used: set[str] = set()
    new_errors: list[str] = []
    for line in proc.stdout.splitlines():
        if ": error:" not in line:
            continue
        matched = next((pat for pat in baseline if pat in line), None)
        if matched is not None:
            used.add(matched)
            print(f"[baseline] {line}")
        else:
            new_errors.append(line)

    # Exit 1 with no parseable error lines means the output format
    # drifted or errors went to stderr — failing blind beats passing.
    if proc.returncode == 1 and not new_errors and not used:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print("typecheck: mypy failed but no error lines parsed — failing")
        return 1

    for line in new_errors:
        print(line)
    stale = [pat for pat in baseline if pat not in used]
    for pat in stale:
        print(f"typecheck: stale baseline entry (no longer matches): {pat}")
    if new_errors:
        print(
            f"typecheck: {len(new_errors)} new type error(s) "
            f"({len(used)} tolerated by baseline)"
        )
        return 1
    print(
        f"typecheck: clean ({len(used)} baseline-tolerated, "
        f"{len(stale)} stale baseline entr(y/ies))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
