"""Adversarial-plane smoke check (CI gate, also `make adv-smoke`).

Runs a handful of small seeded simulations and requires the adversarial
Sybil plane's headline invariants (see docs/adversarial.md):

1. **default-off bit identity** — a run with an explicit default
   ``AdversaryModel()`` is bit-identical to one with no model at all;
2. **eclipse capture** — an undefended eclipse attack joins its full
   coordinated arc and captures a non-zero key fraction;
3. **detection** — per-arc density detection evicts a dense eclipse
   with precision and recall 1.0 and the run still completes;
4. **free-rider stranding** — rate-0 free-riders strand tasks and force
   a ``max_ticks`` truncation when no churn can recapture the keys,
   and the join-cost budget provably does *not* stop them;
5. the ``repro simulate --adv-*`` CLI surface reports the attack.

Under ``REPRO_SANITIZE=1`` (the CI ``sanitize-smoke`` job) every run
above executes with the runtime determinism sanitizer live; the script
then additionally requires zero sanitizer reports and that an
*unsanitized* rerun of the baseline is bit-identical.

Exits non-zero with a message on the first violated property.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro import sanitize  # noqa: E402
from repro.config import AdversaryModel, SimulationConfig  # noqa: E402
from repro.obs import result_fingerprint  # noqa: E402
from repro.sim.engine import TickEngine  # noqa: E402

BASE = dict(
    strategy="invitation",
    n_nodes=60,
    n_tasks=3000,
    churn_rate=0.02,
    max_sybils=5,
    seed=11,
)


def fail(msg: str) -> None:
    print(f"adv-smoke: FAIL — {msg}")
    sys.exit(1)


def run(adversary=None, **overrides):
    kwargs = {**BASE, **overrides}
    if adversary is not None:
        kwargs["adversary"] = adversary
    return TickEngine(SimulationConfig(**kwargs)).run()


def main() -> None:
    # 1. default-off bit identity
    plain = run()
    defaulted = run(adversary=AdversaryModel())
    if result_fingerprint(plain) != result_fingerprint(defaulted):
        fail("default AdversaryModel perturbed a seeded run")
    if defaulted.adversary is not None:
        fail("default AdversaryModel produced an adversary block")

    # 2. undefended eclipse captures keys
    eclipse = AdversaryModel(
        eclipse_sybils=12, eclipse_arc_fraction=0.01, attack_tick=5
    )
    attacked = run(adversary=eclipse, max_ticks=1500)
    adv = attacked.adversary
    if adv["slots_joined"] != 12:
        fail(f"eclipse joined {adv['slots_joined']}/12 slots")
    if not adv["captured_fraction_peak"] > 0:
        fail("eclipse captured nothing")

    # 3. density detection evicts the attacker cleanly
    defended = run(
        adversary=AdversaryModel(
            eclipse_sybils=12,
            eclipse_arc_fraction=0.01,
            attack_tick=5,
            detection_interval=10,
        ),
        max_ticks=1500,
    )
    adv = defended.adversary
    if adv["detection_precision"] != 1.0 or adv["detection_recall"] != 1.0:
        fail(
            "detection imperfect: precision="
            f"{adv['detection_precision']} recall={adv['detection_recall']}"
        )
    if not defended.completed:
        fail("detected-and-evicted run failed to complete")

    # 4. free-riders strand work, and the join budget does not stop them
    for defense in (
        AdversaryModel(free_riders=3, attack_tick=2),
        AdversaryModel(free_riders=3, attack_tick=2, join_cost=3),
    ):
        stranded = run(adversary=defense, churn_rate=0.0, max_ticks=120)
        if stranded.termination_reason != "max_ticks":
            fail(
                "free-rider run ended with "
                f"{stranded.termination_reason!r}, expected truncation"
            )
        if not stranded.adversary["stranded_tasks"] > 0:
            fail("free-riders stranded nothing")

    # 5. the CLI surface reports the attack
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "simulate",
            "--strategy", "invitation", "--nodes", "60", "--tasks", "3000",
            "--churn", "0.02", "--seed", "11", "--trials", "1",
            "--adv-eclipse-sybils", "12", "--adv-eclipse-arc", "0.01",
            "--adv-attack-tick", "5", "--adv-detection-interval", "10",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )
    if proc.returncode != 0:
        fail(f"repro simulate --adv-* exited {proc.returncode}:\n{proc.stderr}")
    if "adv captured fraction" not in proc.stdout:
        fail("CLI output missing adversary metrics:\n" + proc.stdout)

    # 6. sanitizer non-interference: all runs above were instrumented
    #    when the flag is set; reports must be empty and a bare rerun
    #    of the baseline must fingerprint identically.
    if sanitize.enabled():
        if sanitize.report_count():
            fail(f"sanitizer violations: {sanitize.reports()}")
        flag = os.environ.pop(sanitize.ENV_FLAG)
        try:
            bare = run()
        finally:
            os.environ[sanitize.ENV_FLAG] = flag
        if result_fingerprint(bare) != result_fingerprint(plain):
            fail("sanitizer perturbed a seeded adversarial run")
        print("adv-smoke: sanitizer live — zero reports, bit-identical")

    print("adv-smoke: OK — default-off identity, eclipse capture, "
          "clean detection, free-rider stranding, CLI surface")


if __name__ == "__main__":
    main()
