"""Live-ring smoke check (CI gate, also `make net-smoke`).

Boots a 4-node ``repro serve`` ring via :class:`LocalCluster`, runs a
~5s seeded stress workload against it, and requires:

1. every node prints READY and binds a real port;
2. the stress run completes with a non-zero success count;
3. the summary carries the pinned ``repro.stress.v1`` schema with a
   measurable latency distribution;
4. the ring shuts down cleanly (SIGTERM → exit) within a hard timeout.

The check runs once per strategy in ``STRATEGIES`` — ``none`` proves
the plain serving path, ``random_injection`` proves the live decision
loop can spawn Sybil identities without destabilising the ring.

A JSONL trace of each run is written next to the summary under
``--out`` (default: a temp dir); CI uploads it as an artifact when the
job fails.

Under ``REPRO_SANITIZE=1`` (the CI ``sanitize-smoke`` job) the stress
client runs with the runtime determinism sanitizer live and must end
with zero reports; the serve children inherit the flag, run their
event loops in debug mode, and exit non-zero on any violation — which
the clean-shutdown gate (property 4) then fails.

Exits non-zero with a message on the first violated property.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import sanitize  # noqa: E402
from repro.net.cluster import LocalCluster  # noqa: E402
from repro.net.stress import StressConfig, run_stress_sync  # noqa: E402
from repro.net.transport import RetryPolicy  # noqa: E402
from repro.obs import JsonlTraceSink  # noqa: E402

RING = 4
SEED = 2021  # the paper's year; any fixed value works
DURATION = 5.0
STOP_TIMEOUT = 15.0
STRATEGIES = ("none", "random_injection")


def fail(msg: str) -> None:
    print(f"net-smoke: FAIL — {msg}")
    sys.exit(1)


def run_one(strategy: str, out_dir: Path) -> None:
    trace_path = out_dir / f"net_smoke_{strategy}.jsonl"
    print(f"net-smoke: booting {RING}-node ring (strategy={strategy})")
    cluster = LocalCluster(
        RING,
        seed=SEED,
        strategy=strategy,
        sybil_threshold=0,
        max_sybils=3,
        maintenance_interval=0.1,
    )
    cluster.start()
    try:
        addrs = cluster.addrs()
        if len(addrs) != RING or any(port == 0 for _h, port in addrs):
            fail(f"ring did not fully bind: {addrs}")
        config = StressConfig(
            targets=tuple(addrs),
            duration=DURATION,
            concurrency=6,
            seed=SEED,
            prefill=3,
            key_pool=128,
            poll_interval=0.5,
            policy=RetryPolicy(timeout=2.0, retries=1),
        )
        with JsonlTraceSink(trace_path) as trace:
            summary = run_stress_sync(config, trace=trace)
        if sanitize.enabled() and sanitize.report_count():
            fail(
                "sanitizer violations on the stress side "
                f"(strategy={strategy}): {sanitize.reports()}"
            )
    finally:
        clean = cluster.stop(timeout=STOP_TIMEOUT)

    print(json.dumps(summary, indent=2, sort_keys=True))
    if summary["schema"] != "repro.stress.v1":
        fail(f"unexpected summary schema {summary['schema']!r}")
    if summary["requests"]["success"] == 0:
        fail(f"no request succeeded (strategy={strategy}); see {trace_path}")
    if summary["latency_ms"]["p50"] is None:
        fail("no latency distribution despite successes")
    if not clean:
        tails = {
            node.index: node.tail[-5:] for node in cluster.nodes
        }
        fail(
            f"ring did not shut down cleanly within {STOP_TIMEOUT}s; "
            f"tails: {tails}"
        )
    print(
        f"net-smoke: {strategy} OK — "
        f"{summary['requests']['success']} ok / "
        f"{summary['requests']['total']} total, "
        f"p50 {summary['latency_ms']['p50']}ms, clean shutdown"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSONL traces (default: a fresh temp dir)",
    )
    args = parser.parse_args()
    out_dir = args.out or Path(tempfile.mkdtemp(prefix="net_smoke_"))
    out_dir.mkdir(parents=True, exist_ok=True)
    for strategy in STRATEGIES:
        run_one(strategy, out_dir)
    print(f"net-smoke: OK (traces in {out_dir})")


if __name__ == "__main__":
    main()
