#!/usr/bin/env python
"""End-to-end smoke test of the distributed trial fabric.

Three legs, all against the same small sweep grid, all demanding the
byte-identity contract (``make fabric-smoke``, blocking in CI):

1. **Baseline** — serial ``repro sweep --jobs 1`` against a fresh cache
   → ``baseline.json``.
2. **Worker attach + kill** — ``repro fabric run --jobs 2 --listen`` on
   a fresh cache with an injected per-trial delay; a ``repro fabric
   worker`` process attaches mid-sweep, and the moment the status file
   shows it holding a lease it is SIGKILLed.  The broker must absorb the
   loss (lease expiry → requeue) and still produce a sweep document
   byte-identical to the baseline.
3. **Broker kill + resume** — ``repro fabric run`` on a fresh cache is
   SIGKILLed mid-grid; re-running the same command against the
   interrupted cache recomputes only the missing units and must again be
   byte-identical to the baseline.

Exit status 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

GRID_ARGS = [
    "--field", "churn_rate",
    "--values", "0,0.01",
    "--nodes", "60",
    "--tasks", "3000",
    "--trials", "4",
    "--seed", "11",
]

READY_PREFIX = "REPRO-FABRIC-READY "


def env_for(cache_dir: Path, delay_ms: int = 0) -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    if delay_ms:
        env["REPRO_TRIAL_DELAY_MS"] = str(delay_ms)
    else:
        env.pop("REPRO_TRIAL_DELAY_MS", None)
    return env


def cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def cached_trials(cache_dir: Path) -> int:
    return len(
        [
            p
            for p in (cache_dir / "trials").glob("*/*.json")
            if not p.name.startswith(".tmp-")
        ]
    )


def read_ready_line(proc: subprocess.Popen, deadline_s: float = 60) -> dict:
    """Parse the broker's REPRO-FABRIC-READY banner from stdout."""
    deadline = time.time() + deadline_s
    assert proc.stdout is not None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("broker exited before printing READY")
        if line.startswith(READY_PREFIX):
            return json.loads(line[len(READY_PREFIX):])
    raise RuntimeError("no READY line before deadline")


def wait_for_remote_lease(status_file: Path, deadline_s: float = 60) -> None:
    """Poll the broker's status file until a remote worker holds work."""
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        try:
            doc = json.loads(status_file.read_text())
        except (FileNotFoundError, ValueError):
            time.sleep(0.05)
            continue
        counters = doc.get("metrics", {}).get("counters", {})
        if counters.get("fabric.remote_leases", 0) >= 1:
            return
        time.sleep(0.05)
    raise RuntimeError("worker never leased a unit before the deadline")


def check_identical(candidate: Path, baseline: Path, label: str) -> bool:
    if candidate.read_bytes() != baseline.read_bytes():
        print(f"FAIL: {label} is not byte-identical to the baseline")
        return False
    return True


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-fabric-") as tmp:
        tmp_path = Path(tmp)
        baseline = tmp_path / "baseline.json"
        attach_out = tmp_path / "attach.json"
        resume_out = tmp_path / "resumed.json"
        cache_a = tmp_path / "cache_baseline"
        cache_b = tmp_path / "cache_attach"
        cache_c = tmp_path / "cache_killed"
        status_file = tmp_path / "status.json"

        print("[1/3] serial baseline sweep ...")
        subprocess.run(
            cli("sweep", *GRID_ARGS, "--jobs", "1", "--out", str(baseline)),
            env=env_for(cache_a), check=True, cwd=REPO, timeout=300,
        )

        print("[2/3] fabric run + worker attach, kill the worker ...")
        broker = subprocess.Popen(
            cli(
                "fabric", "run", *GRID_ARGS,
                "--jobs", "2",
                "--listen", "127.0.0.1:0",
                "--lease-timeout", "2",
                "--status-file", str(status_file),
                "--out", str(attach_out),
            ),
            env=env_for(cache_b, delay_ms=300),
            cwd=REPO, stdout=subprocess.PIPE, text=True,
        )
        worker = None
        try:
            ready = read_ready_line(broker)
            addr = f"{ready['host']}:{ready['port']}"
            print(f"      broker ready on {addr} ({ready['units']} units)")
            worker = subprocess.Popen(
                cli("fabric", "worker", "--connect", addr, "--name", "smoke"),
                env=env_for(cache_b, delay_ms=300), cwd=REPO,
            )
            wait_for_remote_lease(status_file)
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
            print("      worker killed mid-lease; waiting for the broker ...")
            broker.wait(timeout=300)
        finally:
            for proc in (worker, broker):
                if proc is not None and proc.poll() is None:
                    proc.kill()
        if broker.returncode != 0:
            print(f"FAIL: broker exited {broker.returncode} after worker kill")
            return 1
        if not check_identical(attach_out, baseline, "worker-kill run"):
            return 1
        status = json.loads(status_file.read_text())
        counters = status.get("metrics", {}).get("counters", {})
        if counters.get("fabric.remote_leases", 0) < 1:
            print("FAIL: no remote lease recorded in the final status")
            return 1
        print(
            "      OK: byte-identical with "
            f"{counters.get('fabric.remote_leases', 0)} remote lease(s), "
            f"{counters.get('fabric.lease_expired', 0)} expired"
        )

        print("[3/3] fabric run, SIGKILL the broker mid-grid, resume ...")
        # own session so the kill takes the whole process group: a
        # SIGKILLed pool parent cannot reap its spawn workers, which
        # would otherwise block forever on the shared call-queue pipe
        proc = subprocess.Popen(
            cli(
                "fabric", "run", *GRID_ARGS,
                "--jobs", "2",
                "--out", str(tmp_path / "ignored.json"),
            ),
            env=env_for(cache_c, delay_ms=300), cwd=REPO,
            start_new_session=True,
        )
        total = cached_trials(cache_a)
        deadline = time.time() + 120
        while time.time() < deadline:
            if cached_trials(cache_c) >= max(2, total // 4):
                break
            if proc.poll() is not None:
                print("FAIL: fabric run finished before the kill; raise "
                      "the trial count or delay")
                return 1
            time.sleep(0.05)
        else:
            os.killpg(proc.pid, signal.SIGKILL)
            print("FAIL: no trials cached before the deadline")
            return 1
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        partial = cached_trials(cache_c)
        if not 0 < partial < total:
            print(f"FAIL: kill did not land midway ({partial}/{total})")
            return 1
        print(f"      broker killed with {partial}/{total} trials cached")
        subprocess.run(
            cli(
                "fabric", "run", *GRID_ARGS,
                "--jobs", "2",
                "--out", str(resume_out),
            ),
            env=env_for(cache_c), check=True, cwd=REPO, timeout=300,
        )
        if not check_identical(resume_out, baseline, "resumed fabric run"):
            return 1
        print(
            f"OK: fabric smoke passed — worker-kill and broker-kill runs "
            f"both byte-identical to the serial baseline "
            f"({baseline.stat().st_size} bytes)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
