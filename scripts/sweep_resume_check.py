#!/usr/bin/env python
"""Kill a sweep midway, resume it, and demand bit-identical results.

The checkpoint/resume contract of the trial layer (``make
sweep-resume-check``, wired alongside ``make bench-check``):

1. run a quick-scale ``repro sweep`` uninterrupted against a fresh
   cache → ``baseline.json``;
2. start the *same* sweep against a second fresh cache with an injected
   per-trial delay (``REPRO_TRIAL_DELAY_MS``) and SIGKILL the process
   once part of the work is cached — a real mid-run crash, no cleanup;
3. re-run the same command against the interrupted cache (this *is* the
   resume: completed trials are cache hits, missing ones are computed)
   → ``resumed.json``;
4. assert ``resumed.json`` is byte-identical to ``baseline.json`` and
   that the resume actually reused cached trials.

Exit status 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SWEEP_ARGS = [
    "sweep",
    "--field", "churn_rate",
    "--values", "0,0.001,0.01",
    "--nodes", "60",
    "--tasks", "3000",
    "--trials", "4",
    "--seed", "11",
]


def sweep_cmd(out: Path) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *SWEEP_ARGS, "--out", str(out)]


def env_for(cache_dir: Path, delay_ms: int = 0) -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    if delay_ms:
        env["REPRO_TRIAL_DELAY_MS"] = str(delay_ms)
    else:
        env.pop("REPRO_TRIAL_DELAY_MS", None)
    return env


def cached_trials(cache_dir: Path) -> int:
    return len(list((cache_dir / "trials").glob("*/*.json")))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp:
        tmp_path = Path(tmp)
        cache_a = tmp_path / "cache_uninterrupted"
        cache_b = tmp_path / "cache_killed"
        baseline = tmp_path / "baseline.json"
        resumed = tmp_path / "resumed.json"

        print("[1/4] uninterrupted sweep ...")
        subprocess.run(
            sweep_cmd(baseline), env=env_for(cache_a), check=True,
            cwd=REPO, timeout=300,
        )

        print("[2/4] starting sweep, will SIGKILL midway ...")
        proc = subprocess.Popen(
            sweep_cmd(tmp_path / "ignored.json"),
            env=env_for(cache_b, delay_ms=150),
            cwd=REPO,
        )
        total = cached_trials(cache_a)
        deadline = time.time() + 120
        while time.time() < deadline:
            done = cached_trials(cache_b)
            if done >= max(2, total // 4):
                break
            if proc.poll() is not None:
                print("FAIL: delayed sweep finished before the kill; "
                      "raise the trial count or delay")
                return 1
            time.sleep(0.05)
        else:
            proc.kill()
            print("FAIL: no trials cached before the deadline")
            return 1
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        partial = cached_trials(cache_b)
        print(f"      killed with {partial}/{total} trials cached")
        if not 0 < partial < total:
            print("FAIL: kill did not land midway "
                  f"({partial}/{total} cached)")
            return 1

        print("[3/4] resuming the killed sweep ...")
        subprocess.run(
            sweep_cmd(resumed), env=env_for(cache_b), check=True,
            cwd=REPO, timeout=300,
        )

        print("[4/4] comparing results ...")
        base_bytes = baseline.read_bytes()
        res_bytes = resumed.read_bytes()
        if base_bytes != res_bytes:
            print("FAIL: resumed sweep is not bit-identical to the "
                  "uninterrupted run")
            return 1
        print(
            f"OK: resumed sweep bit-identical to uninterrupted run "
            f"({len(base_bytes)} bytes, {partial} trials reused from the "
            f"interrupted cache)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
