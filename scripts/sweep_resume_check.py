#!/usr/bin/env python
"""Kill a sweep midway, resume it, and demand bit-identical results.

The checkpoint/resume contract of the trial layer (``make
sweep-resume-check``, wired alongside ``make bench-check``):

1. run a quick-scale ``repro sweep`` uninterrupted against a fresh
   cache → ``baseline.json``;
2. start the *same* sweep against a second fresh cache with an injected
   per-trial delay (``REPRO_TRIAL_DELAY_MS``) and SIGKILL the process
   once part of the work is cached — a real mid-run crash, no cleanup;
3. re-run the same command against the interrupted cache (this *is* the
   resume: completed trials are cache hits, missing ones are computed)
   → ``resumed.json``;
4. assert ``resumed.json`` is byte-identical to ``baseline.json`` and
   that the resume actually reused cached trials;
5. repeat the kill/resume cycle through the fabric broker (``repro
   fabric run --jobs 2``): SIGKILL the broker mid-grid, resume against
   its cache, and demand the same bytes again — the work-queue dispatch
   path must honor the exact contract the serial sweep does.

Exit status 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

GRID_ARGS = [
    "--field", "churn_rate",
    "--values", "0,0.001,0.01",
    "--nodes", "60",
    "--tasks", "3000",
    "--trials", "4",
    "--seed", "11",
]

SWEEP_ARGS = ["sweep", *GRID_ARGS]

FABRIC_ARGS = ["fabric", "run", *GRID_ARGS, "--jobs", "2"]


def sweep_cmd(out: Path) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *SWEEP_ARGS, "--out", str(out)]


def fabric_cmd(out: Path) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *FABRIC_ARGS, "--out", str(out)]


def env_for(cache_dir: Path, delay_ms: int = 0) -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    if delay_ms:
        env["REPRO_TRIAL_DELAY_MS"] = str(delay_ms)
    else:
        env.pop("REPRO_TRIAL_DELAY_MS", None)
    return env


def cached_trials(cache_dir: Path) -> int:
    # exclude .tmp-* staging files: a SIGKILL mid-store leaves one
    # behind, and it is not a committed (resumable) trial
    return len(
        [
            p
            for p in (cache_dir / "trials").glob("*/*.json")
            if not p.name.startswith(".tmp-")
        ]
    )


def kill_midway(cmd: list[str], cache_dir: Path, total: int) -> int:
    """Start ``cmd``, SIGKILL it once part of the grid is cached.

    Returns the number of trials the kill preserved, or -1 on failure
    (with a diagnostic printed).  The victim runs in its own session so
    the kill takes its whole process group — a pooled run's spawn
    workers would otherwise outlive the parent forever, blocked on the
    shared call-queue pipe.
    """
    proc = subprocess.Popen(
        cmd, env=env_for(cache_dir, delay_ms=150), cwd=REPO,
        start_new_session=True,
    )
    deadline = time.time() + 120
    while time.time() < deadline:
        done = cached_trials(cache_dir)
        if done >= max(2, total // 4):
            break
        if proc.poll() is not None:
            print("FAIL: delayed run finished before the kill; "
                  "raise the trial count or delay")
            return -1
        time.sleep(0.05)
    else:
        os.killpg(proc.pid, signal.SIGKILL)
        print("FAIL: no trials cached before the deadline")
        return -1
    os.killpg(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    partial = cached_trials(cache_dir)
    print(f"      killed with {partial}/{total} trials cached")
    if not 0 < partial < total:
        print(f"FAIL: kill did not land midway ({partial}/{total} cached)")
        return -1
    return partial


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp:
        tmp_path = Path(tmp)
        cache_a = tmp_path / "cache_uninterrupted"
        cache_b = tmp_path / "cache_killed"
        cache_c = tmp_path / "cache_fabric_killed"
        baseline = tmp_path / "baseline.json"
        resumed = tmp_path / "resumed.json"
        fabric_resumed = tmp_path / "fabric_resumed.json"

        print("[1/6] uninterrupted sweep ...")
        subprocess.run(
            sweep_cmd(baseline), env=env_for(cache_a), check=True,
            cwd=REPO, timeout=300,
        )
        total = cached_trials(cache_a)

        print("[2/6] starting sweep, will SIGKILL midway ...")
        partial = kill_midway(
            sweep_cmd(tmp_path / "ignored.json"), cache_b, total
        )
        if partial < 0:
            return 1

        print("[3/6] resuming the killed sweep ...")
        subprocess.run(
            sweep_cmd(resumed), env=env_for(cache_b), check=True,
            cwd=REPO, timeout=300,
        )

        print("[4/6] comparing results ...")
        base_bytes = baseline.read_bytes()
        res_bytes = resumed.read_bytes()
        if base_bytes != res_bytes:
            print("FAIL: resumed sweep is not bit-identical to the "
                  "uninterrupted run")
            return 1
        print(
            f"      OK: bit-identical ({len(base_bytes)} bytes, {partial} "
            f"trials reused from the interrupted cache)"
        )

        print("[5/6] starting fabric broker, will SIGKILL midway ...")
        fab_partial = kill_midway(
            fabric_cmd(tmp_path / "ignored2.json"), cache_c, total
        )
        if fab_partial < 0:
            return 1

        print("[6/6] resuming through the fabric broker ...")
        subprocess.run(
            fabric_cmd(fabric_resumed), env=env_for(cache_c), check=True,
            cwd=REPO, timeout=300,
        )
        if fabric_resumed.read_bytes() != base_bytes:
            print("FAIL: resumed fabric run is not bit-identical to the "
                  "uninterrupted sweep")
            return 1
        print(
            f"OK: sweep and fabric resumes both bit-identical to the "
            f"uninterrupted run ({len(base_bytes)} bytes; fabric resume "
            f"reused {fab_partial} cached trials)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
