"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures (at ``quick`` scale by default — set ``REPRO_SCALE=full`` for
the paper's 100-trial versions) and reports the wall time through
pytest-benchmark.  The reproduced rows are printed so the benchmark run
doubles as the experiment log backing EXPERIMENTS.md.
"""

from __future__ import annotations

import os

# Pinned before numpy/numba ever spin up their pools: benchmark numbers
# must not depend on the host's core count, and the tick-engine shard
# benchmarks measure process fan-out, not hidden intra-op threading.
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("NUMBA_NUM_THREADS", "1")

import pytest

from repro.experiments.spec import ExperimentResult


@pytest.fixture(scope="session", autouse=True)
def _no_trial_cache():
    """Benchmarks time real work — cached trials would fake the numbers."""
    import os

    old = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "0"
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE", None)
    else:
        os.environ["REPRO_CACHE"] = old


def run_and_render(benchmark, fn, **kwargs) -> ExperimentResult:
    """Run an experiment once under the benchmark timer and print it."""
    result = benchmark.pedantic(
        lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def render(benchmark):
    def _run(fn, **kwargs) -> ExperimentResult:
        return run_and_render(benchmark, fn, **kwargs)

    return _run
