"""Benchmark/regeneration of Figures 13-14 — invitation."""

from repro.experiments import fig13_14_invitation


def test_fig13_14(render):
    result = render(fig13_14_invitation.run, seed=0)
    inv, none = result.data["fig13"].data["histograms"][35]
    assert inv.stats.max < none.stats.max  # paper: ~500 vs ~650
