"""Benchmark/regeneration of Table I — median task distribution."""

from repro.experiments import table1


def test_table1(render):
    result = render(table1.run, seed=0)
    # sanity: the exponential signature holds in the regenerated rows
    for row in result.rows:
        n_nodes, n_tasks, median = row[0], row[1], row[2]
        mean = n_tasks / n_nodes
        assert 0.6 * mean < median < 0.8 * mean  # ~ln2 * mean
