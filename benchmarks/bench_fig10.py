"""Benchmark/regeneration of Figure 10 — heterogeneous networks."""

from repro.experiments import fig10_hetero


def test_fig10(render):
    result = render(fig10_hetero.run, seed=0)
    inj, none = result.data["histograms"][35]
    assert inj.stats.idle_fraction < none.stats.idle_fraction
    assert inj.stats.gini < none.stats.gini
