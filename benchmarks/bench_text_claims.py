"""Benchmark/regeneration of the §VI scalar text claims (T1-T6)."""

from repro.experiments import text_claims


def test_text_claims(render):
    result = render(text_claims.run, seed=0)
    d = result.data
    # relational pass criteria (see module docstring)
    assert d["random_1000n_1e5t"] < d["smart_1000n_1e5t"]
    assert d["smart_1000n_1e5t"] < d["neighbor_1000n_1e5t"]
    assert d["neighbor_1000n_1e5t"] < d["none_1000n_1e5t"]
    assert d["invitation_1000n_1e5t"] < d["none_1000n_1e5t"]
    assert d["invitation_100n_1e5t"] < d["invitation_1000n_1e5t"]
    assert d["random_1000n_1e6t"] < d["random_1000n_1e5t"]
