"""Benchmark/regeneration of Figures 4-6 — churn histograms."""

from repro.experiments import fig04_06_churn


def test_fig04_06(render):
    result = render(fig04_06_churn.run, seed=0)
    h = result.data["histograms"]
    churn0, none0 = h[0]
    assert (churn0.counts == none0.counts).all()  # Fig 4: identical start
    churn35, none35 = h[35]
    assert churn35.stats.idle_fraction < none35.stats.idle_fraction  # Fig 6
