"""Benchmark/regeneration of the extension experiments.

Covers the four extension studies: skewed key distributions, the §VII
future-work strategies, the churn maintenance-cost frontier (footnote 2
made quantitative), and streaming task arrivals.
"""

from repro.experiments import (
    ext_arrivals,
    ext_future_work,
    ext_maintenance,
    ext_skew,
)


def test_ext_skew(render):
    result = render(ext_skew.run, seed=0)
    m = result.data["measured"]
    # skew inflates the baseline...
    assert m[("zipf", "none")] > 2 * m[("uniform", "none")]
    # ...and random injection stays the most robust rescuer
    assert m[("zipf", "random_injection")] < m[("zipf", "neighbor_injection")]
    assert m[("zipf", "random_injection")] < m[("zipf", "invitation")]


def test_ext_future_work(render):
    result = render(ext_future_work.run, seed=0)
    m = result.data["measured"]
    # every variant still massively beats no-strategy
    assert m["strength_invitation|hetero"] < m["none|hetero"]
    assert m["proportional_injection|hetero"] < m["none|hetero"]
    assert m["relocation|homog"] < m["none|homog"]
    # homogeneous proportional == random injection (p = 1 short-circuit)
    assert abs(
        m["proportional_injection|homog"] - m["random_injection|homog"]
    ) < 1e-9


def test_ext_maintenance(render):
    result = render(ext_maintenance.run, seed=0)
    m = result.data["measured"]
    rates = sorted(m)
    # factors fall with churn while key-transfer volume rises
    factors = [m[r]["factor"] for r in rates]
    moved = [m[r]["keys_moved"] for r in rates]
    assert factors[0] > factors[-1]
    assert moved[0] < moved[-1]
    # the Sybil point dominates the whole frontier
    assert result.data["sybil_factor"] < min(factors)


def test_ext_arrivals(render):
    result = render(ext_arrivals.run, seed=0)
    m = result.data["measured"]
    assert (
        m["random_injection"]["drain_after_arrivals"]
        < m["none"]["drain_after_arrivals"]
    )
    assert m["random_injection"]["factor"] < m["none"]["factor"]
