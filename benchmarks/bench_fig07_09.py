"""Benchmark/regeneration of Figures 7-9 — random injection histograms."""

from repro.experiments import fig07_09_random


def test_fig07_09(render):
    result = render(fig07_09_random.run, seed=0)
    inj5, none5 = result.data["fig07_08"].data["histograms"][5]
    assert inj5.stats.idle_fraction < none5.stats.idle_fraction  # Fig 7
    inj35, churn35 = result.data["fig09"].data["histograms"][35]
    assert inj35.stats.idle_fraction < churn35.stats.idle_fraction  # Fig 9
