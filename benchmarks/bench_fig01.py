"""Benchmark/regeneration of Figure 1 — workload distribution."""

from repro.experiments import fig01_distribution


def test_fig01(render):
    result = render(fig01_distribution.run, seed=0)
    rows = {r[0]: r[1] for r in result.rows}
    assert 650 < rows["median workload"] < 740
    assert rows["fraction above 10000 tasks"] > 0
