"""Benchmark/regeneration of Figures 2-3 — ring visual layouts."""

from repro.experiments import fig02_03_ring


def test_fig02_03(render):
    result = render(fig02_03_ring.run, seed=0)
    by_label = {r[0]: r for r in result.rows}
    # hashed nodes spread worse (or equal) than evenly spaced ones
    assert by_label["fig2 hashed"][4] >= by_label["fig3 even"][4]
