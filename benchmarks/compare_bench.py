"""Compare two pytest-benchmark JSON files and flag regressions.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 0.20] [--stat median]

Benchmarks are matched by ``fullname``.  Any benchmark whose chosen
statistic slowed down by more than ``--threshold`` (default 20%) versus
the baseline fails the check; the script exits non-zero so CI (or
``make bench-check``) can gate on it.  Benchmarks present in only one
file are reported but never fail the check — adding or retiring a
benchmark is not a regression.

When both the slab and naive churn-storm benchmarks are present in the
current file, the slab-vs-naive speedup is printed as well (this is the
headline number of DESIGN.md §5).

The tick-engine suite gets the same treatment: when the current file
holds ``test_tick_engine[...]`` results, the reference-vs-numpy kernel
speedup is printed per ring size, and ``--require-tick-speedup X``
turns it into a gate — the speedup is a within-run ratio, so unlike the
absolute baseline comparison it is meaningful even on a shared CI
runner whose clock differs from the baseline machine's.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_stats(path: str, stat: str) -> dict[str, float]:
    with open(path) as fh:
        data = json.load(fh)
    return {
        b["fullname"]: float(b["stats"][stat]) for b in data["benchmarks"]
    }


def storm_speedup(stats: dict[str, float], n_slots: int = 10_000) -> float | None:
    slab = naive = None
    for name, value in stats.items():
        if f"test_churn_storm_slab[{n_slots}]" in name:
            slab = value
        elif f"test_churn_storm_naive[{n_slots}]" in name:
            naive = value
    if slab and naive:
        return naive / slab
    return None


def _tick_engine_times(stats: dict[str, float]) -> dict[tuple[str, int], float]:
    """``(variant, n_slots) -> time`` for every tick-engine benchmark."""
    out: dict[tuple[str, int], float] = {}
    for name, value in stats.items():
        marker = "test_tick_engine["
        start = name.find(marker)
        if start < 0:
            continue
        params = name[start + len(marker):].rstrip("]").split("-")
        variant = next(
            (p for p in params if not p.isdigit()), None
        )
        size = next((int(p) for p in params if p.isdigit()), None)
        if variant is not None and size is not None:
            out[(variant, size)] = value
    return out


def tick_engine_speedups(stats: dict[str, float]) -> dict[int, float]:
    """Reference-vs-numpy kernel speedup per ring size."""
    times = _tick_engine_times(stats)
    sizes = sorted({n for _, n in times})
    return {
        n: times[("reference", n)] / times[("numpy", n)]
        for n in sizes
        if ("reference", n) in times and ("numpy", n) in times
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline pytest-benchmark JSON")
    parser.add_argument("current", help="current pytest-benchmark JSON")
    parser.add_argument(
        "--threshold",
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional slowdown before failing (default 0.20); "
        "--tolerance is an alias",
    )
    parser.add_argument(
        "--require-tick-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the current file's tick-engine reference-vs-"
        "numpy speedup is at least X at the largest ring size present "
        "(a within-run ratio: robust to machine differences)",
    )
    parser.add_argument(
        "--stat",
        default="median",
        choices=["min", "median", "mean"],
        help="which statistic to compare (default median; median is the "
        "most robust of the three on shared machines)",
    )
    args = parser.parse_args(argv)

    base = load_stats(args.baseline, args.stat)
    cur = load_stats(args.current, args.stat)

    regressions: list[tuple[str, float]] = []
    width = max((len(n) for n in base), default=0)
    for name in sorted(base):
        if name not in cur:
            print(f"~ {name}: only in baseline (skipped)")
            continue
        ratio = cur[name] / base[name]
        marker = " "
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
            marker = "!"
        print(f"{marker} {name:<{width}}  {ratio:6.2f}x baseline")
    for name in sorted(set(cur) - set(base)):
        print(f"+ {name}: new benchmark (skipped)")

    speedup = storm_speedup(cur)
    if speedup is not None:
        print(f"\nchurn-storm slab speedup vs naive (10k slots): "
              f"{speedup:.2f}x")

    tick = tick_engine_speedups(cur)
    for n_slots, ratio in tick.items():
        print(
            f"tick-engine kernel speedup vs reference "
            f"({n_slots} slots): {ratio:.2f}x"
        )
    if args.require_tick_speedup is not None:
        if not tick:
            print(
                "\nFAIL: --require-tick-speedup given but the current "
                "file has no tick-engine reference/numpy pair",
                file=sys.stderr,
            )
            return 1
        largest = max(tick)
        if tick[largest] < args.require_tick_speedup:
            print(
                f"\nFAIL: tick-engine speedup at {largest} slots is "
                f"{tick[largest]:.2f}x < required "
                f"{args.require_tick_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} ({args.stat}):",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
