"""Benchmark/regeneration of Figures 11-12 — neighbor injection."""

from repro.experiments import fig11_12_neighbor


def test_fig11_12(render):
    result = render(fig11_12_neighbor.run, seed=0)
    neighbor, none = result.data["fig11"].data["histograms"][35]
    assert neighbor.stats.max < none.stats.max  # paper: ~450 vs ~650
    smart, none12 = result.data["fig12"].data["histograms"][35]
    assert smart.stats.max < none12.stats.max
