"""Benchmarks of the protocol-level Chord stack.

Tracks lookup cost (the O(log N) claim), maintenance-round cost, and the
cross-layer validation run (paper strategies over real protocol joins).
"""

import numpy as np

from repro.chord.balance import ProtocolSimulation
from repro.chord.ring import ChordRing
from repro.config import SimulationConfig
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(32)


def test_lookup_hops(benchmark):
    ring = ChordRing.create(128, space=SPACE, seed=0)

    def lookups():
        return ring.lookup_hops_sample(100)

    hops = benchmark(lookups)
    # O(log n): 128 nodes -> log2 = 7
    assert hops.mean() < 7
    assert hops.max() <= 14


def test_maintenance_round(benchmark):
    ring = ChordRing.create(128, space=SPACE, seed=0)
    benchmark(ring.maintenance_round)
    ring.verify()


def test_protocol_balancing_run(benchmark):
    """Random injection over real Chord joins (cross-layer validation)."""

    def run():
        config = SimulationConfig(
            strategy="random_injection",
            n_nodes=40,
            n_tasks=1200,
            bits=32,
            seed=3,
            max_ticks=5000,
        )
        return ProtocolSimulation(config).run()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("protocol random_injection:", {
        k: round(v, 3) if isinstance(v, float) else v
        for k, v in out.items()
    })
    assert out["completed"]
    assert out["sybils_created"] > 0


def test_recursive_vs_iterative_lookup(benchmark):
    """Compare the two lookup modes' hop counts (Chord paper §4)."""
    import numpy as np

    ring = ChordRing.create(128, space=SPACE, seed=1)
    node = ring.network.node(ring.network.alive_ids()[0])
    rng = np.random.default_rng(2)
    keys = [int(k) for k in rng.integers(0, SPACE.size, size=100)]

    def recursive_lookups():
        return [node.find_successor_recursive(k) for k in keys]

    results = benchmark(recursive_lookups)
    rec_hops = np.mean([h for _, h in results])
    it_hops = np.mean([node.find_successor(k)[1] for k in keys])
    print(f"\nmean hops: recursive={rec_hops:.2f} iterative={it_hops:.2f}")
    for key in keys[:20]:
        assert (
            node.find_successor(key)[0]
            == node.find_successor_recursive(key)[0]
        )


def test_overlay_topology(benchmark):
    """Graph-theoretic check of the routing structure (needs networkx)."""
    pytest = __import__("pytest")
    pytest.importorskip("networkx")
    from repro.analysis.topology import analyze_topology

    ring = ChordRing.create(128, space=SPACE, seed=1)
    report = benchmark.pedantic(
        lambda: analyze_topology(ring), rounds=1, iterations=1
    )
    print(f"\n{report.as_dict()}")
    assert report.strongly_connected
