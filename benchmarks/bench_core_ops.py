"""Micro-benchmarks of the simulator's hot primitives.

Not a paper artifact: these track the performance engineering that makes
the 100-trial paper-scale sweeps feasible (see DESIGN.md §5) —
vectorized consumption, key assignment, and split/merge costs.
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.hashspace.idspace import SPACE_64
from repro.sim.arcops import responsible_slots
from repro.sim.engine import TickEngine
from repro.sim.state import RingState
from repro.sim.workload import draw_task_keys, draw_unique_ids


@pytest.fixture
def loaded_state(rng=None):
    rng = np.random.default_rng(0)
    ids = draw_unique_ids(1000, SPACE_64, rng)
    keys = draw_task_keys(100_000, SPACE_64, rng)
    return RingState.build(
        SPACE_64, ids, np.arange(1000, dtype=np.int64), keys, rng
    )


def test_initial_assignment_1m_keys(benchmark):
    """Sorting + bucketing one million task keys onto 1000 nodes."""
    rng = np.random.default_rng(0)
    ids = np.sort(draw_unique_ids(1000, SPACE_64, rng))
    keys = draw_task_keys(1_000_000, SPACE_64, rng)

    def assign():
        return responsible_slots(ids, keys)

    slots = benchmark(assign)
    assert slots.shape == keys.shape


def test_engine_tick_throughput_baseline(benchmark):
    """Ticks/second on the vectorized fast path (no Sybils)."""
    engine = TickEngine(
        SimulationConfig(n_nodes=1000, n_tasks=1_000_000, seed=0)
    )

    def hundred_ticks():
        for _ in range(100):
            engine.step()

    benchmark.pedantic(hundred_ticks, rounds=3, iterations=1)
    assert engine.tick >= 300


def test_engine_tick_throughput_with_sybils(benchmark):
    """Ticks/second on the multi-slot path (random injection active)."""
    engine = TickEngine(
        SimulationConfig(
            strategy="random_injection",
            n_nodes=1000,
            n_tasks=1_000_000,
            seed=0,
        )
    )
    for _ in range(30):  # warm up: let sybils appear
        engine.step()

    def fifty_ticks():
        for _ in range(50):
            engine.step()

    benchmark.pedantic(fifty_ticks, rounds=3, iterations=1)
    assert engine.state.n_sybil_slots > 0


def test_split_merge_cycle(benchmark, loaded_state):
    """Insert a Sybil into the heaviest slot, then remove it."""
    state = loaded_state
    rng = np.random.default_rng(1)

    def cycle():
        slot = int(np.argmax(state.counts))
        start, end = state.slot_arc(slot)
        ident = state.space.random_in_interval(rng, start, end)
        if state.id_exists(ident):
            return
        pos, _ = state.insert_slot(ident, owner=2000, is_main=False)
        state.remove_slot(pos)

    benchmark(cycle)
    state.verify_invariants()


def test_full_trial_baseline(benchmark):
    """One full no-strategy trial at paper scale (1000n / 1e5t)."""

    def trial():
        return TickEngine(
            SimulationConfig(n_nodes=1000, n_tasks=100_000, seed=1)
        ).run()

    result = benchmark.pedantic(trial, rounds=1, iterations=1)
    assert result.completed


def test_full_trial_random_injection(benchmark):
    """One full random-injection trial at paper scale (1000n / 1e5t)."""

    def trial():
        return TickEngine(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=1000,
                n_tasks=100_000,
                seed=1,
            )
        ).run()

    result = benchmark.pedantic(trial, rounds=1, iterations=1)
    assert result.completed
    assert result.runtime_factor < 2.5
