"""Micro-benchmarks of the simulator's hot primitives.

Not a paper artifact: these track the performance engineering that makes
the 100-trial paper-scale sweeps feasible (see DESIGN.md §5) —
vectorized consumption, key assignment, split/merge costs, and the
PR 6 tick-engine suite (grouped-CSR kernels, shard fan-out) whose
committed reference lives in ``BENCH_tick_engine.json``.
"""

import os
import types

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.hashspace.idspace import SPACE_64
from repro.sim.arcops import responsible_slots
from repro.sim.engine import TickEngine
from repro.sim.kernels import HAVE_NUMBA, consume_grouped_reference
from repro.sim.reference import NaiveRingState
from repro.sim.shard import ShardedTickEngine
from repro.sim.state import RingState
from repro.sim.workload import draw_task_keys, draw_unique_ids


@pytest.fixture
def loaded_state(rng=None):
    rng = np.random.default_rng(0)
    ids = draw_unique_ids(1000, SPACE_64, rng)
    keys = draw_task_keys(100_000, SPACE_64, rng)
    return RingState.build(
        SPACE_64, ids, np.arange(1000, dtype=np.int64), keys, rng
    )


def test_initial_assignment_1m_keys(benchmark):
    """Sorting + bucketing one million task keys onto 1000 nodes."""
    rng = np.random.default_rng(0)
    ids = np.sort(draw_unique_ids(1000, SPACE_64, rng))
    keys = draw_task_keys(1_000_000, SPACE_64, rng)

    def assign():
        return responsible_slots(ids, keys)

    slots = benchmark(assign)
    assert slots.shape == keys.shape


def test_engine_tick_throughput_baseline(benchmark):
    """Ticks/second on the vectorized fast path (no Sybils)."""
    engine = TickEngine(
        SimulationConfig(n_nodes=1000, n_tasks=1_000_000, seed=0)
    )

    def hundred_ticks():
        for _ in range(100):
            engine.step()

    benchmark.pedantic(hundred_ticks, rounds=3, iterations=1)
    assert engine.tick >= 300


def test_engine_tick_throughput_with_sybils(benchmark):
    """Ticks/second on the multi-slot path (random injection active)."""
    engine = TickEngine(
        SimulationConfig(
            strategy="random_injection",
            n_nodes=1000,
            n_tasks=1_000_000,
            seed=0,
        )
    )
    for _ in range(30):  # warm up: let sybils appear
        engine.step()

    def fifty_ticks():
        for _ in range(50):
            engine.step()

    benchmark.pedantic(fifty_ticks, rounds=3, iterations=1)
    assert engine.state.n_sybil_slots > 0


def test_split_merge_cycle(benchmark, loaded_state):
    """Insert a Sybil into the heaviest slot, then remove it."""
    state = loaded_state
    rng = np.random.default_rng(1)

    def cycle():
        slot = int(np.argmax(state.counts))
        start, end = state.slot_arc(slot)
        ident = state.space.random_in_interval(rng, start, end)
        if state.id_exists(ident):
            return
        pos, _ = state.insert_slot(ident, owner=2000, is_main=False)
        state.remove_slot(pos)

    benchmark(cycle)
    state.verify_invariants()


# ----------------------------------------------------------------------
# churn-storm / Sybil-storm: slab vs. the naive np.insert/np.delete ring
# ----------------------------------------------------------------------
# These are the structural-op stress tests behind the slab rewrite
# (DESIGN.md §5): under aggressive churn or heavy Sybil injection the
# per-op full-array copies of the naive ring dominate the tick loop.
# The ``[naive]`` variants run the reference implementation so the two
# timings in one benchmark JSON document the speedup directly.

def _build_ring(cls, n_slots, seed=0):
    rng = np.random.default_rng(seed)
    ids = draw_unique_ids(n_slots, SPACE_64, rng)
    keys = draw_task_keys(10 * n_slots, SPACE_64, rng)
    return cls.build(
        SPACE_64, ids, np.arange(n_slots, dtype=np.int64), keys, rng
    )


def _churn_storm_script(n_slots, n_ticks, churn=0.01, seed=42):
    """Precompute leaver owners and joiner ids for a churn storm.

    1% of owners leave and as many join per tick; the same script drives
    both implementations so the comparison measures structural-op cost,
    not trajectory differences.
    """
    rng = np.random.default_rng(seed)
    per_tick = max(1, int(n_slots * churn))
    live = list(range(n_slots))
    next_owner = n_slots
    script = []
    for _ in range(n_ticks):
        picks = rng.choice(len(live), size=per_tick, replace=False)
        leavers = [live[i] for i in picks]
        for i in sorted(picks, reverse=True):
            live.pop(i)
        join_ids = rng.integers(
            0, SPACE_64.size, size=per_tick, dtype=np.uint64
        ).tolist()  # plain ints, as the engine's id-draw hands over
        joiners = list(range(next_owner, next_owner + per_tick))
        live.extend(joiners)
        next_owner += per_tick
        script.append((leavers, join_ids, joiners))
    return script


def _run_churn_storm_naive(state, script):
    for leavers, join_ids, joiners in script:
        for owner in leavers:
            if state.n_slots - state.slots_of_owner(owner).size >= 1:
                state.remove_owner(owner)
        for ident, owner in zip(join_ids, joiners):
            if not state.id_exists(ident):
                state.insert_slot(ident, owner, is_main=True)


def _run_churn_storm_slab(state, script):
    for leavers, join_ids, joiners in script:
        removal = state.begin_batch_removal(leavers)
        for owner in leavers:
            removal.remove_owner_guarded(owner)
        removal.commit()
        insertion = state.begin_batch_insertion()
        for ident, owner in zip(join_ids, joiners):
            if not insertion.id_exists(ident):
                insertion.add(ident, owner, is_main=True)
        insertion.commit()


@pytest.mark.parametrize("n_slots", [1_000, 10_000, 100_000])
def test_churn_storm_slab(benchmark, n_slots):
    """Batched churn ticks on the slab ring (1% churn/tick)."""
    script = _churn_storm_script(n_slots, n_ticks=10)

    def fresh_ring():
        return (_build_ring(RingState, n_slots), script), {}

    def storm(state, script):
        _run_churn_storm_slab(state, script)
        return state

    state = benchmark.pedantic(storm, setup=fresh_ring, rounds=5)
    state.verify_invariants()


@pytest.mark.parametrize("n_slots", [1_000, 10_000])
def test_churn_storm_naive(benchmark, n_slots):
    """The historical per-op np.insert/np.delete churn path."""
    script = _churn_storm_script(n_slots, n_ticks=10)

    def fresh_ring():
        return (_build_ring(NaiveRingState, n_slots), script), {}

    def storm(state, script):
        _run_churn_storm_naive(state, script)
        return state

    state = benchmark.pedantic(storm, setup=fresh_ring, rounds=5)
    state.verify_invariants()


def _sybil_storm_ids(n_slots, per_owner, seed=7):
    rng = np.random.default_rng(seed)
    n_sybils = n_slots * per_owner
    return rng.integers(
        0, SPACE_64.size, size=n_sybils, dtype=np.uint64
    ).tolist()


def _run_sybil_storm(state, sybil_ids, n_owners, per_owner):
    injected = 0
    for i, ident in enumerate(sybil_ids):
        if not state.id_exists(ident):
            state.insert_slot(ident, i % n_owners, is_main=False)
            injected += 1
    for owner in range(n_owners):
        state.retire_sybils(owner)
    return injected


@pytest.mark.parametrize(
    "cls,n_slots",
    [
        (RingState, 1_000),
        (RingState, 10_000),
        (NaiveRingState, 1_000),
        (NaiveRingState, 10_000),
    ],
    ids=["slab-1k", "slab-10k", "naive-1k", "naive-10k"],
)
def test_sybil_storm(benchmark, cls, n_slots):
    """Every owner injects 2 Sybils, then all Sybils are retired —
    the worst-case structural load a strategy round can generate."""
    per_owner = 2
    sybil_ids = _sybil_storm_ids(n_slots, per_owner)

    def fresh_ring():
        return (_build_ring(cls, n_slots),), {}

    def storm(state):
        _run_sybil_storm(state, sybil_ids, n_slots, per_owner)
        return state

    state = benchmark.pedantic(storm, setup=fresh_ring, rounds=5)
    state.verify_invariants()
    assert state.n_sybil_slots == 0


# ----------------------------------------------------------------------
# tick-engine suite: grouped-CSR kernels and shard fan-out (PR 6)
# ----------------------------------------------------------------------
# A Sybil-laden ring (every owner keeps its main identity, half carry a
# Sybil) forces the multi-slot consumption path at 10^4 / 10^5 — and,
# under REPRO_SCALE=full, 10^6 — slots.  The ``[reference]`` variant
# runs the historical per-tick lexsort consumption so one JSON file
# documents the kernel speedup; shard variants time the worker-pool
# fan-out.  The committed reference is BENCH_tick_engine.json and
# ``compare_bench.py`` prints/gates the reference-vs-numpy ratio.

TICK_ENGINE_SIZES = [10_000, 100_000]
if os.environ.get("REPRO_SCALE") == "full":
    TICK_ENGINE_SIZES.append(1_000_000)

TICK_ENGINE_BACKENDS = ["reference", "numpy"] + (
    ["numba"] if HAVE_NUMBA else []
)


def _sybil_laden_engine(n_slots, cls=TickEngine, backend=None, **kwargs):
    """Engine whose ring has ``n_slots`` slots, one third of them Sybils."""
    n_nodes = (2 * n_slots) // 3
    config = SimulationConfig(
        n_nodes=n_nodes,
        n_tasks=30 * n_slots,  # never drains inside the timed ticks
        max_sybils=6,
        seed=0,
    )
    engine = cls(config, backend=backend, **kwargs)
    rng = np.random.default_rng(99)
    insertion = engine.state.begin_batch_insertion()
    injected = 0
    owner = 0
    while injected < n_slots - n_nodes:
        ident = int(rng.integers(0, SPACE_64.size, dtype=np.uint64))
        if insertion.id_exists(ident):
            continue
        insertion.add(ident, owner, is_main=False)
        engine.owners.register_sybil(owner)
        injected += 1
        owner += 1
    insertion.commit()
    assert engine.state.n_slots == n_slots
    return engine


def _reference_consumption_engine(n_slots):
    """The pre-PR-6 engine: per-tick lexsort, no CSR cache, no kernels."""
    engine = _sybil_laden_engine(n_slots)

    def _consume_reference(self):
        state = self.state
        return consume_grouped_reference(
            state.counts, state.owner, self.owners.rate
        )

    engine._consume_multi_slot = types.MethodType(
        _consume_reference, engine
    )
    return engine


@pytest.mark.parametrize("n_slots", TICK_ENGINE_SIZES)
@pytest.mark.parametrize("variant", TICK_ENGINE_BACKENDS)
def test_tick_engine(benchmark, n_slots, variant):
    """Multi-slot tick throughput per consumption backend."""
    if variant == "reference":
        engine = _reference_consumption_engine(n_slots)
    else:
        engine = _sybil_laden_engine(n_slots, backend=variant)
    engine.step()  # warm caches (owner index, CSR groups, jit)

    def five_ticks():
        for _ in range(5):
            engine.step()

    benchmark.pedantic(five_ticks, rounds=5, iterations=1)
    assert engine.total_consumed > 0
    assert engine.state.n_sybil_slots > 0  # multi-slot path engaged


@pytest.mark.parametrize("n_slots", TICK_ENGINE_SIZES)
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_tick_engine_sharded(benchmark, n_slots, shards):
    """Multi-slot tick throughput through the shard worker pool."""
    engine = _sybil_laden_engine(
        n_slots,
        cls=ShardedTickEngine,
        shards=shards,
        min_parallel_slots=1,
    )
    try:
        engine.step()  # warm caches, spawn the pool, mirror the slabs

        def five_ticks():
            for _ in range(5):
                engine.step()

        benchmark.pedantic(five_ticks, rounds=5, iterations=1)
        assert engine.total_consumed > 0
        if shards > 1:
            assert engine._pool is not None  # fan-out actually engaged
    finally:
        engine.close()


def test_full_trial_baseline(benchmark):
    """One full no-strategy trial at paper scale (1000n / 1e5t)."""

    def trial():
        return TickEngine(
            SimulationConfig(n_nodes=1000, n_tasks=100_000, seed=1)
        ).run()

    result = benchmark.pedantic(trial, rounds=1, iterations=1)
    assert result.completed


def test_full_trial_random_injection(benchmark):
    """One full random-injection trial at paper scale (1000n / 1e5t)."""

    def trial():
        return TickEngine(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=1000,
                n_tasks=100_000,
                seed=1,
            )
        ).run()

    result = benchmark.pedantic(trial, rounds=1, iterations=1)
    assert result.completed
    assert result.runtime_factor < 2.5
