"""Benchmark/regeneration of the ablations A-F over secondary variables."""

from repro.experiments import ablations


def test_ablations(render):
    result = render(ablations.run, seed=0)
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    # C: more successors help neighbor injection
    assert (
        rows[("C", "numSuccessors=10 (neighbor)")]
        <= rows[("C", "numSuccessors=5 (neighbor)")] + 0.1
    )
    # E: churn does not help random injection (within noise)
    assert (
        rows[("E", "random injection + churn=0.01")]
        >= rows[("E", "random injection + churn=0.0")] - 0.25
    )
