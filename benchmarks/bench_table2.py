"""Benchmark/regeneration of Table II — runtime factor under churn."""

from repro.experiments import table2


def test_table2(render):
    result = render(table2.run, seed=0)
    measured = result.data["measured"]
    networks = result.data["networks"]
    # shape: for every network, factors fall monotonically with churn
    for net in networks:
        series = [measured[churn][net] for churn in table2.CHURN_RATES]
        assert all(a >= b - 0.15 for a, b in zip(series, series[1:])), (
            net,
            series,
        )
    # churn gains grow with the task count (paper's key observation),
    # compared at fixed node count
    assert measured[0.01][(1000, 1_000_000)] < measured[0.01][(1000, 100_000)]
