PYTHON ?= python
export PYTHONPATH := src

# committed reference produced by `make bench-baseline`
BENCH_BASELINE := benchmarks/BENCH_core_ops_slab.json
BENCH_CURRENT  := benchmarks/.bench_current.json

.PHONY: test bench bench-baseline bench-check figures

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/bench_core_ops.py --benchmark-only \
		--benchmark-json=$(BENCH_CURRENT)

bench-baseline:
	$(PYTHON) -m pytest benchmarks/bench_core_ops.py --benchmark-only \
		--benchmark-json=$(BENCH_BASELINE)

# re-run the benchmarks and fail on a >20% median regression versus the
# committed baseline (see benchmarks/compare_bench.py)
bench-check: bench
	$(PYTHON) benchmarks/compare_bench.py $(BENCH_BASELINE) $(BENCH_CURRENT)

figures:
	$(PYTHON) -m repro.cli figures --out figures/
