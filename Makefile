PYTHON ?= python
export PYTHONPATH := src

# committed references produced by `make bench-baseline` / `make
# bench-tick-baseline`
BENCH_BASELINE := benchmarks/BENCH_core_ops_slab.json
BENCH_CURRENT  := benchmarks/.bench_current.json
BENCH_TICK_BASELINE := benchmarks/BENCH_tick_engine.json
BENCH_TICK_CURRENT  := benchmarks/.bench_tick_current.json

.PHONY: test lint typecheck bench bench-baseline bench-check \
	bench-tick bench-tick-baseline bench-tick-check \
	sweep-resume-check fabric-smoke obs-smoke net-smoke adv-smoke \
	sanitize-smoke check figures

test:
	$(PYTHON) -m pytest -x -q

# reprolint: determinism/correctness AST rules (R001-R009, including
# the cross-module concurrency pass); exits non-zero on any
# error-severity finding
lint:
	$(PYTHON) -m repro.cli lint src

# baseline-aware mypy (skips with a notice when mypy is not installed;
# CI installs the pinned version from the `dev` extra)
typecheck:
	$(PYTHON) scripts/typecheck.py

bench:
	$(PYTHON) -m pytest benchmarks/bench_core_ops.py -k "not tick_engine" \
		--benchmark-only --benchmark-json=$(BENCH_CURRENT)

bench-baseline:
	$(PYTHON) -m pytest benchmarks/bench_core_ops.py -k "not tick_engine" \
		--benchmark-only --benchmark-json=$(BENCH_BASELINE)

# re-run the benchmarks and fail on a >20% median regression versus the
# committed baseline (see benchmarks/compare_bench.py)
bench-check: bench
	$(PYTHON) benchmarks/compare_bench.py $(BENCH_BASELINE) $(BENCH_CURRENT)

# tick-engine suite (PR 6): multi-slot consumption backends + shard
# fan-out.  The hard gate is the within-run reference-vs-numpy kernel
# speedup (>=3x at the largest ring size) — a machine-independent
# ratio.  The absolute baseline comparison uses a loose tolerance: the
# sharded variants' medians are dominated by pool round-trip latency,
# which jitters with host load.
bench-tick:
	$(PYTHON) -m pytest benchmarks/bench_core_ops.py -k tick_engine \
		--benchmark-only --benchmark-json=$(BENCH_TICK_CURRENT)

bench-tick-baseline:
	$(PYTHON) -m pytest benchmarks/bench_core_ops.py -k tick_engine \
		--benchmark-only --benchmark-json=$(BENCH_TICK_BASELINE)

bench-tick-check: bench-tick
	$(PYTHON) benchmarks/compare_bench.py $(BENCH_TICK_BASELINE) \
		$(BENCH_TICK_CURRENT) --tolerance 1.0 --require-tick-speedup 3.0

# kill a quick-scale sweep midway (SIGKILL), resume it from the trial
# cache, and require the merged TrialSet to be bit-identical to an
# uninterrupted run (see scripts/sweep_resume_check.py)
sweep-resume-check:
	$(PYTHON) scripts/sweep_resume_check.py

# distributed trial fabric end-to-end: serial baseline vs `repro fabric
# run` with a socket-attached worker SIGKILLed mid-lease, plus a broker
# SIGKILL + resume — both byte-identical (see scripts/fabric_smoke.py)
fabric-smoke:
	$(PYTHON) scripts/fabric_smoke.py

# run a tiny traced+profiled simulation, assert the JSONL parses and
# that results are bit-identical with observability on or off
obs-smoke:
	$(PYTHON) scripts/obs_smoke.py

# boot a 4-node `repro serve` ring, run a ~5s seeded stress workload
# per strategy (none + random_injection), require non-zero successes
# and a clean SIGTERM shutdown (see scripts/net_smoke.py)
net-smoke:
	$(PYTHON) scripts/net_smoke.py

# seeded adversarial-plane invariants: default-off bit identity,
# eclipse capture + clean detection, free-rider stranding, and the
# `repro simulate --adv-*` surface (see scripts/adv_smoke.py and
# docs/adversarial.md)
adv-smoke:
	$(PYTHON) scripts/adv_smoke.py

# rerun the three smoke gates with the runtime determinism sanitizer
# live (REPRO_SANITIZE=1): zero sanitizer reports and fingerprints
# bit-identical to unsanitized runs (see src/repro/sanitize.py)
sanitize-smoke:
	REPRO_SANITIZE=1 $(PYTHON) scripts/obs_smoke.py
	REPRO_SANITIZE=1 $(PYTHON) scripts/adv_smoke.py
	REPRO_SANITIZE=1 $(PYTHON) scripts/net_smoke.py

# the full tier-1 gate: static analysis, unit/property tests, perf
# regression, resume, trial fabric, observability, live serving,
# adversary plane, sanitized smokes
check: lint typecheck test bench-check bench-tick-check \
	sweep-resume-check fabric-smoke obs-smoke net-smoke adv-smoke \
	sanitize-smoke

figures:
	$(PYTHON) -m repro.cli figures --out figures/
