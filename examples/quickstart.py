#!/usr/bin/env python
"""Quickstart: watch the Sybil attack balance a DHT computation.

Builds two identical Chord networks holding the same distributed job —
one runs the paper's Random Injection strategy, one does nothing — and
compares how long they take to finish and how the workload distribution
evolves.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, run_simulation
from repro.metrics import load_stats
from repro.sim import TickEngine
from repro.util.tables import format_table


def main() -> None:
    base = SimulationConfig(
        strategy="none",
        n_nodes=500,
        n_tasks=50_000,  # 100 tasks per node; ideal runtime = 100 ticks
        seed=42,
    )
    sybil = base.with_updates(strategy="random_injection")

    # -- peek at the initial imbalance ------------------------------------
    engine = TickEngine(base)
    stats = load_stats(engine.network_loads())
    print("Initial workload distribution (hash-assigned):")
    print(
        f"  mean={stats.mean:.0f}  median={stats.median:.0f}  "
        f"max={stats.max}  gini={stats.gini:.2f}"
    )
    print(
        "  -> the median node holds ~69% of the fair share; one node "
        f"holds {stats.max / stats.mean:.1f}x it.\n"
    )

    # -- run both networks to completion --------------------------------
    rows = []
    for config in (base, sybil):
        result = run_simulation(config)
        rows.append(
            [
                config.strategy,
                result.runtime_ticks,
                f"{result.ideal_ticks:.0f}",
                round(result.runtime_factor, 2),
                result.counters.get("sybils_created", 0),
            ]
        )
    print(
        format_table(
            ["strategy", "ticks", "ideal", "runtime factor", "sybils made"],
            rows,
            title="Same job, same starting network:",
        )
    )
    print(
        "\nRandom injection lets idle nodes re-enter the ring at random "
        "addresses as Sybils,\nacquiring leftover work — runtime "
        "approaches the ideal instead of ~6x it."
    )


if __name__ == "__main__":
    main()
