#!/usr/bin/env python
"""Observability: trace every balancing event and profile convergence.

Shows the operational tooling around the simulator:

* :class:`~repro.obs.trace.TraceRecorder` — a structured event log of
  every Sybil creation/retirement and churn event (exportable as JSONL);
* :class:`~repro.analysis.convergence.profile_run` — trajectory metrics
  (utilization AUC, wasted node-ticks) that condense whole runs;
* the closed-form theory that predicts the baseline before you run it.

Run:  python examples/observability.py
"""

from repro import SimulationConfig
from repro.analysis import expected_baseline_factor, profile_run
from repro.sim import TickEngine
from repro.obs.trace import TraceRecorder
from repro.util.tables import format_table


def main() -> None:
    config = SimulationConfig(
        strategy="random_injection",
        n_nodes=400,
        n_tasks=40_000,
        churn_rate=0.005,
        seed=12,
    )

    # -- theory first: what should the unbalanced network do? -------------
    print(
        f"Theory: a {config.n_nodes}-node unbalanced network runs at "
        f"{expected_baseline_factor(config.n_nodes):.2f}x ideal "
        "(harmonic number).\n"
    )

    # -- traced run -------------------------------------------------------
    trace = TraceRecorder()
    engine = TickEngine(config, trace=trace)
    result = engine.run()
    print(
        f"Run finished in {result.runtime_ticks} ticks "
        f"(factor {result.runtime_factor:.2f}).  {trace.summary()}\n"
    )

    # first balancing wave, event by event
    first_round = [e for e in trace.of_kind("sybil_created") if e.tick == 5]
    print(f"First decision round (tick 5): {len(first_round)} Sybils born.")
    rows = [
        [e["owner"], f"{e['ident'] % 10**6:06d}…", e["acquired"]]
        for e in first_round[:8]
    ]
    print(
        format_table(
            ["owner", "sybil id (suffix)", "tasks acquired"],
            rows,
            title="A few of them:",
        )
    )

    # per-tick activity histogram from the trace
    busiest = {}
    for event in trace.of_kind("sybil_created"):
        busiest[event.tick] = busiest.get(event.tick, 0) + 1
    top = sorted(busiest.items(), key=lambda kv: -kv[1])[:5]
    print("\nBusiest balancing ticks:", ", ".join(f"t{t}:{n}" for t, n in top))

    # -- convergence profiles ------------------------------------------------
    print("\nConvergence profiles (baseline vs balanced):")
    rows = []
    for strategy in ("none", "random_injection"):
        profile = profile_run(config.with_updates(strategy=strategy))
        rows.append(
            [
                strategy,
                profile.runtime_factor,
                round(profile.utilization_auc, 3),
                profile.wasted_node_ticks,
                profile.peak_network_size,
            ]
        )
    print(
        format_table(
            [
                "strategy",
                "factor",
                "utilization AUC",
                "wasted node-ticks",
                "peak identities",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
