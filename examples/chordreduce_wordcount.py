#!/usr/bin/env python
"""ChordReduce word count — the paper's motivating application.

A MapReduce job (word counting over synthetic documents) executed on a
simulated Chord DHT, once with no balancing and once with each Sybil
strategy.  Balanced runs finish the map phase in substantially fewer
ticks because no single node ends up the straggler.

Run:  python examples/chordreduce_wordcount.py
"""

from repro.apps import word_count
from repro.util.tables import format_table

WORDS = (
    "chord sybil churn balance node task ring hash key virtual "
    "distributed decentralized exascale volunteer overlay"
).split()


def make_documents(n_docs: int = 400, words_per_doc: int = 12) -> list[str]:
    import random

    rng = random.Random(99)
    return [
        " ".join(rng.choice(WORDS) for _ in range(words_per_doc))
        for _ in range(n_docs)
    ]


def main() -> None:
    documents = make_documents()
    reference: dict[str, int] | None = None
    rows = []
    for strategy in (
        "none",
        "random_injection",
        "smart_neighbor_injection",
        "invitation",
    ):
        counts, report = word_count(
            documents, n_nodes=40, strategy=strategy, seed=17
        )
        if reference is None:
            reference = counts
        assert counts == reference, "strategies must not change results"
        rows.append(
            [
                strategy,
                report.map_ticks,
                round(report.map_factor, 2),
                report.reduce_ticks,
                report.total_ticks,
            ]
        )
    print(
        format_table(
            ["strategy", "map ticks", "map factor", "reduce ticks", "total"],
            rows,
            title=(
                f"Word count: {len(documents)} documents on a 40-node "
                "Chord DHT (results identical across strategies)"
            ),
        )
    )
    top = sorted(reference.items(), key=lambda kv: -kv[1])[:5]
    print("\nTop words:", ", ".join(f"{w}={c}" for w, c in top))


if __name__ == "__main__":
    main()
