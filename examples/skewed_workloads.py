#!/usr/bin/env python
"""Hot-spot workloads: when hashing doesn't save you (extension study).

The paper's tasks hash uniformly.  This example stresses the strategies
with clustered and Zipf-weighted hot-spot keys (range-partitioned inputs,
red-hot datasets): the unbalanced baseline becomes catastrophic, and the
*global* random-injection probes are what keep working — neighborhood-
bound strategies can't see across the ring to where the work is.

Run:  python examples/skewed_workloads.py
"""

from repro import SimulationConfig, run_simulation
from repro.metrics import load_stats
from repro.sim import TickEngine
from repro.util.tables import format_table

STRATEGIES = ("none", "random_injection", "neighbor_injection", "invitation")
DISTRIBUTIONS = ("uniform", "clustered", "zipf")


def main() -> None:
    base = SimulationConfig(n_nodes=300, n_tasks=30_000, seed=4)

    # -- how bad is the initial imbalance? --------------------------------
    print("Initial imbalance by key distribution (300 nodes / 30k tasks):")
    for dist in DISTRIBUTIONS:
        engine = TickEngine(base.with_updates(key_distribution=dist))
        stats = load_stats(engine.network_loads())
        print(
            f"  {dist:10s} gini={stats.gini:.2f}  max={stats.max:5d}  "
            f"idle-at-start={stats.idle_fraction:.0%}"
        )

    # -- who can still fix it? --------------------------------------------
    rows = []
    for dist in DISTRIBUTIONS:
        row = [dist]
        for strategy in STRATEGIES:
            config = base.with_updates(
                key_distribution=dist, strategy=strategy
            )
            row.append(round(run_simulation(config).runtime_factor, 2))
        rows.append(row)
    print()
    print(
        format_table(
            ["distribution", *STRATEGIES],
            rows,
            title="Runtime factor by strategy and key distribution:",
        )
    )
    print(
        "\nZipf hot spots push the baseline past 30x ideal; random "
        "injection's global probes\nstill find the work, while neighbor "
        "injection and invitation only help nodes that\nhappen to sit "
        "near a hot spot."
    )


if __name__ == "__main__":
    main()
