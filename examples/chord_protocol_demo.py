#!/usr/bin/env python
"""The protocol substrate in action: real Chord, failures, and Sybils.

Everything the tick simulator assumes is shown working at the protocol
level here:

1. build a 40-node Chord ring with 160-bit SHA-1 identifiers;
2. store data, verify O(log N) lookups;
3. crash nodes and show that active backups lose nothing;
4. run the Random Injection strategy with *real* protocol joins and
   watch the same speedup the paper measures in simulation.

Run:  python examples/chord_protocol_demo.py
"""

import numpy as np

from repro.chord import ChordRing, ProtocolSimulation
from repro.config import SimulationConfig
from repro.hashspace import SPACE_160


def main() -> None:
    # -- 1. build and verify ------------------------------------------------
    ring = ChordRing.create(40, seed=5)
    ring.verify()
    print(f"Built a Chord ring of {len(ring.network)} nodes (160-bit SHA-1 ids).")

    # -- 2. data and routing ----------------------------------------------
    rng = np.random.default_rng(9)
    keys = [SPACE_160.random_id(rng) for _ in range(300)]
    for key in keys:
        ring.put(key, f"value-{key % 997}")
    hops = ring.lookup_hops_sample(200)
    print(
        f"Stored 300 items. Lookup hops: mean={hops.mean():.2f}, "
        f"max={int(hops.max())} (log2(40)≈5.3)."
    )

    # -- 3. failures --------------------------------------------------------
    for _ in range(2):
        ring.maintenance_round()  # replicate everywhere first
    victims = ring.network.alive_ids()[::10][:4]
    for victim in victims:
        ring.fail_node(victim)
    for _ in range(6):
        ring.maintenance_round()
    ring.verify()
    intact = all(ring.get(k)[0] == f"value-{k % 997}" for k in keys)
    print(
        f"Crashed {len(victims)} nodes without warning -> ring re-stabilized, "
        f"all data intact: {intact}."
    )

    # -- 4. the paper's strategy over real protocol joins -------------------
    print("\nRunning the same computation with and without Sybil balancing")
    print("(50 hosts, 2000 tasks, real Chord joins/transfers):")
    for strategy in ("none", "random_injection"):
        config = SimulationConfig(
            strategy=strategy, n_nodes=50, n_tasks=2000, bits=48, seed=3
        )
        out = ProtocolSimulation(config).run()
        print(
            f"  {strategy:18s} runtime factor = "
            f"{out['runtime_factor']:.2f} "
            f"({out['runtime_ticks']} ticks, "
            f"{out['network_messages']} protocol messages)"
        )


if __name__ == "__main__":
    main()
