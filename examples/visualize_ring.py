#!/usr/bin/env python
"""Regenerate the paper's Figures 1–3 as files (SVG + CSV).

* Figure 1: workload probability distribution of a 1000-node / 10⁶-task
  network (log-binned density, written as CSV + printed as ASCII).
* Figure 2: 10 SHA-1-placed nodes and 100 tasks on the unit circle (SVG).
* Figure 3: the same tasks with evenly spaced nodes (SVG).

Run:  python examples/visualize_ring.py [output_dir]
"""

import sys
from pathlib import Path

from repro.experiments.fig01_distribution import run as run_fig1
from repro.experiments.fig02_03_ring import build_layout
from repro.viz.ascii import render_histogram
from repro.viz.ringplot import render_ring_svg


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)

    # -- Figure 1 ------------------------------------------------------------
    result = run_fig1(seed=1)
    hist = result.data["histogram"]
    print(render_histogram(hist, width=60, max_rows=20))
    csv_path = out / "fig1_distribution.csv"
    with csv_path.open("w") as fh:
        fh.write("bin_left,bin_right,probability\n")
        density = result.data["density"]
        edges = result.data["edges"]
        for i, p in enumerate(density):
            fh.write(f"{edges[i]:.3f},{edges[i + 1]:.3f},{p:.6f}\n")
    print(f"\nwrote {csv_path}")

    # -- Figures 2 and 3 ----------------------------------------------------
    hashed = build_layout(10, 100, even_nodes=False, seed=0)
    even = build_layout(10, 100, even_nodes=True, seed=0)
    for name, layout, title in (
        ("fig2_hashed_ring.svg", hashed, "Figure 2: SHA-1 placed nodes"),
        ("fig3_even_ring.svg", even, "Figure 3: evenly spaced nodes"),
    ):
        path = render_ring_svg(
            layout.node_xy, layout.task_xy, out / name, title=title
        )
        counts = ", ".join(str(int(c)) for c in layout.task_counts)
        print(f"wrote {path}  (tasks per node: {counts})")


if __name__ == "__main__":
    main()
