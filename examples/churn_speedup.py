#!/usr/bin/env python
"""Churn as a load balancer (paper §VI-A, Table II).

The counter-intuitive headline of the paper's prior ChordReduce work:
node churn — normally a hazard — *speeds up* distributed computations,
because joining nodes land in random ranges and absorb leftover work.
This example sweeps churn rates on one network composition and prints
the runtime factors plus the per-tick utilization story behind them.

Run:  python examples/churn_speedup.py
"""

from repro import SimulationConfig, run_trials
from repro.sim import TickEngine
from repro.util.tables import format_table

CHURN_RATES = [0.0, 0.0001, 0.001, 0.01]


def main() -> None:
    rows = []
    for churn in CHURN_RATES:
        config = SimulationConfig(
            strategy="churn" if churn > 0 else "none",
            n_nodes=1000,
            n_tasks=100_000,
            churn_rate=churn,
            seed=7,
        )
        trials = run_trials(config, 5)
        summary = trials.factor_summary()
        joins = trials.counter_means().get("churn_joins", 0.0)
        rows.append(
            [churn, round(summary.mean, 3), round(summary.std, 3), int(joins)]
        )
    print(
        format_table(
            ["churn rate", "mean factor", "std", "avg joins"],
            rows,
            title=(
                "Runtime factor vs churn rate "
                "(1000 nodes / 100k tasks, 5 trials; paper Table II col 1: "
                "7.476 / 7.122 / 6.047 / 3.721)"
            ),
        )
    )

    # -- why: utilization over time --------------------------------------
    print("\nUtilization (fraction of nodes busy) over the run:")
    for churn in (0.0, 0.01):
        config = SimulationConfig(
            strategy="churn" if churn > 0 else "none",
            n_nodes=1000,
            n_tasks=100_000,
            churn_rate=churn,
            seed=7,
            collect_timeseries=True,
        )
        engine = TickEngine(config)
        result = engine.run()
        util = result.timeseries.utilization()
        marks = [util[min(t, len(util) - 1)] for t in (0, 50, 100, 200, 400)]
        print(
            f"  churn={churn:<6} ticks={result.runtime_ticks:>5}  "
            + "  ".join(
                f"t{t}={u:.2f}" for t, u in zip((0, 50, 100, 200, 400), marks)
            )
        )
    print(
        "\nWithout churn, utilization collapses once most nodes finish "
        "their small ranges;\nwith churn, re-joining nodes keep acquiring "
        "work from the stragglers."
    )


if __name__ == "__main__":
    main()
