#!/usr/bin/env python
"""All five strategies, one job — the paper's §VI in one table.

Runs every load-balancing strategy on the same 1000-node / 100k-task
network and reports runtime factors, balance at tick 35, and message
costs.  Also prints the tick-35 workload histograms of the best
proactive (random injection) and reactive (invitation) strategies side
by side.

Run:  python examples/strategy_comparison.py
"""

from repro import SimulationConfig, run_trials
from repro.experiments.figures import paired_histograms, run_with_snapshots
from repro.util.tables import format_table
from repro.viz.ascii import render_side_by_side

STRATEGIES = [
    ("none", {}),
    ("churn", {"churn_rate": 0.01}),
    ("random_injection", {}),
    ("neighbor_injection", {}),
    ("smart_neighbor_injection", {}),
    ("invitation", {}),
]


def main() -> None:
    base = SimulationConfig(n_nodes=1000, n_tasks=100_000, seed=11)
    rows = []
    for name, overrides in STRATEGIES:
        config = base.with_updates(strategy=name, **overrides)
        trials = run_trials(config, 3)
        means = trials.counter_means()
        rows.append(
            [
                name,
                round(trials.mean_factor, 3),
                int(means.get("sybils_created", 0)),
                int(means.get("messages", 0)),
                int(means.get("churn_joins", 0)),
            ]
        )
    print(
        format_table(
            ["strategy", "mean factor", "sybils", "strategy msgs", "joins"],
            rows,
            title=(
                "Strategy comparison, 1000 nodes / 100k tasks "
                "(3 trials; ideal factor = 1)"
            ),
        )
    )
    print(
        "\nPaper ordering reproduced: random injection wins; smart "
        "neighbor beats estimating neighbor;\ninvitation is reactive "
        "(fewest messages among Sybil strategies per balance gained)."
    )

    # -- side-by-side histograms at tick 35 ------------------------------
    run_a = run_with_snapshots(
        "random injection", base.with_updates(strategy="random_injection")
    )
    run_b = run_with_snapshots(
        "invitation", base.with_updates(strategy="invitation")
    )
    hist_a, hist_b = paired_histograms(run_a, run_b, tick=35, n_bins=16)
    print("\nWorkload histograms at tick 35 (proactive vs reactive):\n")
    print(render_side_by_side(hist_a, hist_b, width=28))


if __name__ == "__main__":
    main()
