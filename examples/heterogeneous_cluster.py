#!/usr/bin/env python
"""Heterogeneous volunteer clusters (paper §VI-B, Figure 10).

Folding@Home-style networks mix fast and slow machines.  The paper
models this with per-node *strength* ∈ 1..maxSybils controlling both
the Sybil budget and (optionally) the per-tick consumption rate — and
finds that Sybil balancing still helps, but less: weak nodes steal work
from strong ones and then take longer to finish it.

This example reproduces that story: homogeneous vs heterogeneous
networks, with and without strength-based consumption, and the
maxSybils=5 vs 10 disparity effect.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import SimulationConfig, run_trials
from repro.util.tables import format_table


def mean_factor(**kwargs) -> float:
    config = SimulationConfig(n_nodes=500, n_tasks=50_000, seed=23, **kwargs)
    return run_trials(config, 3).mean_factor


def main() -> None:
    rows = []
    for strategy in ("none", "random_injection"):
        homog = mean_factor(strategy=strategy)
        hetero = mean_factor(strategy=strategy, heterogeneous=True)
        hetero_strength = mean_factor(
            strategy=strategy,
            heterogeneous=True,
            work_measurement="strength",
        )
        rows.append([strategy, homog, hetero, hetero_strength])
    print(
        format_table(
            [
                "strategy",
                "homogeneous",
                "hetero (1 task/tick)",
                "hetero (strength/tick)",
            ],
            rows,
            title=(
                "Mean runtime factor, 500 nodes / 50k tasks (3 trials). "
                "Note: with strength-based consumption the ideal runtime "
                "uses aggregate capacity."
            ),
        )
    )

    rows = []
    for max_sybils in (5, 10):
        factor = mean_factor(
            strategy="random_injection",
            heterogeneous=True,
            work_measurement="strength",
            max_sybils=max_sybils,
        )
        rows.append([max_sybils, factor])
    print()
    print(
        format_table(
            ["maxSybils (strength range)", "mean factor"],
            rows,
            title=(
                "Greater strength disparity hurts heterogeneous networks "
                "(paper §VI-B-1: +0.3..1 factor going 1..5 -> 1..10)"
            ),
        )
    )
    print(
        "\nThe paper's conclusion: the workload gets *balanced* in "
        "heterogeneous networks, but\nefficiency does not improve as much "
        "— weak nodes acquire work faster than they can finish it."
    )


if __name__ == "__main__":
    main()
