from setuptools import setup

# All metadata lives in pyproject.toml, including the PEP 561
# `repro/py.typed` marker shipped via [tool.setuptools.package-data].
setup()
