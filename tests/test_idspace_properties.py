"""Property-based tests of the identifier-space arithmetic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(16)
ids = st.integers(min_value=0, max_value=SPACE.max_id)


@given(a=ids, b=ids)
def test_distance_add_roundtrip(a, b):
    """Moving ``distance(a, b)`` steps from a always lands on b."""
    assert SPACE.add(a, SPACE.distance(a, b)) == b


@given(a=ids, b=ids)
def test_distance_antisymmetry(a, b):
    d_ab = SPACE.distance(a, b)
    d_ba = SPACE.distance(b, a)
    if a == b:
        assert d_ab == d_ba == 0
    else:
        assert d_ab + d_ba == SPACE.size


@given(x=ids, a=ids, b=ids)
def test_interval_partition(x, a, b):
    """Every point is in exactly one of (a, b] and (b, a] (a != b)."""
    if a == b:
        return
    in_first = SPACE.in_interval(x, a, b)
    in_second = SPACE.in_interval(x, b, a)
    assert in_first != in_second


@given(a=ids, b=ids)
def test_midpoint_inside_arc(a, b):
    mid = SPACE.midpoint(a, b)
    if a == b:
        assert mid == SPACE.add(a, SPACE.size // 2)
    else:
        # midpoint lies in [a, b] clockwise (it can equal a for span 1)
        assert SPACE.in_interval(mid, a, b, closed_left=True)


@given(a=ids, b=ids)
def test_midpoint_balanced(a, b):
    """The midpoint splits the arc into two nearly equal halves."""
    if a == b:
        return
    mid = SPACE.midpoint(a, b)
    left = SPACE.distance(a, mid)
    right = SPACE.distance(mid, b)
    assert abs(left - right) <= 1
    assert left + right == SPACE.distance(a, b)


@given(x=ids, a=ids, b=ids)
def test_interval_bounds_consistency(x, a, b):
    """Closed bounds only ever add the boundary points."""
    open_open = SPACE.in_interval(
        x, a, b, closed_left=False, closed_right=False
    )
    closed_both = SPACE.in_interval(
        x, a, b, closed_left=True, closed_right=True
    )
    if open_open:
        assert closed_both
    if x not in (a, b):
        assert open_open == closed_both


@settings(max_examples=50)
@given(a=ids, b=ids, data=st.data())
def test_random_in_interval_always_inside(a, b, data):
    span = SPACE.distance(a, b)
    if span == 0:
        span = SPACE.size
    if span <= 1:
        return
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    v = SPACE.random_in_interval(rng, a, b)
    assert SPACE.in_interval(v, a, b, closed_right=False)
    assert v != a
