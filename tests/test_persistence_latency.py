"""Tests for result persistence and the protocol latency model."""

import numpy as np
import pytest

from repro.chord.latency import LatencyModel, lookup_latency_ms
from repro.chord.ring import ChordRing
from repro.config import SimulationConfig
from repro.hashspace.idspace import IdSpace
from repro.sim.engine import run_simulation
from repro.sim.persistence import (
    load_result,
    load_trialset,
    result_from_dict,
    result_to_dict,
    save_result,
    save_trialset,
)
from repro.sim.trials import run_trials


class TestResultPersistence:
    @pytest.fixture(scope="class")
    def result(self):
        config = SimulationConfig(
            strategy="random_injection",
            n_nodes=60,
            n_tasks=3000,
            seed=5,
            snapshot_ticks=(0, 5),
            collect_timeseries=True,
        )
        return run_simulation(config)

    def test_roundtrip_scalars(self, result, tmp_path):
        path = save_result(result, tmp_path / "r.json")
        loaded = load_result(path)
        assert loaded.runtime_ticks == result.runtime_ticks
        assert loaded.ideal_ticks == result.ideal_ticks
        assert loaded.counters == result.counters
        assert loaded.config == result.config
        assert loaded.runtime_factor == result.runtime_factor

    def test_roundtrip_snapshots(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "r.json"))
        assert len(loaded.snapshots) == len(result.snapshots)
        for a, b in zip(loaded.snapshots, result.snapshots):
            assert a.tick == b.tick
            assert np.array_equal(a.counts, b.counts)
            assert a.stats == b.stats

    def test_roundtrip_timeseries(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "r.json"))
        assert loaded.timeseries is not None
        got = loaded.timeseries.as_arrays()
        want = result.timeseries.as_arrays()
        for key in want:
            assert np.array_equal(got[key], want[key])

    def test_final_loads_optional(self, result, tmp_path):
        slim = load_result(save_result(result, tmp_path / "a.json"))
        assert slim.final_loads is None
        fat = load_result(
            save_result(
                result, tmp_path / "b.json", include_final_loads=True
            )
        )
        assert np.array_equal(fat.final_loads, result.final_loads)

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            result_from_dict({"format": "something_else"})

    def test_dict_is_json_safe(self, result):
        import json

        json.dumps(result_to_dict(result))


class TestTrialSetPersistence:
    def test_roundtrip(self, tmp_path):
        trials = run_trials(
            SimulationConfig(n_nodes=40, n_tasks=800, seed=3), 3
        )
        loaded = load_trialset(save_trialset(trials, tmp_path / "t.json"))
        assert loaded.config == trials.config
        assert np.array_equal(loaded.factors, trials.factors)
        assert loaded.factor_summary() == trials.factor_summary()


class TestLatencyModel:
    def test_deterministic_and_symmetric(self):
        model = LatencyModel(seed=1)
        assert model.one_way_ms(10, 20) == model.one_way_ms(10, 20)
        assert model.one_way_ms(10, 20) == model.one_way_ms(20, 10)
        assert model.one_way_ms(7, 7) == 0.0
        assert model.rtt_ms(10, 20) == 2 * model.one_way_ms(10, 20)

    def test_median_near_base(self):
        model = LatencyModel(base_ms=40.0, seed=2)
        rng = np.random.default_rng(0)
        samples = [
            model.one_way_ms(int(a), int(b))
            for a, b in rng.integers(0, 10**9, size=(500, 2))
        ]
        assert np.median(samples) == pytest.approx(40.0, rel=0.15)

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=0)


class TestLookupLatency:
    @pytest.fixture(scope="class")
    def ring(self):
        return ChordRing.create(48, space=IdSpace(28), seed=4)

    def test_modes_same_holder(self, ring):
        model = LatencyModel(seed=3)
        node = ring.network.node(ring.network.alive_ids()[0])
        rng = np.random.default_rng(5)
        for _ in range(20):
            key = int(rng.integers(0, 2**28))
            h_it, _ = lookup_latency_ms(node, key, model, mode="iterative")
            h_rec, _ = lookup_latency_ms(node, key, model, mode="recursive")
            assert h_it == h_rec

    def test_recursive_cheaper_on_average(self, ring):
        """Forwarding one-way beats per-hop round trips (Chord §4)."""
        model = LatencyModel(seed=3)
        node = ring.network.node(ring.network.alive_ids()[0])
        rng = np.random.default_rng(6)
        it_total = rec_total = 0.0
        for _ in range(100):
            key = int(rng.integers(0, 2**28))
            it_total += lookup_latency_ms(
                node, key, model, mode="iterative"
            )[1]
            rec_total += lookup_latency_ms(node, key, model, mode="recursive")[1]
        assert rec_total < it_total

    def test_unknown_mode(self, ring):
        node = ring.network.node(ring.network.alive_ids()[0])
        with pytest.raises(ValueError):
            lookup_latency_ms(node, 5, LatencyModel(), mode="psychic")

    def test_traced_path_consistency(self, ring):
        node = ring.network.node(ring.network.alive_ids()[0])
        rng = np.random.default_rng(7)
        for _ in range(20):
            key = int(rng.integers(0, 2**28))
            holder, hops, path = node.find_successor_traced(key)
            assert len(path) == hops
            assert holder == node.find_successor(key)[0]
