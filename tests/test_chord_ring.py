"""Integration tests of whole-ring behaviour: churn, replication, recovery."""

import numpy as np
import pytest

from repro.chord.ring import ChordRing
from repro.errors import RingError
from repro.hashspace.idspace import SPACE_160, IdSpace

SPACE = IdSpace(24)


class TestConstruction:
    def test_create_and_verify(self):
        ring = ChordRing.create(30, space=SPACE, seed=0)
        ring.verify()
        assert len(ring.network) == 30

    def test_create_with_sha1_space(self):
        ring = ChordRing.create(10, seed=0)
        ring.verify()
        assert ring.space is SPACE_160

    def test_converge_reports_rounds(self):
        ring = ChordRing.create(20, space=SPACE, seed=1, converge=False)
        rounds = ring.converge()
        assert rounds >= 1
        ring.verify()


class TestVerification:
    def test_verify_catches_broken_cycle(self):
        ring = ChordRing.create(10, space=SPACE, seed=2)
        ids = ring.network.alive_ids()
        node = ring.network.node(ids[0])
        node.successor_list = [node.id]  # sabotage
        with pytest.raises(RingError):
            ring.verify()

    def test_ground_truth_holder(self):
        ring = ChordRing.create(10, space=SPACE, seed=3)
        ids = ring.network.alive_ids()
        assert ring.ground_truth_holder(ids[0]) == ids[0]
        assert ring.ground_truth_holder((ids[0] + 1) % SPACE.size) == ids[1]
        # wrap: a key above the largest id belongs to the smallest
        assert ring.ground_truth_holder(ids[-1] + 1) == ids[0]


class TestReplicationAndRecovery:
    def _loaded_ring(self, n_nodes=25, n_keys=150, seed=4):
        ring = ChordRing.create(n_nodes, space=SPACE, seed=seed)
        rng = np.random.default_rng(seed)
        keys = [int(k) for k in rng.integers(0, SPACE.size, size=n_keys)]
        for key in keys:
            ring.put(key, f"value-{key}")
        for _ in range(2):
            ring.maintenance_round()  # build replicas
        return ring, keys

    def test_data_survives_r_minus_1_failures(self):
        ring, keys = self._loaded_ring()
        # kill 4 (< n_successors = 5) consecutive nodes: worst case
        ids = ring.network.alive_ids()
        for victim in ids[3:7]:
            ring.fail_node(victim)
        for _ in range(8):
            ring.maintenance_round()
        ring.verify()
        for key in keys:
            value, _ = ring.get(key)
            assert value == f"value-{key}"

    def test_replica_counts_positive(self):
        ring, _ = self._loaded_ring()
        replica_total = sum(
            ring.network.node(i).store.replica_count
            for i in ring.network.alive_ids()
        )
        # every primary is replicated to ~n_successors backups
        assert replica_total >= ring.total_primaries() * 2

    def test_join_after_load_acquires_range(self):
        ring, keys = self._loaded_ring()
        before = ring.total_primaries()
        node = ring.join_node()
        for _ in range(3):
            ring.maintenance_round()
        ring.verify()
        assert ring.total_primaries() == before
        # the joiner is responsible for everything between pred and self
        for key in keys:
            assert ring.get(key)[0] == f"value-{key}"

    def test_mixed_churn_sequence(self):
        ring, keys = self._loaded_ring(n_nodes=30, seed=8)
        rng = np.random.default_rng(8)
        for step in range(6):
            if step % 2 == 0:
                victim = ring.network.alive_ids()[
                    int(rng.integers(0, len(ring.network)))
                ]
                if step % 4 == 0:
                    ring.fail_node(victim)
                else:
                    ring.leave_node(victim)
            else:
                ring.join_node()
            for _ in range(4):
                ring.maintenance_round()
        ring.verify()
        for key in keys:
            assert ring.get(key)[0] == f"value-{key}"


class TestMessageAccounting:
    def test_maintenance_costs_messages(self):
        ring = ChordRing.create(10, space=SPACE, seed=9)
        ring.network.reset_messages()
        ring.maintenance_round()
        assert ring.network.total_messages() > 0
        assert ring.network.messages["rpc_notify"] >= 10
