"""Tests for the metrics package: balance, histograms, runtime, series."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.metrics.balance import LoadStats, gini, idle_fraction, load_stats
from repro.metrics.histograms import histogram, log_edges, shared_edges
from repro.metrics.runtime import runtime_factor, summarize_factors
from repro.metrics.timeseries import TickSeries


class TestGini:
    def test_perfectly_even(self):
        assert gini(np.full(100, 7)) == pytest.approx(0.0, abs=1e-12)

    def test_single_hoarder(self):
        loads = np.zeros(100)
        loads[0] = 1000
        assert gini(loads) == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # two nodes, loads 0 and 1: gini = 0.5
        assert gini(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(10)) == 0.0

    def test_scale_invariant(self, rng):
        x = rng.exponential(size=500)
        assert gini(x) == pytest.approx(gini(x * 1000), abs=1e-9)

    def test_exponential_gini_is_half(self, rng):
        """Exponential workloads (hash-placed nodes) have Gini 0.5."""
        x = rng.exponential(size=200_000)
        assert gini(x) == pytest.approx(0.5, abs=0.01)


class TestLoadStats:
    def test_values(self):
        stats = load_stats(np.array([0, 0, 2, 6]))
        assert stats.n == 4
        assert stats.total == 8
        assert stats.mean == 2.0
        assert stats.median == 1.0
        assert stats.max == 6
        assert stats.min == 0
        assert stats.idle_fraction == 0.5

    def test_empty(self):
        stats = load_stats(np.array([]))
        assert stats.n == 0 and stats.total == 0

    def test_as_dict(self):
        d = load_stats(np.array([1, 2, 3])).as_dict()
        assert d["median"] == 2.0

    def test_idle_fraction_helper(self):
        assert idle_fraction(np.array([0, 1, 0, 1])) == 0.5


class TestHistograms:
    def test_shared_edges_cover_all(self):
        a = np.array([1, 5, 100])
        b = np.array([2, 50])
        edges = shared_edges([a, b], n_bins=10)
        assert edges[0] == 0.0
        assert edges[-1] > 100

    def test_histogram_accounts_every_node(self):
        loads = np.array([0, 1, 2, 3, 1000])
        edges = shared_edges([loads], n_bins=5)
        hist = histogram(loads, edges)
        assert hist.n_nodes == 5

    def test_clipping_into_last_bin(self):
        loads = np.array([5, 500])
        edges = np.array([0.0, 10.0, 100.0])
        hist = histogram(loads, edges)
        assert hist.n_nodes == 2  # 500 clipped into [10, 100)

    def test_density_sums_to_one(self, rng):
        loads = rng.integers(0, 100, size=500)
        hist = histogram(loads, shared_edges([loads]))
        assert hist.density().sum() == pytest.approx(1.0)

    def test_density_empty(self):
        hist = histogram(np.array([]), np.array([0.0, 1.0, 2.0]))
        assert hist.density().sum() == 0.0

    def test_log_edges_monotone(self):
        edges = log_edges(10_000, n_bins=30)
        assert edges[0] == 0.0
        assert (np.diff(edges) > 0).all()
        assert edges[-1] >= 10_000


class TestRuntime:
    def test_factor(self):
        assert runtime_factor(852, 100.0) == pytest.approx(8.52)

    def test_bad_ideal(self):
        with pytest.raises(ConfigError):
            runtime_factor(10, 0)

    def test_summary(self):
        summary = summarize_factors([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.median == 2.0
        assert summary.min == 1.0 and summary.max == 3.0
        assert summary.n_trials == 3

    def test_summary_single(self):
        assert summarize_factors([1.5]).std == 0.0

    def test_summary_empty(self):
        with pytest.raises(ConfigError):
            summarize_factors([])


class TestTickSeries:
    def test_append_and_arrays(self):
        series = TickSeries()
        series.append(1, consumed=10, remaining=90, n_slots=5,
                      n_in_network=5, idle_owners=0)
        series.append(2, consumed=10, remaining=80, n_slots=5,
                      n_in_network=5, idle_owners=1)
        arrays = series.as_arrays()
        assert arrays["consumed"].tolist() == [10, 10]
        assert len(series) == 2
        assert series.mean_work_per_tick() == 10.0

    def test_utilization(self):
        series = TickSeries()
        series.append(1, consumed=5, remaining=0, n_slots=10,
                      n_in_network=10, idle_owners=5)
        assert series.utilization().tolist() == [0.5]

    def test_empty(self):
        series = TickSeries()
        assert series.mean_work_per_tick() == 0.0
        assert series.utilization().size == 0
