"""Shared fixtures: small, fast configurations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.hashspace.idspace import IdSpace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def space8() -> IdSpace:
    """Tiny space where collisions and wraps are easy to hit."""
    return IdSpace(8)


@pytest.fixture
def space16() -> IdSpace:
    return IdSpace(16)


@pytest.fixture
def space64() -> IdSpace:
    return IdSpace(64)


@pytest.fixture
def small_config() -> SimulationConfig:
    """100 nodes / 5000 tasks: runs in ~50ms, still shows imbalance."""
    return SimulationConfig(n_nodes=100, n_tasks=5000, seed=7)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """Very small: for tests that run many simulations."""
    return SimulationConfig(n_nodes=30, n_tasks=600, seed=7)
