"""Shared fixtures: small, fast configurations for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.hashspace.idspace import IdSpace


@pytest.fixture(scope="session", autouse=True)
def _isolated_trial_cache(tmp_path_factory):
    """Keep the suite's trial cache out of the user's ~/.cache/repro.

    Session-scoped so it also covers class-scoped fixtures; tests that
    assert hit/miss counts pin their own directory with ``monkeypatch``
    or pass an explicit ``TrialCache``.
    """
    cache_dir = tmp_path_factory.mktemp("trial-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def space8() -> IdSpace:
    """Tiny space where collisions and wraps are easy to hit."""
    return IdSpace(8)


@pytest.fixture
def space16() -> IdSpace:
    return IdSpace(16)


@pytest.fixture
def space64() -> IdSpace:
    return IdSpace(64)


@pytest.fixture
def small_config() -> SimulationConfig:
    """100 nodes / 5000 tasks: runs in ~50ms, still shows imbalance."""
    return SimulationConfig(n_nodes=100, n_tasks=5000, seed=7)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """Very small: for tests that run many simulations."""
    return SimulationConfig(n_nodes=30, n_tasks=600, seed=7)
