"""Tests of SimView — the strategy-facing window onto the simulator."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.registry import make_strategy, strategy_names
from repro.core.strategy import Strategy
from repro.errors import StrategyError
from repro.sim.engine import TickEngine


def make_view(**overrides):
    config = SimulationConfig(
        strategy="random_injection", n_nodes=50, n_tasks=2000, seed=23,
        **overrides,
    )
    engine = TickEngine(config)
    return engine, engine.view


class TestRoundSnapshot:
    def test_loads_snapshot_is_stable_within_round(self):
        engine, view = make_view()
        view.begin_round()
        before = view.owner_loads().copy()
        owner = int(np.argmax(before == 0)) if (before == 0).any() else 0
        view.create_sybil_random(int(engine.owners.network_indices[0]))
        # snapshot unchanged even though the ring mutated
        assert np.array_equal(view.owner_loads(), before)

    def test_live_load_reflects_mutation(self):
        engine, view = make_view()
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        before_live = view.live_owner_load(owner)
        acquired = view.create_sybil_random(owner)
        assert view.live_owner_load(owner) == before_live + acquired

    def test_stats_reset_each_round(self):
        engine, view = make_view()
        view.begin_round()
        view.count_messages(5)
        assert view.stats.messages == 5
        view.begin_round()
        assert view.stats.messages == 0


class TestActions:
    def test_create_sybil_accounting(self):
        engine, view = make_view()
        view.begin_round()
        owner = int(engine.owners.network_indices[3])
        acquired = view.create_sybil_random(owner)
        assert view.n_sybils(owner) == 1
        assert view.stats.sybils_created == 1
        assert view.stats.tasks_acquired == acquired
        assert engine.state.n_sybil_slots == 1

    def test_retire_sybils_accounting(self):
        engine, view = make_view()
        view.begin_round()
        owner = int(engine.owners.network_indices[3])
        view.create_sybil_random(owner)
        view.create_sybil_random(owner)
        removed = view.retire_sybils(owner)
        assert removed == 2
        assert view.n_sybils(owner) == 0
        assert engine.state.n_sybil_slots == 0
        assert view.stats.sybils_retired == 2

    def test_create_in_slot_arc_lands_inside(self):
        engine, view = make_view()
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        base = view.main_slot(owner)
        target = int(view.successor_slots(base, 3)[1])
        start, end = engine.state.slot_arc(target)
        acquired = view.create_sybil_in_slot_arc(owner, target)
        assert acquired is not None
        # the new sybil's id lies in the old target arc
        sybil_slots = np.flatnonzero(~engine.state.is_main)
        ident = int(engine.state.ids[sybil_slots[0]])
        assert engine.state.space.in_interval(ident, start, end)

    def test_budget_enforced(self):
        engine, view = make_view(max_sybils=1)
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        view.create_sybil_random(owner)
        assert not view.can_add_sybil(owner)


class TestPlacementModes:
    @pytest.mark.parametrize("placement", ["random", "midpoint", "median"])
    def test_placement_lands_in_arc(self, placement):
        engine, view = make_view(placement=placement)
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        target = view.heaviest_slot(int(engine.owners.network_indices[5]))
        start, end = engine.state.slot_arc(target)
        acquired = view.create_sybil_in_slot_arc(owner, target)
        if acquired is None:
            pytest.skip("arc too small for this seed")
        sybil_slots = np.flatnonzero(~engine.state.is_main)
        ident = int(engine.state.ids[sybil_slots[0]])
        assert engine.state.space.in_interval(
            ident, start, end, closed_right=False
        )

    def test_median_placement_takes_half(self):
        engine, view = make_view(placement="median")
        view.begin_round()
        loads = view.owner_loads()
        heavy_owner = int(np.argmax(loads))
        target = view.heaviest_slot(heavy_owner)
        before = engine.state.counts[target]
        helper = int(
            engine.owners.network_indices[
                engine.owners.network_indices != heavy_owner
            ][0]
        )
        acquired = view.create_sybil_in_slot_arc(helper, target)
        assert acquired is not None
        assert abs(acquired - before / 2) <= 1


class TestRegistry:
    def test_all_names_construct(self):
        for name in strategy_names():
            strategy = make_strategy(name)
            assert isinstance(strategy, Strategy)
            assert strategy.name == name

    def test_from_config(self):
        config = SimulationConfig(strategy="invitation")
        assert make_strategy(config).name == "invitation"

    def test_unknown_name(self):
        with pytest.raises(StrategyError):
            make_strategy("quantum_balancing")
