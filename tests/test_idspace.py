"""Unit tests for the circular identifier space arithmetic."""

import numpy as np
import pytest

from repro.errors import IdSpaceError
from repro.hashspace.idspace import SPACE_64, SPACE_160, IdSpace


class TestConstruction:
    def test_size_and_max(self, space8):
        assert space8.size == 256
        assert space8.max_id == 255

    def test_sha1_space(self):
        assert SPACE_160.bits == 160
        assert SPACE_160.size == 2**160

    def test_invalid_bits(self):
        with pytest.raises(IdSpaceError):
            IdSpace(0)
        with pytest.raises(IdSpaceError):
            IdSpace(-3)

    def test_frozen(self, space8):
        with pytest.raises(AttributeError):
            space8.bits = 9


class TestValidation:
    def test_contains(self, space8):
        assert space8.contains(0)
        assert space8.contains(255)
        assert not space8.contains(256)
        assert not space8.contains(-1)

    def test_validate_passthrough(self, space8):
        assert space8.validate(17) == 17

    def test_validate_raises(self, space8):
        with pytest.raises(IdSpaceError):
            space8.validate(256)

    def test_wrap(self, space8):
        assert space8.wrap(256) == 0
        assert space8.wrap(257) == 1
        assert space8.wrap(255) == 255


class TestArithmetic:
    def test_distance_forward(self, space8):
        assert space8.distance(10, 20) == 10

    def test_distance_wraps(self, space8):
        assert space8.distance(250, 5) == 11

    def test_distance_zero(self, space8):
        assert space8.distance(42, 42) == 0

    def test_add(self, space8):
        assert space8.add(250, 10) == 4
        assert space8.add(5, -10) == 251

    def test_midpoint_simple(self, space8):
        assert space8.midpoint(0, 100) == 50

    def test_midpoint_wrapping(self, space8):
        # arc from 250 to 10 spans 16 ids; midpoint 8 past 250
        assert space8.midpoint(250, 10) == 2

    def test_midpoint_full_circle_is_antipode(self, space8):
        assert space8.midpoint(0, 0) == 128
        assert space8.midpoint(100, 100) == (100 + 128) % 256


class TestInInterval:
    def test_plain_interval(self, space8):
        assert space8.in_interval(5, 1, 10)
        assert not space8.in_interval(11, 1, 10)

    def test_default_bounds_open_closed(self, space8):
        # default is (start, end]
        assert not space8.in_interval(1, 1, 10)
        assert space8.in_interval(10, 1, 10)

    def test_closed_left(self, space8):
        assert space8.in_interval(1, 1, 10, closed_left=True)

    def test_open_right(self, space8):
        assert not space8.in_interval(10, 1, 10, closed_right=False)

    def test_wrapping_interval(self, space8):
        assert space8.in_interval(2, 250, 5)
        assert space8.in_interval(255, 250, 5)
        assert not space8.in_interval(100, 250, 5)

    def test_full_circle(self, space8):
        assert space8.in_interval(77, 9, 9)
        assert space8.in_interval(9, 9, 9)

    def test_degenerate_open_interval(self, space8):
        assert not space8.in_interval(
            9, 9, 9, closed_left=False, closed_right=False
        )
        assert space8.in_interval(
            10, 9, 9, closed_left=False, closed_right=False
        )


class TestSampling:
    def test_random_id_in_range(self, space8, rng):
        for _ in range(100):
            assert space8.contains(space8.random_id(rng))

    def test_random_id_160_bits(self, rng):
        values = [SPACE_160.random_id(rng) for _ in range(20)]
        assert all(0 <= v < 2**160 for v in values)
        # wide draws should exercise high bits
        assert any(v > 2**120 for v in values)

    def test_random_in_interval_strictly_inside(self, space8, rng):
        for _ in range(200):
            v = space8.random_in_interval(rng, 10, 20)
            assert 10 < v < 20

    def test_random_in_interval_wrapping(self, space8, rng):
        for _ in range(200):
            v = space8.random_in_interval(rng, 250, 5)
            assert v > 250 or v < 5

    def test_random_in_interval_empty_raises(self, space8, rng):
        with pytest.raises(IdSpaceError):
            space8.random_in_interval(rng, 10, 11)

    def test_random_in_interval_full_circle(self, space8, rng):
        v = space8.random_in_interval(rng, 7, 7)
        assert space8.contains(v) and v != 7


class TestEvenlySpaced:
    def test_count_and_spacing(self, space8):
        ids = space8.evenly_spaced(4)
        assert ids == [0, 64, 128, 192]

    def test_phase(self, space8):
        ids = space8.evenly_spaced(4, phase=10)
        assert ids == [10, 74, 138, 202]

    def test_invalid_count(self, space8):
        with pytest.raises(IdSpaceError):
            space8.evenly_spaced(0)

    def test_160_bit(self):
        ids = SPACE_160.evenly_spaced(10)
        assert len(ids) == 10
        gaps = np.diff(ids)
        assert (gaps >= 2**160 // 10 - 1).all()


class TestIterPowers:
    def test_finger_starts(self, space8):
        starts = list(space8.iter_powers(250))
        assert len(starts) == 8
        assert starts[0] == 251
        assert starts[1] == 252
        assert starts[7] == (250 + 128) % 256

    def test_space64_powers(self):
        starts = list(SPACE_64.iter_powers(0))
        assert starts[63] == 2**63
