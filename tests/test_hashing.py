"""Tests for SHA-1 key generation and the uniform fast paths."""

import hashlib

import numpy as np
import pytest

from repro.errors import IdSpaceError
from repro.hashspace.hashing import (
    key_for,
    sha1_id,
    sha1_ids,
    uniform_ids,
    uniform_ids_array,
)
from repro.hashspace.idspace import SPACE_64, SPACE_160, IdSpace


class TestSha1:
    def test_matches_hashlib(self):
        expected = int.from_bytes(hashlib.sha1(b"chord").digest(), "big")
        assert sha1_id(b"chord", SPACE_160) == expected

    def test_str_and_bytes_agree(self):
        assert sha1_id("node-1", SPACE_160) == sha1_id(b"node-1", SPACE_160)

    def test_reduction_into_narrow_space(self):
        space = IdSpace(16)
        value = sha1_id("anything", space)
        assert 0 <= value < 2**16

    def test_key_for_deterministic(self):
        assert key_for("file.txt", SPACE_160) == key_for("file.txt", SPACE_160)
        assert key_for("file.txt", SPACE_160) != key_for("file2.txt", SPACE_160)


class TestSha1Ids:
    def test_count_and_range(self, rng):
        ids = sha1_ids(50, SPACE_160, rng)
        assert len(ids) == 50
        assert all(0 <= i < 2**160 for i in ids)

    def test_negative_count_raises(self, rng):
        with pytest.raises(IdSpaceError):
            sha1_ids(-1, SPACE_160, rng)

    def test_seeded_reproducibility(self):
        a = sha1_ids(10, SPACE_160, np.random.default_rng(3))
        b = sha1_ids(10, SPACE_160, np.random.default_rng(3))
        assert a == b


class TestUniformIds:
    def test_list_version_range(self, rng):
        ids = uniform_ids(100, IdSpace(12), rng)
        assert all(0 <= i < 2**12 for i in ids)

    def test_array_version_dtype(self, rng):
        arr = uniform_ids_array(1000, SPACE_64, rng)
        assert arr.dtype == np.uint64
        assert arr.shape == (1000,)

    def test_array_version_covers_high_bits(self, rng):
        arr = uniform_ids_array(2000, SPACE_64, rng)
        assert (arr > np.uint64(2**62)).any()

    def test_array_narrow_space(self, rng):
        arr = uniform_ids_array(5000, IdSpace(10), rng)
        assert int(arr.max()) < 1024

    def test_array_rejects_wide_space(self, rng):
        with pytest.raises(IdSpaceError):
            uniform_ids_array(1, SPACE_160, rng)

    def test_negative_count(self, rng):
        with pytest.raises(IdSpaceError):
            uniform_ids_array(-5, SPACE_64, rng)

    def test_uniformity_rough(self):
        """Mean of many uniform draws sits near the midpoint of the space."""
        rng = np.random.default_rng(0)
        arr = uniform_ids_array(200_000, IdSpace(32), rng).astype(np.float64)
        mid = 2**31
        assert abs(arr.mean() - mid) < 0.02 * 2**32
