"""Tests for the skewed key-distribution generators."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.hashspace.idspace import SPACE_64, IdSpace
from repro.metrics.balance import gini
from repro.sim.engine import TickEngine
from repro.sim.keydist import (
    clustered_keys,
    generate_task_keys,
    zipf_cluster_keys,
)


class TestGenerators:
    def test_clustered_in_space(self, rng):
        space = IdSpace(32)
        keys = clustered_keys(5000, space, rng, n_clusters=4, spread=0.02)
        assert keys.dtype == np.uint64
        assert int(keys.max()) < space.size

    def test_clustered_actually_clusters(self, rng):
        space = IdSpace(32)
        keys = clustered_keys(20_000, space, rng, n_clusters=4, spread=0.005)
        # 4 tight clusters: ~all keys within 4 * (6 sigma) of the ring
        hist, _ = np.histogram(
            keys.astype(float), bins=100, range=(0, space.size)
        )
        occupied = (hist > 0).sum()
        assert occupied < 50  # uniform would occupy ~100 bins

    def test_zipf_weights_clusters_unevenly(self, rng):
        space = IdSpace(32)
        keys = zipf_cluster_keys(
            20_000, space, rng, n_clusters=8, spread=0.001, exponent=2.0
        )
        hist, _ = np.histogram(
            keys.astype(float), bins=200, range=(0, space.size)
        )
        top = np.sort(hist)[::-1]
        # the hottest region holds far more than 1/8 of the keys
        assert top[0] > 20_000 / 8 * 1.5

    def test_wrapping_clusters_are_valid(self):
        """Clusters near 0 must wrap, not clip."""
        space = IdSpace(16)
        rng = np.random.default_rng(0)
        for _ in range(20):
            keys = clustered_keys(
                500, space, rng, n_clusters=1, spread=0.05
            )
            assert int(keys.max()) < space.size


class TestGenerateTaskKeys:
    def test_uniform_dispatch(self, rng):
        config = SimulationConfig(n_nodes=10, n_tasks=100)
        keys = generate_task_keys(1000, config, SPACE_64, rng)
        assert keys.size == 1000

    @pytest.mark.parametrize("dist", ["clustered", "zipf"])
    def test_skewed_dispatch(self, rng, dist):
        config = SimulationConfig(
            n_nodes=10, n_tasks=100, key_distribution=dist
        )
        keys = generate_task_keys(1000, config, SPACE_64, rng)
        assert keys.size == 1000

    def test_skew_increases_initial_imbalance(self):
        def initial_gini(dist: str) -> float:
            engine = TickEngine(
                SimulationConfig(
                    n_nodes=200,
                    n_tasks=20_000,
                    key_distribution=dist,
                    seed=5,
                )
            )
            return gini(engine.network_loads())

        assert initial_gini("zipf") > initial_gini("uniform")

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SimulationConfig(key_distribution="bimodal")
        with pytest.raises(ConfigError):
            SimulationConfig(n_clusters=0)
        with pytest.raises(ConfigError):
            SimulationConfig(cluster_spread=0.0)
        with pytest.raises(ConfigError):
            SimulationConfig(zipf_exponent=1.0)


class TestSkewedRuns:
    @pytest.mark.parametrize("dist", ["clustered", "zipf"])
    def test_simulation_completes_and_conserves(self, dist):
        from repro.sim.engine import run_simulation

        config = SimulationConfig(
            strategy="random_injection",
            n_nodes=100,
            n_tasks=5000,
            key_distribution=dist,
            seed=3,
        )
        result = run_simulation(config)
        assert result.completed
        assert result.total_consumed == 5000

    def test_skew_hurts_baseline_more_than_sybils(self):
        from repro.sim.engine import run_simulation

        base = SimulationConfig(
            n_nodes=150, n_tasks=15_000, key_distribution="zipf", seed=9
        )
        plain = run_simulation(base).runtime_factor
        uniform = run_simulation(
            base.with_updates(key_distribution="uniform")
        ).runtime_factor
        rescued = run_simulation(
            base.with_updates(strategy="random_injection")
        ).runtime_factor
        assert plain > uniform  # skew hurts
        assert rescued < plain / 2  # sybils still rescue
