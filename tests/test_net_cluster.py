"""End-to-end process tests: ring boot, SIGKILL failover, teardown.

These spawn real ``repro serve`` subprocesses on loopback ephemeral
ports, so they are the slowest tests in the suite (a few seconds each).
They exist for exactly one reason: to prove the failure paths the
in-process tests cannot — a node dying without any goodbye.
"""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.net.cluster import LocalCluster
from repro.net.stress import StressConfig, run_stress
from repro.net.transport import RetryPolicy, async_request

POLICY = RetryPolicy(timeout=2.0, retries=1, backoff=0.05)


async def _wait_for_known_peers(addrs, expected, *, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        counts = []
        for addr in addrs:
            try:
                stats = await async_request(
                    addr, {"op": "stats"}, policy=POLICY
                )
                counts.append(stats["known_peers"])
            except ProtocolError:
                counts.append(0)
        if all(c >= expected for c in counts):
            return
        if loop.time() > deadline:
            raise AssertionError(
                f"ring never converged: known_peers={counts}"
            )
        await asyncio.sleep(0.2)


class _ListTrace:
    def __init__(self):
        self.records = []

    def record(self, tick, kind, **fields):
        self.records.append((tick, kind, fields))


class TestLocalClusterValidation:
    def test_ring_size_must_be_positive(self):
        with pytest.raises(ProtocolError):
            LocalCluster(0)


class TestLocalCluster:
    def test_ring_boots_serves_and_stops_clean(self):
        cluster = LocalCluster(2, seed=11, maintenance_interval=0.05)
        cluster.start()
        try:
            addrs = cluster.addrs()
            assert len(addrs) == 2
            assert all(port != 0 for _host, port in addrs)

            async def roundtrip():
                await _wait_for_known_peers(addrs, 2)
                put = await async_request(
                    addrs[0],
                    {"op": "client_put", "key": 31337, "value": "live"},
                    policy=POLICY,
                )
                assert "holder" in put
                got = await async_request(
                    addrs[1], {"op": "client_get", "key": 31337}, policy=POLICY
                )
                assert got["value"] == "live"

            asyncio.run(roundtrip())
        finally:
            assert cluster.stop() is True

    def test_sigkill_mid_stress_failover(self):
        """A node dies without goodbye; the run degrades, not collapses.

        The summary must report both sides of the story: successes on
        the survivors and transient errors from the corpse, with the
        poller seeing the dead target as unreachable.
        """
        cluster = LocalCluster(3, seed=23, maintenance_interval=0.05)
        cluster.start()
        killed = False
        try:
            addrs = cluster.addrs()

            async def main():
                nonlocal killed
                await _wait_for_known_peers(addrs, 3)
                config = StressConfig(
                    targets=tuple(addrs),
                    duration=4.0,
                    concurrency=4,
                    seed=17,
                    prefill=2,
                    key_pool=64,
                    poll_interval=0.4,
                    policy=RetryPolicy(timeout=1.0, retries=1, backoff=0.02),
                )
                trace = _ListTrace()

                async def killer():
                    await asyncio.sleep(1.0)
                    await asyncio.to_thread(cluster.kill, 1)

                summary, _ = await asyncio.gather(
                    run_stress(config, trace=trace), killer()
                )
                killed = True
                return summary, trace

            summary, trace = asyncio.run(main())
        finally:
            # -SIGKILL from kill() counts as clean; survivors SIGTERM out
            assert cluster.stop() is True

        assert killed
        assert not cluster.nodes[1].alive()
        requests = summary["requests"]
        # the ring kept serving: plenty of successes...
        assert requests["success"] > 0
        assert summary["latency_ms"]["p50"] is not None
        # ...and the corpse shows up as transient failures in the rate
        assert requests["errors"]["transient"] > 0
        assert requests["error_rate"] is not None
        assert requests["error_rate"] > 0
        # the poller observed the dead target directly
        polls = [f for _t, kind, f in trace.records if kind == "poll"]
        assert polls, "poller never sampled the ring"
        assert any(p["unreachable"] >= 1 for p in polls)
