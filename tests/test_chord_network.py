"""Tests of the in-memory RPC fabric."""

import pytest

from repro.chord.network import SimNetwork
from repro.chord.node import ChordNode
from repro.errors import ProtocolError, TransientNetworkError
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(16)


def make_node(net: SimNetwork, ident: int) -> ChordNode:
    node = ChordNode(ident, SPACE, net)
    node.create() if len(net) == 0 else None
    return node


class TestRegistry:
    def test_register_and_lookup(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        assert net.has_node(10)
        assert net.is_alive(10)
        assert net.node(10) is node

    def test_unknown_node_raises(self):
        net = SimNetwork()
        with pytest.raises(ProtocolError):
            net.node(99)

    def test_reregister_live_id_rejected(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        with pytest.raises(ProtocolError):
            ChordNode(10, SPACE, net).create()

    def test_dead_id_can_be_reused(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        node.fail()
        replacement = ChordNode(10, SPACE, net)
        replacement.alive = True
        net.register(replacement)
        assert net.node(10) is replacement

    def test_alive_ids_sorted(self):
        net = SimNetwork()
        first = ChordNode(30, SPACE, net)
        first.create()
        ChordNode(10, SPACE, net).join(30)
        assert net.alive_ids() == [10, 30]
        assert len(net) == 2
        assert net.node_count() == 2


class TestRpc:
    def test_rpc_counts_messages(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.reset_messages()
        net.rpc(10, "rpc_ping")
        net.rpc(10, "rpc_ping")
        net.rpc(10, "rpc_get_successor")
        assert net.messages["rpc_ping"] == 2
        assert net.total_messages() == 3

    def test_rpc_to_dead_raises(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        node.fail()
        with pytest.raises(ProtocolError):
            net.rpc(10, "rpc_ping")

    def test_rpc_to_unknown_raises(self):
        net = SimNetwork()
        with pytest.raises(ProtocolError):
            net.rpc(42, "rpc_ping")

    def test_drop_once_fault_injection(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.drop_next_rpc_to(10)
        with pytest.raises(ProtocolError):
            net.rpc(10, "rpc_ping")
        # transient: the next call succeeds
        assert net.rpc(10, "rpc_ping") is True

    def test_drop_once_arms_stack(self):
        """Repeated arming forces a drop *chain*, not a single drop."""
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.drop_next_rpc_to(10)
        net.drop_next_rpc_to(10)
        net.drop_next_rpc_to(10, count=2)
        for _ in range(4):
            with pytest.raises(TransientNetworkError):
                net.rpc(10, "rpc_ping")
        assert net.rpc(10, "rpc_ping") is True
        assert net.drops == 4

    def test_drop_count_must_be_positive(self):
        net = SimNetwork()
        with pytest.raises(ProtocolError):
            net.drop_next_rpc_to(10, count=0)


class TestStatsReset:
    """reset_messages() must clear the whole message plane (bugfix)."""

    def _loaded_network(self) -> SimNetwork:
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.drop_next_rpc_to(10)
        net.rpc_retry(10, "rpc_ping")  # 1 drop, 1 retry, 2 messages
        net.fallbacks += 1  # as ChordNode._holder_fallback does
        assert net.fault_stats() == {"drops": 1, "retries": 1, "fallbacks": 1}
        return net

    def test_reset_messages_clears_fault_stats(self):
        net = self._loaded_network()
        net.reset_messages()
        assert net.total_messages() == 0
        # pre-fix: drops/retries/fallbacks leaked across the reset
        assert net.fault_stats() == {"drops": 0, "retries": 0, "fallbacks": 0}

    def test_reset_fault_stats_keeps_messages(self):
        net = self._loaded_network()
        before = net.total_messages()
        net.reset_fault_stats()
        assert net.total_messages() == before
        assert net.fault_stats() == {"drops": 0, "retries": 0, "fallbacks": 0}


class TestReusedIdFaultState:
    """deregister()/crash() must not bequeath fault state to a reused id."""

    def test_deregister_purges_link_loss(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        net.set_link_loss(10, 1.0)
        net.deregister(10)
        fresh = ChordNode(10, SPACE, net)
        fresh.create()
        # pre-fix: the dead node's 100% loss rate survived and every
        # RPC to the reused id was dropped
        assert net.rpc(10, "rpc_ping") is True
        assert net.drops == 0

    def test_deregister_purges_pending_drop(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.drop_next_rpc_to(10)
        net.deregister(10)
        ChordNode(10, SPACE, net).create()
        assert net.rpc(10, "rpc_ping") is True

    def test_crashed_id_reuse_purges_fault_state(self):
        net = SimNetwork()
        net.crash_detection_ticks = 3
        node = ChordNode(10, SPACE, net)
        node.create()
        net.set_link_loss(10, 1.0)
        net.drop_next_rpc_to(10)
        net.crash(10)
        replacement = ChordNode(10, SPACE, net)
        replacement.alive = True
        net.register(replacement)
        assert net.rpc(10, "rpc_ping") is True
        assert net.drops == 0
        # the crash-detection corpse entry must not linger either
        net.clock += net.crash_detection_ticks + 1
        assert net.is_alive(10)


class TestRetryAccounting:
    """Exact rpc_retry counts under forced drop chains (audit pin).

    Invariant: with k transit drops and budget b, a delivered call
    spends k+1 messages / k retries / k drops; an exhausted call spends
    b+1 messages / b retries / b+1 drops.
    """

    def _net(self, budget: int) -> SimNetwork:
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.configure_faults(transient_retries=budget)
        net.reset_messages()
        return net

    def test_delivered_after_chain(self):
        net = self._net(budget=2)
        net.drop_next_rpc_to(10, count=2)
        assert net.rpc_retry(10, "rpc_ping") is True
        assert net.total_messages() == 3
        assert net.retries == 2
        assert net.drops == 2

    def test_budget_exhausted(self):
        net = self._net(budget=2)
        net.drop_next_rpc_to(10, count=3)
        with pytest.raises(TransientNetworkError):
            net.rpc_retry(10, "rpc_ping")
        assert net.total_messages() == 3
        assert net.retries == 2
        assert net.drops == 3

    def test_zero_budget_never_resends(self):
        net = self._net(budget=0)
        net.drop_next_rpc_to(10)
        with pytest.raises(TransientNetworkError):
            net.rpc_retry(10, "rpc_ping")
        assert net.total_messages() == 1
        assert net.retries == 0
        assert net.drops == 1

    def test_negative_budget_rejected(self):
        net = SimNetwork()
        with pytest.raises(ProtocolError):
            net.configure_faults(transient_retries=-1)

    def test_dead_endpoint_not_retried(self):
        net = self._net(budget=2)
        net.node(10).fail()
        with pytest.raises(ProtocolError):
            net.rpc_retry(10, "rpc_ping")
        assert net.total_messages() == 1
        assert net.retries == 0
