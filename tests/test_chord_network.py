"""Tests of the in-memory RPC fabric."""

import pytest

from repro.chord.network import SimNetwork
from repro.chord.node import ChordNode
from repro.errors import ProtocolError
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(16)


def make_node(net: SimNetwork, ident: int) -> ChordNode:
    node = ChordNode(ident, SPACE, net)
    node.create() if len(net) == 0 else None
    return node


class TestRegistry:
    def test_register_and_lookup(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        assert net.has_node(10)
        assert net.is_alive(10)
        assert net.node(10) is node

    def test_unknown_node_raises(self):
        net = SimNetwork()
        with pytest.raises(ProtocolError):
            net.node(99)

    def test_reregister_live_id_rejected(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        with pytest.raises(ProtocolError):
            ChordNode(10, SPACE, net).create()

    def test_dead_id_can_be_reused(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        node.fail()
        replacement = ChordNode(10, SPACE, net)
        replacement.alive = True
        net.register(replacement)
        assert net.node(10) is replacement

    def test_alive_ids_sorted(self):
        net = SimNetwork()
        first = ChordNode(30, SPACE, net)
        first.create()
        ChordNode(10, SPACE, net).join(30)
        assert net.alive_ids() == [10, 30]
        assert len(net) == 2
        assert net.node_count() == 2


class TestRpc:
    def test_rpc_counts_messages(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.reset_messages()
        net.rpc(10, "rpc_ping")
        net.rpc(10, "rpc_ping")
        net.rpc(10, "rpc_get_successor")
        assert net.messages["rpc_ping"] == 2
        assert net.total_messages() == 3

    def test_rpc_to_dead_raises(self):
        net = SimNetwork()
        node = ChordNode(10, SPACE, net)
        node.create()
        node.fail()
        with pytest.raises(ProtocolError):
            net.rpc(10, "rpc_ping")

    def test_rpc_to_unknown_raises(self):
        net = SimNetwork()
        with pytest.raises(ProtocolError):
            net.rpc(42, "rpc_ping")

    def test_drop_once_fault_injection(self):
        net = SimNetwork()
        ChordNode(10, SPACE, net).create()
        net.drop_next_rpc_to(10)
        with pytest.raises(ProtocolError):
            net.rpc(10, "rpc_ping")
        # transient: the next call succeeds
        assert net.rpc(10, "rpc_ping") is True
