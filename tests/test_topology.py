"""Tests for graph-theoretic overlay analysis."""

import math

import pytest

networkx = pytest.importorskip("networkx")

from repro.analysis.topology import analyze_topology, overlay_graph
from repro.chord.ring import ChordRing
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(24)


@pytest.fixture(scope="module")
def ring():
    return ChordRing.create(64, space=SPACE, seed=6)


class TestOverlayGraph:
    def test_nodes_match_ring(self, ring):
        graph = overlay_graph(ring)
        assert set(graph.nodes) == set(ring.network.alive_ids())

    def test_successor_cycle_present(self, ring):
        graph = overlay_graph(ring, include_fingers=False)
        ids = ring.network.alive_ids()
        for i, ident in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            assert graph.has_edge(ident, succ)

    def test_finger_edges_add_shortcuts(self, ring):
        no_fingers = overlay_graph(ring, include_fingers=False)
        with_fingers = overlay_graph(ring, include_fingers=True)
        assert (
            with_fingers.number_of_edges() > no_fingers.number_of_edges()
        )

    def test_dead_nodes_excluded(self):
        ring = ChordRing.create(20, space=SPACE, seed=7)
        victim = ring.network.alive_ids()[5]
        ring.fail_node(victim)
        graph = overlay_graph(ring)
        assert victim not in graph.nodes


class TestAnalyzeTopology:
    def test_chord_promises_hold(self, ring):
        """Strong connectivity + logarithmic path lengths."""
        report = analyze_topology(ring)
        n = report.n_nodes
        assert report.strongly_connected
        # Chord: average lookup path ~ (1/2) log2 n; graph shortest paths
        # are a lower bound on lookup hops
        assert report.avg_path_length <= math.log2(n)
        assert report.diameter <= 2 * math.log2(n)
        assert report.mean_out_degree >= 5  # successor list alone

    def test_successors_only_is_a_cycle(self, ring):
        graph = overlay_graph(ring, include_fingers=False)
        # successor-list-only graph: still strongly connected, but the
        # n-cycle structure forces long paths without fingers
        assert networkx.is_strongly_connected(graph)

    def test_as_dict(self, ring):
        d = analyze_topology(ring).as_dict()
        assert d["n_nodes"] == 64
        assert "avg_path_length" in d
