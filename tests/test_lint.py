"""reprolint tests: every rule proven to fire, clean snippets stay clean,
self-lint of the real tree, deterministic JSON output, suppressions."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.errors import LintError
from repro.lint import all_rules, lint_paths, render_json, render_sarif
from repro.lint.rules_project import KNOWN_RESULT_SCHEMAS

SRC_DIR = Path(repro.__file__).resolve().parent


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def run_rules(root: Path, *rules: str):
    report = lint_paths([root], select=list(rules), root=root)
    return report.findings


def rule_ids(findings) -> set[str]:
    return {f.rule for f in findings}


class TestRuleCatalogue:
    def test_all_nine_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009",
        ]

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(LintError):
            lint_paths([tmp_path], select=["R999"])


class TestR001RngDiscipline:
    def test_fires_on_stdlib_random_and_default_rng(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/bad.py": (
                    "import random\n"
                    "import numpy as np\n"
                    "rng = np.random.default_rng(0)\n"
                    "x = np.random.rand(3)\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R001")
        assert rule_ids(findings) == {"R001"}
        assert len(findings) == 3

    def test_clean_generator_parameter_and_rng_module(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/good.py": (
                    "import numpy as np\n"
                    "def sample(rng: np.random.Generator) -> float:\n"
                    "    return float(rng.normal())\n"
                ),
                # the one module allowed to mint generators
                "repro/util/rng.py": (
                    "import numpy as np\n"
                    "def make_rng(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R001") == []


class TestR002NondeterminismHazard:
    def test_fires_on_clock_set_order_and_id_keys(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/bad.py": (
                    "import time\n"
                    "t = time.time()\n"
                    "for x in set([3, 1, 2]):\n"
                    "    print(x)\n"
                    "order = sorted([], key=id)\n"
                    "exposed = list({1, 2})\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R002")
        assert rule_ids(findings) == {"R002"}
        assert len(findings) == 4

    def test_clean_sorted_sets_and_cli_allowlist(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/good.py": (
                    "for x in sorted(set([3, 1, 2])):\n"
                    "    print(x)\n"
                    "n = len(set([1, 2]))\n"
                ),
                # wall-clock reporting is the CLI's job (allowlist)
                "repro/cli.py": "import time\nt0 = time.perf_counter()\n",
                # out-of-scope layer: viz may do what it likes
                "repro/viz/free.py": "import time\nt = time.time()\n",
            },
        )
        assert run_rules(tmp_path, "R002") == []

    def test_fires_on_parallelism_imports(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/rogue.py": (
                    "import multiprocessing\n"
                    "import threading\n"
                    "from concurrent.futures import ProcessPoolExecutor\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R002")
        assert rule_ids(findings) == {"R002"}
        assert len(findings) == 3
        assert all("PARALLELISM_ALLOWLIST" in f.message for f in findings)

    def test_parallelism_allowlist_covers_shard_and_trials(self, tmp_path):
        source = (
            "import multiprocessing as mp\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
        )
        write_tree(
            tmp_path,
            {
                # the sanctioned fixed-order-merge modules
                "repro/sim/shard.py": source,
                "repro/sim/trials.py": source,
                # out-of-scope layer: the analysis CLI may pool freely
                "repro/viz/pool.py": source,
            },
        )
        assert run_rules(tmp_path, "R002") == []


class TestR003Uint64Arithmetic:
    def test_fires_on_float_mix_division_and_subtraction(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/bad.py": (
                    "import numpy as np\n"
                    "ids = np.asarray([1, 2], dtype=np.uint64)\n"
                    "a = ids - 1\n"
                    "b = ids / 2\n"
                    "c = ids * 0.5\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R003")
        assert rule_ids(findings) == {"R003"}
        assert len(findings) == 3

    def test_taint_is_scoped_per_function(self, tmp_path):
        # `ids` is uint64 only inside f(); the plain-int `ids` in g()
        # and the shadowing parameter in h() must not be flagged.
        write_tree(
            tmp_path,
            {
                "repro/sim/scoped.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    ids = np.asarray([1], dtype=np.uint64)\n"
                    "    return ids - 1\n"
                    "def g():\n"
                    "    ids = 7\n"
                    "    return ids - 1\n"
                    "def h(ids):\n"
                    "    return ids - 1\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R003")
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_nested_function_inherits_enclosing_taint(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/nested.py": (
                    "import numpy as np\n"
                    "def outer():\n"
                    "    ids = np.asarray([1], dtype=np.uint64)\n"
                    "    def inner():\n"
                    "        return ids - 1\n"
                    "    return inner\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R003")
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_clean_blessed_module_and_unsigned_math(self, tmp_path):
        write_tree(
            tmp_path,
            {
                # blessed wraparound implementation is exempt
                "repro/sim/arcops.py": (
                    "import numpy as np\n"
                    "ids = np.asarray([1, 2], dtype=np.uint64)\n"
                    "d = ids - np.uint64(1)\n"
                ),
                "repro/sim/good.py": (
                    "import numpy as np\n"
                    "ids = np.asarray([1, 2], dtype=np.uint64)\n"
                    "half = ids // 2\n"
                    "s = ids + np.uint64(1)\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R003") == []


class TestR004ErrorDiscipline:
    def test_fires_on_bare_broad_and_builtin_raise(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/bad.py": (
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except:\n"
                    "        pass\n"
                    "def h():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except Exception:\n"
                    "        return None\n"
                    "def r():\n"
                    "    raise ValueError('core module')\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R004")
        assert rule_ids(findings) == {"R004"}
        assert len(findings) == 3

    def test_clean_reraise_typed_raise_and_non_core_scope(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/good.py": (
                    "from repro.errors import SimulationError\n"
                    "def f():\n"
                    "    try:\n"
                    "        g()\n"
                    "    except Exception:\n"
                    "        cleanup()\n"
                    "        raise\n"
                    "def r():\n"
                    "    raise SimulationError('typed')\n"
                    "def lookup(d, k):\n"
                    "    if k not in d:\n"
                    "        raise KeyError(k)\n"
                    "    return d[k]\n"
                ),
                # raise-discipline only binds the core layers
                "repro/analysis/free.py": (
                    "def f():\n"
                    "    raise ValueError('analysis may')\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R004") == []


class TestR005ConfigDrift:
    CONFIG = (
        "class SimulationConfig:\n"
        "    n_nodes: int = 10\n"
        "    dead_knob: float = 0.5\n"
        "class FailureModel:\n"
        "    crash_fraction: float = 0.0\n"
    )

    def test_fires_on_unread_field(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/config.py": self.CONFIG,
                "repro/sim/engine.py": (
                    "def run(cfg):\n"
                    "    return cfg.n_nodes + cfg.failures.crash_fraction\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R005")
        assert len(findings) == 1
        assert findings[0].rule == "R005"
        assert "dead_knob" in findings[0].message
        assert findings[0].path == "repro/config.py"

    def test_clean_when_every_field_is_read(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/config.py": self.CONFIG,
                "repro/sim/engine.py": (
                    "def run(cfg):\n"
                    "    x = cfg.n_nodes + cfg.dead_knob\n"
                    "    return x + cfg.failures.crash_fraction\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R005") == []


def _schema_tree(extra_field: str | None = None) -> dict[str, str]:
    """Mini results/persistence pair matching the pinned v2 schema."""
    fields = sorted(KNOWN_RESULT_SCHEMAS["repro.simulation_result.v2"])
    if extra_field:
        fields.append(extra_field)
    results = "class SimulationResult:\n" + "".join(
        f"    {name}: int = 0\n" for name in fields
    )
    keys = ",\n".join(
        f'        "{name}": 0'
        for name in sorted(KNOWN_RESULT_SCHEMAS["repro.simulation_result.v2"])
    )
    persistence = (
        'RESULT_FORMAT = "repro.simulation_result.v2"\n'
        "def result_to_dict(result):\n"
        "    payload = {\n" + keys + "\n    }\n"
        "    return payload\n"
    )
    return {
        "repro/sim/results.py": results,
        "repro/sim/persistence.py": persistence,
    }


class TestR006SchemaVersioning:
    def test_fires_on_field_change_without_version_bump(self, tmp_path):
        write_tree(tmp_path, _schema_tree(extra_field="new_field"))
        findings = run_rules(tmp_path, "R006")
        assert rule_ids(findings) == {"R006"}
        # the new field is both unserialized and a manifest mismatch
        assert len(findings) == 2
        assert any("not serialized" in f.message for f in findings)
        assert any("bump the version" in f.message for f in findings)

    def test_clean_when_fields_match_pinned_schema(self, tmp_path):
        write_tree(tmp_path, _schema_tree())
        assert run_rules(tmp_path, "R006") == []

    def test_fires_on_unknown_version_string(self, tmp_path):
        tree = _schema_tree()
        tree["repro/sim/persistence.py"] = tree[
            "repro/sim/persistence.py"
        ].replace("v2", "v99")
        write_tree(tmp_path, tree)
        findings = run_rules(tmp_path, "R006")
        assert any("KNOWN_RESULT_SCHEMAS" in f.message for f in findings)


class TestR007AsyncDiscipline:
    def test_fires_on_blocking_unawaited_and_dropped_task(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/net/server.py": (
                    "import asyncio\n"
                    "import time\n"
                    "async def handler():\n"
                    "    time.sleep(0.5)\n"
                    "    asyncio.sleep(1.0)\n"
                    "    asyncio.create_task(work())\n"
                    "async def work():\n"
                    "    await asyncio.sleep(0)\n"
                    "def sync_block():\n"
                    "    time.sleep(1)\n"
                    "async def indirect():\n"
                    "    sync_block()\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R007")
        assert rule_ids(findings) == {"R007"}
        assert len(findings) == 4
        messages = "\n".join(f.message for f in findings)
        assert "time.sleep" in messages          # direct blocking call
        assert "never awaited" in messages       # bare asyncio.sleep(...)
        assert "result dropped" in messages      # dropped create_task
        assert "sync_block" in messages          # transitive blocking

    def test_clean_executor_offload_awaits_and_kept_tasks(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/net/good.py": (
                    "import asyncio\n"
                    "import time\n"
                    "async def handler(loop, tasks):\n"
                    "    await asyncio.sleep(0.1)\n"
                    "    await loop.run_in_executor(None, blocking_io)\n"
                    "    tasks.append(asyncio.create_task(work()))\n"
                    "async def work():\n"
                    "    await asyncio.sleep(0)\n"
                    "def blocking_io():\n"
                    "    time.sleep(1)\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R007") == []

    def test_out_of_scope_async_is_ignored(self, tmp_path):
        # R007 binds only net/ — async helpers elsewhere may block
        write_tree(
            tmp_path,
            {
                "repro/viz/anim.py": (
                    "import time\n"
                    "async def render():\n"
                    "    time.sleep(1)\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R007") == []


class TestR008SharedStateHazard:
    def test_fires_on_module_state_mutated_from_worker(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/shmod.py": (
                    "_CACHE = {}\n"
                    "def worker(task):\n"
                    "    _CACHE[task] = 1\n"
                    "    return 0\n"
                    "def driver(pool, tasks):\n"
                    "    return sum(pool.map(worker, tasks))\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R008")
        assert rule_ids(findings) == {"R008"}
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message

    def test_fires_on_injected_out_of_partition_shm_write(self, tmp_path):
        # Regression: a shard worker writing its shared-memory view
        # directly (outside the blessed slab writer) is exactly the
        # out-of-partition hazard the sharded engine's plan prevents.
        write_tree(
            tmp_path,
            {
                "repro/sim/shardlike.py": (
                    "from multiprocessing import shared_memory\n"
                    "import numpy as np\n"
                    "def _consume_chunk(task):\n"
                    "    name, lo, hi = task\n"
                    "    shm = shared_memory.SharedMemory(name=name)\n"
                    "    counts = np.frombuffer(shm.buf, dtype=np.int64)\n"
                    "    counts[0] = 7\n"
                    "    return hi - lo\n"
                    "def run(pool, tasks):\n"
                    "    return sum(pool.map(_consume_chunk, tasks))\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R008")
        assert len(findings) == 1
        assert "shared-memory" in findings[0].message
        assert findings[0].line == 7

    def test_clean_blessed_writer_and_unreachable_mutation(self, tmp_path):
        write_tree(
            tmp_path,
            {
                # the sanctioned slab writer may store into its view
                "repro/sim/mirror.py": (
                    "import numpy as np\n"
                    "class _ShmMirror:\n"
                    "    def write(self, shm, data):\n"
                    "        view = np.frombuffer(shm.buf, dtype=np.int64)\n"
                    "        view[: data.size] = data\n"
                ),
                # module state mutated only from sequential code
                "repro/sim/seq.py": (
                    "_MEMO = {}\n"
                    "def remember(k, v):\n"
                    "    _MEMO[k] = v\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R008") == []


class TestR009RngStreamAliasing:
    def test_generator_shared_across_two_shard_workers(self, tmp_path):
        # Regression: one Generator dispatched to two workers means both
        # draw from the same stream cursor — results then depend on
        # worker interleaving.
        write_tree(
            tmp_path,
            {
                "repro/sim/fan.py": (
                    "from repro.util.rng import make_rng\n"
                    "def fan_out(pool, seed):\n"
                    "    rng = make_rng(seed)\n"
                    "    a = pool.submit(job, rng)\n"
                    "    b = pool.submit(job, rng)\n"
                    "    return a, b\n"
                    "def job(rng):\n"
                    "    return rng.integers(10)\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R009")
        assert rule_ids(findings) == {"R009"}
        assert len(findings) == 1
        assert findings[0].line == 5  # the second dispatch is the alias

    def test_fires_on_loop_dispatch_and_seed_reuse(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/looped.py": (
                    "from repro.util.rng import make_rng\n"
                    "def loop_share(pool, seed):\n"
                    "    rng = make_rng(seed)\n"
                    "    for i in range(4):\n"
                    "        pool.submit(job, rng)\n"
                    "def seed_twice():\n"
                    "    r1 = make_rng(123)\n"
                    "    r2 = make_rng(123)\n"
                    "    return r1, r2\n"
                    "def job(rng):\n"
                    "    return rng.integers(10)\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R009")
        assert len(findings) == 2
        messages = "\n".join(f.message for f in findings)
        assert "loop" in messages
        assert "seed" in messages

    def test_fires_through_forwarding_helper(self, tmp_path):
        # Interprocedural: the generator reaches two dispatch sites via
        # helpers whose parameters are concurrent sinks.
        write_tree(
            tmp_path,
            {
                "repro/sim/fwd.py": (
                    "from repro.util.rng import make_rng\n"
                    "def forwarded(pool, seed):\n"
                    "    rng = make_rng(seed)\n"
                    "    helper(pool, rng)\n"
                    "    helper2(pool, rng)\n"
                    "def helper(pool, rng):\n"
                    "    pool.submit(job, rng)\n"
                    "def helper2(pool, rng):\n"
                    "    pool.submit(job, rng)\n"
                    "def job(rng):\n"
                    "    return rng.integers(10)\n"
                ),
            },
        )
        findings = run_rules(tmp_path, "R009")
        assert len(findings) >= 1
        assert all(f.rule == "R009" for f in findings)

    def test_clean_per_worker_spawned_streams(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/spawned.py": (
                    "from repro.util.rng import make_rng\n"
                    "def fan_out(pool, seeds):\n"
                    "    rngs = [make_rng(seed) for seed in seeds]\n"
                    "    futs = []\n"
                    "    for i in range(len(rngs)):\n"
                    "        futs.append(pool.submit(job, rngs[i]))\n"
                    "    return futs\n"
                    "def job(rng):\n"
                    "    return rng.integers(10)\n"
                    "def single(pool, seed):\n"
                    "    rng = make_rng(seed)\n"
                    "    return pool.submit(job, rng)\n"
                ),
            },
        )
        assert run_rules(tmp_path, "R009") == []


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/s.py": (
                    "import random  # reprolint: disable=R001 (why)\n"
                ),
            },
        )
        report = lint_paths([tmp_path], select=["R001"], root=tmp_path)
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_file_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/s.py": (
                    "# reprolint: disable-file=R002\n"
                    "import time\n"
                    "a = time.time()\n"
                    "b = time.monotonic()\n"
                ),
            },
        )
        report = lint_paths([tmp_path], select=["R002"], root=tmp_path)
        assert report.findings == []
        assert report.n_suppressed == 2

    def test_uppercase_justification_does_not_break_rule_list(
        self, tmp_path
    ):
        # Free text after the rule list must not merge into the ids,
        # even when it starts with uppercase letters or digits.
        write_tree(
            tmp_path,
            {
                "repro/sim/s.py": (
                    "import time\n"
                    "t = time.time()  "
                    "# reprolint: disable=R002 WALL CLOCK 123\n"
                ),
            },
        )
        report = lint_paths([tmp_path], select=["R002"], root=tmp_path)
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_suppressing_one_rule_keeps_others(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/s.py": (
                    "import random  # reprolint: disable=R002\n"
                ),
            },
        )
        report = lint_paths([tmp_path], select=["R001"], root=tmp_path)
        assert len(report.findings) == 1

    def test_multi_rule_inline_suppression(self, tmp_path):
        # one line, two rules, one comment listing both ids
        write_tree(
            tmp_path,
            {
                "repro/sim/s.py": (
                    "import time\n"
                    "import numpy as np\n"
                    "rng = np.random.default_rng(time.time())"
                    "  # reprolint: disable=R001,R002 (demo)\n"
                ),
            },
        )
        report = lint_paths(
            [tmp_path], select=["R001", "R002"], root=tmp_path
        )
        assert report.findings == []
        assert report.n_suppressed == 2

    def test_file_and_inline_suppressions_combine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/sim/s.py": (
                    "# reprolint: disable-file=R002\n"
                    "import time\n"
                    "import random  # reprolint: disable=R001 (demo)\n"
                    "t = time.time()\n"
                ),
            },
        )
        report = lint_paths(
            [tmp_path], select=["R001", "R002"], root=tmp_path
        )
        assert report.findings == []
        assert report.n_suppressed == 2

    def test_suppression_inside_async_def(self, tmp_path):
        # project-rule findings (R007 lives on the project pass) honor
        # inline suppressions at the reported line like per-file rules
        write_tree(
            tmp_path,
            {
                "repro/net/s.py": (
                    "import time\n"
                    "async def handler():\n"
                    "    time.sleep(0.1)"
                    "  # reprolint: disable=R007 (demo)\n"
                ),
            },
        )
        report = lint_paths([tmp_path], select=["R007"], root=tmp_path)
        assert report.findings == []
        assert report.n_suppressed == 1


class TestSkipDirs:
    def test_tool_caches_and_venvs_are_not_walked(self, tmp_path):
        bad = "import random\n"
        write_tree(
            tmp_path,
            {
                "repro/sim/good.py": "x = 1\n",
                ".venv/lib/pkg.py": bad,
                ".mypy_cache/3.11/pkg.py": bad,
                ".ruff_cache/0.1/pkg.py": bad,
                "__pycache__/pkg.py": bad,
            },
        )
        report = lint_paths([tmp_path], root=tmp_path)
        assert report.findings == []
        assert report.n_files == 1


class TestLintCache:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_LINT_CACHE_DIR", str(tmp_path / "lint-cache")
        )
        monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)

    TREE = {
        "repro/sim/bad.py": "import random\nimport time\nt = time.time()\n",
    }

    def test_hit_is_byte_identical_and_flagged(self, tmp_path):
        root = write_tree(tmp_path / "t", self.TREE)
        first = lint_paths([root], root=root)
        second = lint_paths([root], root=root)
        assert not first.from_cache
        assert second.from_cache
        assert render_json(first) == render_json(second)
        assert render_sarif(first) == render_sarif(second)
        assert first.exit_code == second.exit_code == 1
        assert first.n_files == second.n_files
        assert first.n_suppressed == second.n_suppressed

    def test_source_change_misses(self, tmp_path):
        root = write_tree(tmp_path / "t", self.TREE)
        lint_paths([root], root=root)
        (root / "repro/sim/bad.py").write_text("import random\n")
        report = lint_paths([root], root=root)
        assert not report.from_cache
        assert len(report.findings) == 1

    def test_rule_selection_misses(self, tmp_path):
        root = write_tree(tmp_path / "t", self.TREE)
        lint_paths([root], root=root)
        report = lint_paths([root], select=["R001"], root=root)
        assert not report.from_cache
        assert len(report.findings) == 1

    def test_env_kill_switch_and_cache_kwarg(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path / "t", self.TREE)
        lint_paths([root], root=root)
        assert lint_paths([root], root=root, cache=False).from_cache is False
        monkeypatch.setenv("REPRO_LINT_CACHE", "0")
        assert lint_paths([root], root=root).from_cache is False

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        root = write_tree(tmp_path / "t", self.TREE)
        lint_paths([root], root=root)
        cache_dir = tmp_path / "lint-cache"
        entries = list(cache_dir.rglob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{ not json")
        report = lint_paths([root], root=root)
        assert not report.from_cache
        assert report.exit_code == 1


class TestSarifOutput:
    def test_sarif_is_byte_stable_and_well_formed(self, tmp_path):
        root = write_tree(
            tmp_path,
            {"repro/sim/bad.py": "import random\nimport time\nt = time.time()\n"},
        )
        first = render_sarif(lint_paths([root], root=root, cache=False))
        second = render_sarif(lint_paths([root], root=root, cache=False))
        assert first == second
        doc = json.loads(first)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        levels = {r["level"] for r in run["results"]}
        assert levels <= {"error", "warning", "note"}
        locations = run["results"][0]["locations"][0]
        region = locations["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        rule_meta = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in run["results"]} <= rule_meta

    def test_cli_format_sarif(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"repro/sim/bad.py": "import random\n"},
        )
        code = cli_main(
            ["lint", str(tmp_path), "--format", "sarif", "--no-cache"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "R001"

    def test_cli_format_json_matches_legacy_alias(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"repro/sim/bad.py": "import random\n"},
        )
        cli_main(["lint", str(tmp_path), "--json", "--no-cache"])
        legacy = capsys.readouterr().out
        cli_main(["lint", str(tmp_path), "--format", "json", "--no-cache"])
        modern = capsys.readouterr().out
        assert legacy == modern
        assert json.loads(legacy)["format"] == "repro.lint_report.v1"


class TestOutOfRootLabels:
    def test_directory_scoped_rules_apply_outside_root(self, tmp_path):
        # A linted file outside the lint root keeps its directory parts
        # (via `..` segments) so dir-scoped rules like R002 still apply
        # and same-basename files cannot collide in the label space.
        outside = write_tree(
            tmp_path / "elsewhere",
            {"repro/sim/bad.py": "import time\nt = time.time()\n"},
        )
        root = tmp_path / "rootdir"
        root.mkdir()
        report = lint_paths([outside], select=["R002"], root=root)
        assert len(report.findings) == 1
        label = report.findings[0].path
        assert label.startswith("../")
        assert label.endswith("elsewhere/repro/sim/bad.py")


class TestSelfLintAndDeterminism:
    def test_repo_source_tree_is_clean(self):
        report = lint_paths([SRC_DIR], root=SRC_DIR.parent)
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        assert report.exit_code == 0
        assert report.n_files > 90

    def test_cli_lint_exits_zero_on_src(self, capsys):
        assert cli_main(["lint", str(SRC_DIR)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output_is_byte_stable(self):
        first = render_json(lint_paths([SRC_DIR], root=SRC_DIR.parent))
        second = render_json(lint_paths([SRC_DIR], root=SRC_DIR.parent))
        assert first == second
        assert "timestamp" not in first

    def test_json_cli_byte_stable_with_violations(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "repro/sim/bad.py": "import random\nimport time\n"
                "t = time.time()\n",
            },
        )
        outputs = []
        for _ in range(2):
            code = cli_main(["lint", str(tmp_path), "--json"])
            assert code == 1
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in (
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009",
        ):
            assert rid in out
