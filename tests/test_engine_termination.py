"""Termination-edge coverage: arrivals_pending / finished / terminated.

The interplay the scale work must not disturb: a run is ``finished``
only when no tasks remain *and* the arrival window has closed; it is
``terminated`` when it can never finish (ring death, unrecoverable
loss); ``max_ticks`` is a truncation, not a completion.  Each edge is
parametrized over shard counts — the sharded engine inherits the
termination logic unchanged and must agree exactly.
"""

import numpy as np
import pytest

from repro.config import AdversaryModel, FailureModel, SimulationConfig
from repro.sim.engine import TickEngine
from repro.sim.shard import ShardedTickEngine

SHARD_COUNTS = [1, 2, 4]


def build_engine(config, shards):
    if shards == 1:
        return TickEngine(config)
    return ShardedTickEngine(config, shards=shards, min_parallel_slots=1)


def run_engine(config, shards):
    engine = build_engine(config, shards)
    try:
        return engine, engine.run()
    finally:
        if isinstance(engine, ShardedTickEngine):
            engine.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestRingDeathMidArrivals:
    CONFIG = SimulationConfig(
        n_nodes=12,
        n_tasks=600,
        churn_rate=1.0,  # everyone leaves at tick 1...
        arrival_rate=20.0,
        arrival_until=50,
        failures=FailureModel(
            crash_fraction=1.0, replication_factor=0
        ),  # ...by crashing, with no backups
        seed=3,
    )

    def test_terminates_while_arrivals_still_pending(self, shards):
        engine, result = run_engine(self.CONFIG, shards)
        assert engine.terminated
        assert engine.termination_reason == "ring_empty"
        # the arrival window was still open when the ring died: the run
        # is dead but not "finished" — these are distinct states
        assert engine.arrivals_pending
        assert not engine.finished
        assert result.termination_reason == "ring_empty"
        assert not result.completed
        assert result.runtime_ticks < self.CONFIG.arrival_until

    def test_lost_tasks_are_accounted(self, shards):
        engine, result = run_engine(self.CONFIG, shards)
        assert engine.tasks_lost > 0
        assert (
            result.total_consumed + engine.tasks_lost
            >= self.CONFIG.n_tasks
        )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestRingEmptiesOfTasksMidArrivals:
    """``remaining == 0`` inside the arrival window must not finish."""

    CONFIG = SimulationConfig(
        n_nodes=25,
        n_tasks=25,
        arrival_rate=4.0,
        arrival_until=30,
        seed=11,
    )

    def test_drained_ring_keeps_ticking_through_window(self, shards):
        engine = build_engine(self.CONFIG, shards)
        try:
            saw_drained_but_pending = False
            while not engine.finished:
                engine.step()
                if engine.remaining == 0 and engine.arrivals_pending:
                    assert not engine.finished
                    saw_drained_but_pending = True
            # 25 nodes drain 25 initial tasks in one tick while ~4/tick
            # arrive: the drained-but-pending state must occur
            assert saw_drained_but_pending
            assert engine.tick >= self.CONFIG.arrival_until
        finally:
            if isinstance(engine, ShardedTickEngine):
                engine.close()

    def test_run_completes_after_window(self, shards):
        _, result = run_engine(self.CONFIG, shards)
        assert result.completed
        assert result.termination_reason is None
        assert result.runtime_ticks >= self.CONFIG.arrival_until
        assert result.total_injected > self.CONFIG.n_tasks


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestMaxTicksOnFinalConsumptionTick:
    """One node, ten tasks, rate one: the run needs exactly ten ticks."""

    def config(self, max_ticks):
        return SimulationConfig(
            n_nodes=1, n_tasks=10, max_ticks=max_ticks, seed=0
        )

    def test_cap_equal_to_runtime_still_completes(self, shards):
        engine, result = run_engine(self.config(max_ticks=10), shards)
        assert result.runtime_ticks == 10
        assert engine.finished
        assert result.completed
        assert result.termination_reason is None
        assert result.total_consumed == 10

    def test_cap_one_short_truncates(self, shards):
        engine, result = run_engine(self.config(max_ticks=9), shards)
        assert result.runtime_ticks == 9
        assert not engine.finished
        assert engine.remaining == 1
        assert not result.completed
        assert result.termination_reason == "max_ticks"

    def test_trajectories_agree_across_shard_counts(self, shards):
        _, result = run_engine(self.config(max_ticks=10), shards)
        _, base = run_engine(self.config(max_ticks=10), 1)
        assert result.runtime_ticks == base.runtime_ticks
        np.testing.assert_array_equal(result.final_loads, base.final_loads)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestFreeRiderTruncation:
    """Free-riding adversaries strand tasks: with no churn there is no
    rejoin path to recapture them, so the run must truncate at
    ``max_ticks`` — never report completion — and the stranded work must
    show up in the adversary summary, identically for every shard count.
    """

    CONFIG = SimulationConfig(
        n_nodes=20,
        n_tasks=1000,
        max_ticks=60,
        adversary=AdversaryModel(free_riders=3, attack_tick=2),
        seed=21,
    )

    def test_truncates_with_stranded_tasks(self, shards):
        engine, result = run_engine(self.CONFIG, shards)
        assert not engine.finished
        assert not result.completed
        assert result.termination_reason == "max_ticks"
        assert result.adversary is not None
        assert result.adversary["stranded_tasks"] > 0
        assert result.adversary["slots_joined"] == 3

    def test_agrees_with_plain_engine(self, shards):
        _, result = run_engine(self.CONFIG, shards)
        _, base = run_engine(self.CONFIG, 1)
        assert result.adversary == base.adversary
        np.testing.assert_array_equal(result.final_loads, base.final_loads)
