"""The observability layer: trace sinks, profiler, metrics registry.

Two properties anchor everything here:

* **round trip** — what a sink writes, ``read_trace_jsonl`` reads back
  as the identical event stream;
* **non-interference** — attaching a trace sink and a profiler to an
  engine leaves the seeded result bit-identical to an unobserved run.
"""

import json

import numpy as np
import pytest

import repro.obs.profile as obs_profile
from repro.cli import main
from repro.config import SimulationConfig
from repro.obs import (
    NULL_PROFILER,
    JsonlTraceSink,
    MetricsRegistry,
    PhaseProfiler,
    TraceRecorder,
    collect_run_metrics,
    jsonable,
    read_trace_jsonl,
    result_fingerprint,
)
from repro.sim.engine import TickEngine
from repro.sim.trials import RunStats, run_trial


class FakeClock:
    """Deterministic perf_counter stand-in: +0.25s per call."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.25
        return self.now


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = jsonable(
            {
                "i": np.int64(7),
                "f": np.float64(0.5),
                "b": np.bool_(True),
                "a": np.arange(3),
                "nested": [np.uint64(2), (np.int32(1),)],
            }
        )
        assert out == {
            "i": 7,
            "f": 0.5,
            "b": True,
            "a": [0, 1, 2],
            "nested": [2, [1]],
        }
        json.dumps(out)  # must not raise

    def test_unknown_objects_degrade_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert jsonable({"x": Opaque()}) == {"x": "<opaque>"}


class TestRecorderJsonl:
    def test_to_jsonl_handles_numpy_scalar_fields(self):
        # regression: emitters pass np.int64 owners; this used to raise
        # TypeError("Object of type int64 is not JSON serializable")
        rec = TraceRecorder()
        rec.record(1, "sybil_created", owner=np.int64(3), acquired=np.int64(9))
        lines = rec.to_jsonl().splitlines()
        assert json.loads(lines[0]) == {
            "tick": 1,
            "kind": "sybil_created",
            "owner": 3,
            "acquired": 9,
        }


# ----------------------------------------------------------------------
# streaming sink
# ----------------------------------------------------------------------
class TestJsonlTraceSink:
    def test_round_trip_identical_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, buffer_events=3) as sink:
            sink.record(1, "a", x=1)
            sink.record(2, "b", y=np.int64(2))
            sink.record(3, "a", z=[1, 2])
        events = list(read_trace_jsonl(path))
        assert [e.as_dict() for e in events] == [
            {"tick": 1, "kind": "a", "x": 1},
            {"tick": 2, "kind": "b", "y": 2},
            {"tick": 3, "kind": "a", "z": [1, 2]},
        ]
        assert sink.n_written == 3
        assert sink.by_kind == {"a": 2, "b": 1}

    def test_matches_in_memory_recorder_for_a_real_run(self, tmp_path):
        config = SimulationConfig(
            strategy="invitation", n_nodes=50, n_tasks=1500,
            churn_rate=0.02, seed=3,
        )
        recorder = TraceRecorder()
        TickEngine(config, trace=recorder).run()
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            TickEngine(config, trace=sink).run()
        streamed = [e.as_dict() for e in read_trace_jsonl(path)]
        in_memory = [jsonable(e.as_dict()) for e in recorder]
        assert streamed == in_memory

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, kinds=["keep"]) as sink:
            sink.record(1, "keep", a=1)
            sink.record(1, "drop", a=2)
        assert [e.kind for e in read_trace_jsonl(path)] == ["keep"]
        assert sink.n_written == 1

    def test_tick_window_filter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, tick_range=(2, 3)) as sink:
            for tick in (1, 2, 3, 4):
                sink.record(tick, "e")
        assert [e.tick for e in read_trace_jsonl(path)] == [2, 3]

    def test_memory_is_bounded_by_buffer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, buffer_events=8) as sink:
            for tick in range(1000):
                sink.record(tick, "e", n=tick)
                assert len(sink._buffer) < 8
        assert sum(1 for _ in read_trace_jsonl(path)) == 1000

    def test_record_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        assert sink.closed
        with pytest.raises(ValueError, match="closed"):
            sink.record(1, "e")

    def test_rejects_silly_buffer(self, tmp_path):
        with pytest.raises(ValueError, match="buffer_events"):
            JsonlTraceSink(tmp_path / "t.jsonl", buffer_events=0)


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_accumulates_per_phase(self):
        prof = PhaseProfiler(clock=FakeClock())
        with prof.phase("churn"):
            pass
        with prof.phase("churn"):
            pass
        with prof.phase("consumption"):
            pass
        assert prof.calls == {"churn": 2, "consumption": 1}
        # each phase entry spans exactly one clock step of 0.25s
        assert prof.seconds["churn"] == pytest.approx(0.5)
        assert prof.total_seconds() == pytest.approx(0.75)

    def test_as_dict_orders_engine_phases_first(self):
        prof = PhaseProfiler(clock=FakeClock())
        for name in ("zeta_custom", "measurement", "strategy"):
            with prof.phase(name):
                pass
        assert list(prof.as_dict()["phases"]) == [
            "strategy", "measurement", "zeta_custom",
        ]

    def test_null_profiler_is_inert(self):
        with NULL_PROFILER.phase("anything"):
            pass
        assert NULL_PROFILER.as_dict() == {}
        assert not NULL_PROFILER.enabled

    def test_engine_records_every_phase(self):
        prof = PhaseProfiler()
        config = SimulationConfig(
            strategy="invitation", n_nodes=40, n_tasks=800,
            churn_rate=0.02, arrival_rate=5.0, arrival_until=10, seed=1,
        )
        TickEngine(config, profiler=prof).run()
        assert set(prof.calls) == {
            "strategy", "churn", "arrivals", "consumption", "measurement",
        }

    def test_json_is_byte_stable_for_a_fixed_clock(self):
        def run_once() -> str:
            prof = PhaseProfiler(clock=FakeClock())
            config = SimulationConfig(
                strategy="invitation", n_nodes=40, n_tasks=800,
                churn_rate=0.02, seed=1,
            )
            run_trial(config, profiler=prof)
            return json.dumps(prof.as_dict(), sort_keys=True)

        assert run_once() == run_once()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_gauges_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b.two", 2)
        reg.inc("a.one")
        reg.inc("a.one", 4)
        reg.gauge("z.last", 1.5)
        assert reg.as_dict() == {
            "counters": {"a.one": 5, "b.two": 2},
            "gauges": {"z.last": 1.5},
        }

    def test_collect_unifies_all_sources(self):
        prof = PhaseProfiler(clock=FakeClock())
        with prof.phase("churn"):
            pass
        stats = RunStats(trials_run=3, trials_cached=1, trial_seconds=1.2)
        reg = collect_run_metrics(
            engine_counters={"churn_joins": 7, "decision_rounds": 4},
            run_stats=stats,
            profiler=prof,
        )
        data = reg.as_dict()
        assert data["counters"]["sim.churn_joins"] == 7
        assert data["counters"]["trials.trials_run"] == 3
        assert data["counters"]["profile.churn_calls"] == 1
        assert data["gauges"]["trials.trial_seconds"] == pytest.approx(1.2)
        assert data["gauges"]["profile.churn_seconds"] == pytest.approx(0.25)
        assert "profile.total_seconds" in data["gauges"]

    def test_collect_skips_disabled_profiler(self):
        reg = collect_run_metrics(profiler=NULL_PROFILER)
        assert reg.as_dict() == {"counters": {}, "gauges": {}}


# ----------------------------------------------------------------------
# non-interference: observability never changes results
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_traced_and_profiled_run_matches_plain(self, tmp_path):
        config = SimulationConfig(
            strategy="invitation", n_nodes=60, n_tasks=2000,
            churn_rate=0.02, seed=11,
        )
        plain = run_trial(config)
        with JsonlTraceSink(tmp_path / "t.jsonl") as sink:
            observed = run_trial(
                config, trace=sink, profiler=PhaseProfiler()
            )
        assert result_fingerprint(observed) == result_fingerprint(plain)
        np.testing.assert_array_equal(
            observed.final_loads, plain.final_loads
        )
        assert observed.runtime_ticks == plain.runtime_ticks
        assert observed.counters == plain.counters


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
SIM_ARGS = [
    "--strategy", "invitation", "--nodes", "50", "--tasks", "1200",
    "--churn", "0.02", "--seed", "5",
]


class TestTraceCommand:
    def test_writes_parseable_jsonl_and_json_summary(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["trace", *SIM_ARGS, "--out", str(out), "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        events = list(read_trace_jsonl(out))
        assert summary["events_written"] == len(events)
        assert sum(summary["events_by_kind"].values()) == len(events)
        assert len(summary["fingerprint"]) == 16

    def test_json_summary_is_deterministic(self, tmp_path, capsys):
        outputs = []
        for name in ("a.jsonl", "b.jsonl"):
            out = tmp_path / name
            assert main(["trace", *SIM_ARGS, "--out", str(out), "--json"]) == 0
            outputs.append(
                capsys.readouterr().out.replace(str(out), "OUT")
            )
        assert outputs[0] == outputs[1]

    def test_kind_filter_flag(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            ["trace", *SIM_ARGS, "--out", str(out),
             "--kinds", "churn_leave", "--json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary["events_by_kind"]) <= {"churn_leave"}
        assert all(e.kind == "churn_leave" for e in read_trace_jsonl(out))

    def test_bad_tick_window_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["trace", *SIM_ARGS, "--out", str(tmp_path / "t.jsonl"),
                 "--ticks", "nonsense"]
            )


class TestProfileCommandJson:
    def test_json_has_phases_and_convergence(self, capsys):
        code = main(["profile", *SIM_ARGS, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "utilization_auc" in payload["convergence"]
        phases = payload["profile"]["phases"]
        assert {"strategy", "churn", "consumption", "measurement"} <= set(
            phases
        )
        assert all(p["calls"] > 0 for p in phases.values())

    def test_json_is_byte_stable_with_fixed_clock(self, capsys, monkeypatch):
        # the profiler reads the module clock at construction time, so
        # patching it makes the timings (and hence the bytes) repeat
        monkeypatch.setattr(
            obs_profile.time, "perf_counter", FakeClock()
        )
        outputs = []
        for _ in range(2):
            assert main(["profile", *SIM_ARGS, "--json"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_text_output_includes_phase_table(self, capsys):
        assert main(["profile", *SIM_ARGS]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall clock" in out
        assert "consumption" in out
