"""Property-based tests: RingState never loses or invents tasks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IdSpaceError
from repro.hashspace.idspace import IdSpace
from repro.sim.state import RingState

SPACE = IdSpace(12)


def build(seed: int, n_nodes: int, n_keys: int) -> RingState:
    rng = np.random.default_rng(seed)
    ids = rng.choice(SPACE.size, size=n_nodes, replace=False).astype(np.uint64)
    keys = rng.integers(0, SPACE.size, size=n_keys, dtype=np.uint64)
    return RingState.build(
        SPACE, ids, np.arange(n_nodes, dtype=np.int64), keys, rng
    )


op = st.sampled_from(["insert", "remove", "consume"])


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(2, 20),
    n_keys=st.integers(0, 300),
    ops=st.lists(st.tuples(op, st.integers(0, 2**31 - 1)), max_size=25),
)
def test_random_operation_sequences_conserve_tasks(seed, n_nodes, n_keys, ops):
    """Arbitrary insert/remove/consume sequences keep the books balanced:

    consumed_so_far + remaining == n_keys, and every structural invariant
    holds after every operation.
    """
    state = build(seed, n_nodes, n_keys)
    rng = np.random.default_rng(seed ^ 0xABCDEF)
    consumed_total = 0
    next_owner = n_nodes

    for kind, op_seed in ops:
        op_rng = np.random.default_rng(op_seed)
        if kind == "insert":
            ident = int(op_rng.integers(0, SPACE.size))
            try:
                state.insert_slot(ident, owner=next_owner, is_main=True)
                next_owner += 1
            except IdSpaceError:
                pass  # collision: caller would redraw
        elif kind == "remove" and state.n_slots > 1:
            slot = int(op_rng.integers(0, state.n_slots))
            state.remove_slot(slot)
        elif kind == "consume" and state.n_slots > 0:
            slot = int(op_rng.integers(0, state.n_slots))
            take = int(
                min(state.counts[slot], int(op_rng.integers(0, 5)))
            )
            state.consume_at(
                np.array([slot]), np.array([take], dtype=np.int64)
            )
            consumed_total += take
        state.verify_invariants()
        assert consumed_total + state.total_remaining() == n_keys


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, SPACE.size - 1))
def test_insert_then_remove_restores_load(seed, split):
    """Splitting a slot and removing the new slot returns all keys to the
    successor (merge is the inverse of split, up to shuffling)."""
    state = build(seed, n_nodes=5, n_keys=120)
    if state.id_exists(split):
        return
    succ = state.find_slot(split)
    succ_load = int(state.counts[succ])
    pos, acquired = state.insert_slot(split, owner=99, is_main=False)
    state.remove_slot(pos)
    state.verify_invariants()
    restored = state.find_slot(split)
    assert int(state.counts[restored]) == succ_load
    assert acquired <= succ_load
