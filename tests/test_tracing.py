"""Tests for the structured event trace."""

import json

import pytest

from repro.config import SimulationConfig
from repro.obs.trace import TraceRecorder
from repro.sim.engine import TickEngine


def test_sim_tracing_shim_removed():
    """The deprecated ``repro.sim.tracing`` shim is gone for good —
    importing it must fail so stale call sites surface loudly rather
    than silently re-growing a compatibility layer."""
    with pytest.raises(ModuleNotFoundError):
        import repro.sim.tracing  # noqa: F401


def traced_run(**overrides):
    overrides.setdefault("n_nodes", 60)
    overrides.setdefault("n_tasks", 3000)
    overrides.setdefault("seed", 2)
    trace = TraceRecorder()
    engine = TickEngine(SimulationConfig(**overrides), trace=trace)
    result = engine.run()
    return trace, engine, result


class TestRecorder:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1, "a", x=1)
        trace.record(2, "b", y=2)
        trace.record(2, "a", x=3)
        assert len(trace) == 3
        assert [e["x"] for e in trace.of_kind("a")] == [1, 3]
        assert len(trace.at_tick(2)) == 2
        assert trace.kinds() == {"a": 2, "b": 1}
        assert trace.first("b")["y"] == 2
        assert trace.first("missing") is None

    def test_jsonl(self):
        trace = TraceRecorder()
        trace.record(7, "evt", value=42)
        lines = trace.to_jsonl().splitlines()
        assert json.loads(lines[0]) == {"tick": 7, "kind": "evt", "value": 42}

    def test_summary(self):
        trace = TraceRecorder()
        assert "no events" in trace.summary()
        trace.record(3, "x")
        assert "1 events" in trace.summary()


class TestEngineEvents:
    def test_sybil_events_match_counters(self):
        trace, _, result = traced_run(strategy="random_injection")
        created = trace.of_kind("sybil_created")
        assert len(created) == result.counters["sybils_created"]
        retired = sum(
            e["count"] for e in trace.of_kind("sybils_retired")
        )
        assert retired == result.counters["sybils_retired"]

    def test_churn_events_match_counters(self):
        trace, _, result = traced_run(
            strategy="churn", churn_rate=0.02
        )
        assert len(trace.of_kind("churn_join")) == result.counters[
            "churn_joins"
        ]
        assert len(trace.of_kind("churn_leave")) == result.counters[
            "churn_leaves"
        ]
        moved = sum(
            e["keys_moved"] for e in trace.of_kind("churn_leave")
        ) + sum(e["acquired"] for e in trace.of_kind("churn_join"))
        assert moved == result.counters["churn_keys_moved"]

    def test_one_sybil_per_owner_per_round(self):
        """Event-level check of the §IV-B one-per-decision rule."""
        trace, engine, _ = traced_run(strategy="random_injection")
        interval = engine.config.decision_interval
        per_round: dict[tuple[int, int], int] = {}
        for event in trace.of_kind("sybil_created"):
            key = (event.tick // interval, event["owner"])
            per_round[key] = per_round.get(key, 0) + 1
        assert per_round and max(per_round.values()) == 1

    def test_acquired_sums_to_tasks_acquired(self):
        trace, _, result = traced_run(strategy="random_injection")
        acquired = sum(
            e["acquired"] for e in trace.of_kind("sybil_created")
        )
        assert acquired == result.counters["tasks_acquired"]

    def test_relocation_events(self):
        trace, _, result = traced_run(strategy="relocation")
        assert len(trace.of_kind("relocation")) == result.counters[
            "relocations"
        ]

    def test_no_trace_by_default(self):
        engine = TickEngine(
            SimulationConfig(n_nodes=20, n_tasks=100, seed=1)
        )
        assert engine.trace is None
        engine.run()  # must not crash without a recorder
