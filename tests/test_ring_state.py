"""Unit tests for RingState: splits, merges, exact key accounting."""

import numpy as np
import pytest

from repro.errors import IdSpaceError, RingError
from repro.hashspace.idspace import IdSpace
from repro.sim.state import RingState


def make_state(rng, ids=(50, 100, 200), counts_space_bits=8, n_keys=60):
    space = IdSpace(counts_space_bits)
    node_ids = np.array(ids, dtype=np.uint64)
    owners = np.arange(len(ids), dtype=np.int64)
    keys = rng.integers(0, space.size, size=n_keys, dtype=np.uint64)
    return RingState.build(space, node_ids, owners, keys, rng), keys


class TestBuild:
    def test_assignment_respects_arcs(self, rng):
        state, keys = make_state(rng)
        state.verify_invariants()
        assert state.total_remaining() == keys.size

    def test_key_in_correct_slot(self, rng):
        state, _ = make_state(rng)
        for slot in range(state.n_slots):
            pred, own = state.slot_arc(slot)
            for key in state.remaining_keys(slot).tolist():
                assert state.space.in_interval(key, pred, own)

    def test_sorted_ids(self, rng):
        state, _ = make_state(rng, ids=(200, 50, 100))
        assert state.ids.tolist() == [50, 100, 200]

    def test_duplicate_ids_rejected(self, rng):
        space = IdSpace(8)
        with pytest.raises(RingError):
            RingState.build(
                space,
                np.array([5, 5], dtype=np.uint64),
                np.array([0, 1], dtype=np.int64),
                np.array([], dtype=np.uint64),
                rng,
            )

    def test_empty_ring_rejected(self, rng):
        with pytest.raises(RingError):
            RingState.build(
                IdSpace(8),
                np.array([], dtype=np.uint64),
                np.array([], dtype=np.int64),
                np.array([], dtype=np.uint64),
                rng,
            )


class TestQueries:
    def test_find_slot(self, rng):
        state, _ = make_state(rng)
        assert state.find_slot(60) == 1  # (50, 100]
        assert state.find_slot(100) == 1
        assert state.find_slot(101) == 2
        assert state.find_slot(250) == 0  # wraps
        assert state.find_slot(10) == 0

    def test_slot_arc_and_gap(self, rng):
        state, _ = make_state(rng)
        assert state.slot_arc(1) == (50, 100)
        assert state.slot_gap(1) == 50
        assert state.slot_gap(0) == (50 - 200) % 256

    def test_gaps_sum_to_space(self, rng):
        state, _ = make_state(rng)
        assert int(state.gaps().sum()) == 256

    def test_owner_helpers(self, rng):
        state, _ = make_state(rng)
        assert state.slots_of_owner(1).tolist() == [1]
        assert state.main_slot_of(2) == 2

    def test_successor_predecessor_slots(self, rng):
        state, _ = make_state(rng)
        assert state.successor_slots(2, 2).tolist() == [0, 1]
        assert state.predecessor_slots(0, 2).tolist() == [2, 1]


class TestInsert:
    def test_insert_acquires_exact_keys(self, rng):
        state, _ = make_state(rng)
        before = state.total_remaining()
        succ = state.find_slot(75)
        expected = int(
            sum(
                1
                for k in state.remaining_keys(succ).tolist()
                if 50 < k <= 75
            )
        )
        pos, acquired = state.insert_slot(75, owner=3, is_main=True)
        assert acquired == expected
        assert state.total_remaining() == before
        assert state.counts[pos] == acquired
        state.verify_invariants()

    def test_insert_wrapping_arc(self, rng):
        state, _ = make_state(rng)
        before = state.total_remaining()
        state.insert_slot(250, owner=3, is_main=True)
        state.verify_invariants()
        assert state.total_remaining() == before

    def test_insert_collision_raises(self, rng):
        state, _ = make_state(rng)
        with pytest.raises(IdSpaceError):
            state.insert_slot(100, owner=3, is_main=True)

    def test_insert_sybil_counter(self, rng):
        state, _ = make_state(rng)
        state.insert_slot(75, owner=0, is_main=False)
        assert state.n_sybil_slots == 1


class TestRemove:
    def test_remove_merges_into_successor(self, rng):
        state, _ = make_state(rng)
        before = state.total_remaining()
        count_1 = int(state.counts[1])
        count_2 = int(state.counts[2])
        state.remove_slot(1)
        state.verify_invariants()
        assert state.total_remaining() == before
        # slot formerly at 2 is now at index 1 and holds both loads
        assert int(state.counts[1]) == count_1 + count_2

    def test_remove_last_index_wraps_to_first(self, rng):
        state, _ = make_state(rng)
        before = state.total_remaining()
        count_0 = int(state.counts[0])
        count_2 = int(state.counts[2])
        state.remove_slot(2)
        state.verify_invariants()
        assert state.total_remaining() == before
        assert int(state.counts[0]) == count_0 + count_2

    def test_cannot_remove_last_slot(self, rng):
        state, _ = make_state(rng, ids=(50,))
        with pytest.raises(RingError):
            state.remove_slot(0)

    def test_remove_owner_removes_all_slots(self, rng):
        state, _ = make_state(rng)
        state.insert_slot(75, owner=0, is_main=False)
        state.insert_slot(220, owner=0, is_main=False)
        before = state.total_remaining()
        state.remove_owner(0)
        assert state.slots_of_owner(0).size == 0
        assert state.total_remaining() == before
        state.verify_invariants()

    def test_retire_sybils_keeps_main(self, rng):
        state, _ = make_state(rng)
        state.insert_slot(75, owner=0, is_main=False)
        removed = state.retire_sybils(0)
        assert removed == 1
        assert state.slots_of_owner(0).size == 1
        assert state.is_main[state.main_slot_of(0)]
        assert state.n_sybil_slots == 0


class TestConsumption:
    def test_consume_at(self, rng):
        state, _ = make_state(rng)
        slots = np.array([0, 1], dtype=np.int64)
        amounts = np.minimum(state.counts[slots], 2)
        before = state.total_remaining()
        state.consume_at(slots, amounts)
        assert state.total_remaining() == before - int(amounts.sum())

    def test_overconsume_raises(self, rng):
        state, _ = make_state(rng)
        slots = np.array([0], dtype=np.int64)
        with pytest.raises(RingError):
            state.consume_at(slots, state.counts[slots] + 1)

    def test_split_after_consumption_uses_remaining_only(self, rng):
        state, _ = make_state(rng)
        slot = int(np.argmax(state.counts))
        consumed = int(state.counts[slot]) // 2
        state.consume_at(
            np.array([slot]), np.array([consumed], dtype=np.int64)
        )
        remaining_before = state.total_remaining()
        mid = state.space.midpoint(*state.slot_arc(slot))
        if mid != state.slot_arc(slot)[0] and not state.id_exists(mid):
            state.insert_slot(mid, owner=5, is_main=True)
        assert state.total_remaining() == remaining_before
        state.verify_invariants()


class TestMedianKey:
    def test_median_splits_remaining_in_half(self, rng):
        state, _ = make_state(rng, n_keys=200)
        slot = int(np.argmax(state.counts))
        median = state.median_key(slot)
        assert median is not None
        remaining = state.remaining_keys(slot)
        pred, _ = state.slot_arc(slot)
        below = sum(
            1
            for k in remaining.tolist()
            if state.space.in_interval(k, pred, median)
        )
        assert abs(below - remaining.size / 2) <= 1

    def test_median_none_when_too_few(self, rng):
        state, _ = make_state(rng, n_keys=0)
        assert state.median_key(0) is None
