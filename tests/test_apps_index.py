"""Tests for the inverted-index application and the viz timeline."""

import numpy as np
import pytest

from repro.apps.invertedindex import build_inverted_index, search
from repro.config import SimulationConfig
from repro.sim.engine import run_simulation
from repro.viz.timeline import sparkline, utilization_timeline

DOCS = [
    "the chord ring",
    "the sybil attack",
    "ring of tasks and the chord overlay",
    "autonomous balancing",
]


class TestInvertedIndex:
    @pytest.fixture(scope="class")
    def index(self):
        index, report = build_inverted_index(DOCS, n_nodes=12, seed=0)
        return index, report

    def test_postings_correct(self, index):
        idx, _ = index
        assert idx["chord"] == (0, 2)
        assert idx["sybil"] == (1,)
        assert idx["the"] == (0, 1, 2)

    def test_postings_deduplicated(self, index):
        idx, _ = index
        # "ring" appears once per doc even though doc 2 mentions it once
        assert idx["ring"] == (0, 2)

    def test_report(self, index):
        _, report = index
        assert report.n_map_tasks == len(DOCS)
        assert report.n_reduce_tasks == len(set(" ".join(DOCS).split()))

    def test_same_index_under_balancing(self):
        plain, _ = build_inverted_index(DOCS, n_nodes=12, seed=0)
        balanced, _ = build_inverted_index(
            DOCS, n_nodes=12, strategy="random_injection", seed=0
        )
        assert plain == balanced

    def test_search_and(self, index):
        idx, _ = index
        assert search(idx, "the chord") == (0, 2)
        assert search(idx, "the sybil") == (1,)
        assert search(idx, "chord sybil") == ()
        assert search(idx, "") == ()
        assert search(idx, "unknownword") == ()


class TestSparkline:
    def test_levels_scale(self):
        out = sparkline(np.array([0.0, 0.5, 1.0]), width=3)
        assert out[0] == "▁"
        assert out[-1] == "█"
        assert len(out) == 3

    def test_pooling_to_width(self):
        out = sparkline(np.arange(1000), width=20)
        assert len(out) == 20
        # monotone series -> non-decreasing glyph levels
        levels = ["▁▂▃▄▅▆▇█".index(c) for c in out]
        assert levels == sorted(levels)

    def test_flat_series(self):
        assert sparkline(np.array([5.0, 5.0]), width=2) == "▁▁"

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_utilization_timeline(self):
        result = run_simulation(
            SimulationConfig(
                n_nodes=100, n_tasks=5000, collect_timeseries=True, seed=1
            )
        )
        line = utilization_timeline(result.timeseries, width=30)
        assert len(line) == 30
        # baseline: busy at the start, idle at the end
        assert line[0] in "▇█"
        assert line[-1] in "▁▂"
