"""Targeted tests of the multi-slot consumption path (Sybil-era ticks).

The fast path handles one-slot owners; these tests force the grouped
lexsort path and its residual loop (owner demand exceeding the heaviest
identity's remaining tasks).
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine


def engine_with_sybils(**overrides) -> TickEngine:
    overrides.setdefault("strategy", "random_injection")
    overrides.setdefault("n_nodes", 50)
    overrides.setdefault("n_tasks", 5000)
    overrides.setdefault("seed", 31)
    engine = TickEngine(SimulationConfig(**overrides))
    while engine.state.n_sybil_slots == 0 and not engine.finished:
        engine.step()
    return engine


class TestGroupedConsumption:
    def test_consumption_equals_min_rate_load(self):
        engine = engine_with_sybils()
        loads = engine.state.owner_loads(engine.owners.n_total)
        rates = engine.owners.rate
        expected = int(np.minimum(loads, rates).sum())
        consumed = engine._consume_tick()
        assert consumed == expected

    def test_heaviest_slot_drained_first(self):
        engine = engine_with_sybils()
        # find an owner with 2+ slots and work
        for owner in engine.owners.network_indices:
            slots = engine.state.slots_of_owner(int(owner))
            if slots.size >= 2 and engine.state.counts[slots].sum() > 1:
                break
        else:
            pytest.skip("no multi-slot owner with work for this seed")
        counts_before = engine.state.counts[slots].copy()
        heavy = int(np.argmax(counts_before))
        engine._consume_tick()
        counts_after = engine.state.counts[
            engine.state.slots_of_owner(int(owner))
        ]
        assert counts_after[heavy] == counts_before[heavy] - 1
        others = [i for i in range(len(slots)) if i != heavy]
        assert all(
            counts_after[i] == counts_before[i] for i in others
        )


class TestResidualPath:
    def test_rate_exceeding_heaviest_slot(self):
        """Strength-5 owners with fragmented slots exercise the residual
        loop: demand spills from the heaviest slot into the others."""
        engine = TickEngine(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=40,
                n_tasks=4000,
                heterogeneous=True,
                work_measurement="strength",
                max_sybils=5,
                seed=33,
            )
        )
        total_before = engine.state.total_remaining()
        consumed_total = 0
        while not engine.finished:
            consumed = engine.step()
            consumed_total += consumed
            # per-tick consumption never exceeds aggregate capacity
            assert consumed <= engine.owners.rate[
                engine.owners.in_network
            ].sum()
        assert consumed_total == total_before

    def test_fragmented_owner_consumes_full_rate(self):
        """Construct an owner whose heaviest slot alone cannot cover its
        rate and verify the spillover consumes from its other slots."""
        engine = TickEngine(
            SimulationConfig(
                strategy="none",
                n_nodes=20,
                n_tasks=2000,
                heterogeneous=True,
                work_measurement="strength",
                max_sybils=8,
                seed=7,
                decision_interval=1000000,  # no strategy interference
            )
        )
        state, owners = engine.state, engine.owners
        # pick the strongest owner and fragment its holdings with sybils
        owner = int(np.argmax(owners.strength[: 20]))
        rate = int(owners.rate[owner])
        if rate < 3:
            pytest.skip("seed produced no strong owner")
        view = engine.view
        view.begin_round()
        for _ in range(3):
            if view.can_add_sybil(owner):
                view.create_sybil_random(owner)
        loads = state.owner_loads(owners.n_total)
        want = min(rate, int(loads[owner]))
        before = int(loads[owner])
        engine._consume_tick()
        after = int(state.owner_loads(owners.n_total)[owner])
        assert before - after == want
