"""Tests of the Invitation strategy (§IV-D)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.invitation import Invitation
from repro.sim.engine import TickEngine, run_simulation


def make_engine(**overrides) -> TickEngine:
    overrides.setdefault("n_tasks", 10_000)
    config = SimulationConfig(
        strategy="invitation", n_nodes=100, seed=19,
        **overrides,
    )
    return TickEngine(config)


class TestOverburdenThreshold:
    def test_threshold_is_fair_share_times_factor(self):
        engine = make_engine(invite_factor=2.0)
        strategy = engine.strategy
        assert isinstance(strategy, Invitation)
        assert strategy._overburden_threshold == pytest.approx(
            2.0 * 10_000 / 100
        )

    def test_only_overloaded_nodes_invite(self):
        engine = make_engine()
        view = engine.view
        view.begin_round()
        loads = view.owner_loads()
        threshold = engine.strategy._overburden_threshold
        overloaded = view.network_owners()
        overloaded = overloaded[loads[overloaded] > threshold]
        assert overloaded.size > 0  # hashed assignment always has whales
        assert overloaded.size < view.network_owners().size


class TestHelperSelection:
    def test_helper_is_least_loaded_qualifying_predecessor(self):
        engine = make_engine()
        view = engine.view
        view.begin_round()
        strategy = engine.strategy
        loads = view.owner_loads()
        inviter = int(np.argmax(loads))
        target = view.heaviest_slot(inviter)
        preds = view.predecessor_slots(target, engine.config.num_successors)
        helper = strategy._pick_helper(
            view, inviter, preds, engine.config.sybil_threshold, set()
        )
        if helper is not None:
            assert view.live_owner_load(helper) <= engine.config.sybil_threshold
            assert view.can_add_sybil(helper)
            pred_owners = {view.slot_owner(int(s)) for s in preds.tolist()}
            assert helper in pred_owners

    def test_helper_skips_already_helped(self):
        engine = make_engine()
        view = engine.view
        view.begin_round()
        strategy = engine.strategy
        loads = view.owner_loads()
        inviter = int(np.argmax(loads))
        target = view.heaviest_slot(inviter)
        preds = view.predecessor_slots(target, engine.config.num_successors)
        first = strategy._pick_helper(view, inviter, preds, 0, set())
        if first is not None:
            second = strategy._pick_helper(
                view, inviter, preds, 0, {first}
            )
            assert second != first

    def test_refusal_when_no_predecessor_qualifies(self):
        """With an impossible helper threshold... nobody helps and the
        invitations are refused."""
        engine = make_engine(max_sybils=0)
        result = engine.run()
        assert result.counters["invitations_sent"] > 0
        assert (
            result.counters["invitations_refused"]
            == result.counters["invitations_sent"]
        )
        assert result.counters["sybils_created"] == 0


class TestEffectiveness:
    def test_beats_baseline(self):
        config = SimulationConfig(n_nodes=100, n_tasks=10_000, seed=19)
        baseline = run_simulation(config)
        invited = run_simulation(config.with_updates(strategy="invitation"))
        assert invited.runtime_factor < baseline.runtime_factor

    def test_smaller_network_balances_better(self):
        """The paper: invitation's factor is tied to network size — the
        100-node network does better than the 1000-node one."""
        small = np.mean([
            run_simulation(
                SimulationConfig(
                    strategy="invitation",
                    n_nodes=100,
                    n_tasks=50_000,
                    seed=seed,
                )
            ).runtime_factor
            for seed in range(3)
        ])
        big = np.mean([
            run_simulation(
                SimulationConfig(
                    strategy="invitation",
                    n_nodes=500,
                    n_tasks=50_000,
                    seed=seed,
                )
            ).runtime_factor
            for seed in range(3)
        ])
        assert small < big

    def test_reactive_message_economy(self):
        """Invitation only spends messages when overloaded nodes exist, so
        its message bill is far below smart neighbor's per-round probing."""
        config = SimulationConfig(n_nodes=200, n_tasks=20_000, seed=6)
        inv = run_simulation(config.with_updates(strategy="invitation"))
        smart = run_simulation(
            config.with_updates(strategy="smart_neighbor_injection")
        )
        msgs_per_tick_inv = inv.counters["messages"] / inv.runtime_ticks
        msgs_per_tick_smart = (
            smart.counters["messages"] / smart.runtime_ticks
        )
        assert msgs_per_tick_inv < msgs_per_tick_smart

    def test_conservation(self):
        result = run_simulation(
            SimulationConfig(
                strategy="invitation", n_nodes=100, n_tasks=5000, seed=2
            )
        )
        assert result.completed
        assert result.total_consumed == 5000


class TestInvariants:
    def test_state_valid_every_tick(self):
        engine = make_engine(n_tasks=3000)
        while not engine.finished:
            engine.step()
            engine.state.verify_invariants()
            engine.owners.validate()
