"""Tests for protocol ring statistics and the recursive lookup mode."""

import numpy as np
import pytest

from repro.chord.ring import ChordRing
from repro.chord.stats import collect_ring_stats, finger_accuracy
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(24)


@pytest.fixture(scope="module")
def loaded_ring():
    ring = ChordRing.create(40, space=SPACE, seed=3)
    rng = np.random.default_rng(3)
    for _ in range(200):
        ring.put(int(rng.integers(0, SPACE.size)), "v")
    for _ in range(2):
        ring.maintenance_round()
    return ring


class TestFingerAccuracy:
    def test_converged_ring_is_perfect(self, loaded_ring):
        fill, accuracy = finger_accuracy(loaded_ring)
        assert fill == 1.0
        assert accuracy == 1.0

    def test_failures_reduce_accuracy(self):
        ring = ChordRing.create(30, space=SPACE, seed=4)
        for victim in ring.network.alive_ids()[2:8]:
            ring.fail_node(victim)
        # before any repair, some fingers point at dead/now-wrong targets
        _, accuracy = finger_accuracy(ring)
        assert accuracy < 1.0


class TestRingStats:
    def test_snapshot_fields(self, loaded_ring):
        stats = collect_ring_stats(loaded_ring, n_lookups=50)
        assert stats.n_alive == 40
        assert stats.successor_list_fill == 1.0
        # r=5 backups per primary (pop-keeps-replica inflates slightly)
        assert 4.5 <= stats.replication_factor <= 6.5
        assert stats.load.total == 200
        assert stats.mean_lookup_hops < np.log2(40)
        assert stats.messages_total > 0
        assert "rpc_notify" in stats.messages_by_method

    def test_as_dict_flattens(self, loaded_ring):
        d = collect_ring_stats(loaded_ring, n_lookups=10).as_dict()
        assert "load_median" in d
        assert "finger_accuracy" in d


class TestRecursiveLookup:
    def test_agrees_with_iterative(self, loaded_ring):
        rng = np.random.default_rng(9)
        node = loaded_ring.network.node(loaded_ring.network.alive_ids()[0])
        for _ in range(50):
            key = int(rng.integers(0, SPACE.size))
            it_holder, _ = node.find_successor(key)
            rec_holder, _ = node.find_successor_recursive(key)
            assert it_holder == rec_holder

    def test_hops_logarithmic(self, loaded_ring):
        rng = np.random.default_rng(10)
        node = loaded_ring.network.node(loaded_ring.network.alive_ids()[0])
        hops = [
            node.find_successor_recursive(int(rng.integers(0, SPACE.size)))[1]
            for _ in range(100)
        ]
        assert float(np.mean(hops)) < np.log2(40)

    def test_survives_dead_finger(self):
        ring = ChordRing.create(25, space=SPACE, seed=5)
        node = ring.network.node(ring.network.alive_ids()[0])
        victim = next(iter(node.fingers.known_ids() - {node.id}))
        ring.fail_node(victim)
        rng = np.random.default_rng(11)
        for _ in range(20):
            key = int(rng.integers(0, SPACE.size))
            holder, _ = node.find_successor_recursive(key)
            assert ring.network.is_alive(holder)
