"""Tests of the stress generator: pure summary arithmetic + a live run.

``summarize`` is pure, so the schema, convergence detection, and error
accounting are pinned with hand-built outcomes.  One short end-to-end
run against in-process LiveNodes checks the full async path.
"""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.net.node import LiveNode, LiveNodeConfig
from repro.net.stress import (
    SUMMARY_SCHEMA,
    StressConfig,
    StressOutcome,
    run_stress,
    summarize,
)
from repro.net.transport import RetryPolicy
from repro.obs.metrics import MetricsRegistry

TARGET = ("127.0.0.1", 9999)


def _req(ok=True, kind=None, latency=0.01, op="get", hops=1):
    return {"op": op, "ok": ok, "kind": kind, "latency": latency, "hops": hops}


class TestStressConfigValidation:
    def test_needs_targets(self):
        with pytest.raises(ProtocolError):
            StressConfig(targets=())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0},
            {"concurrency": 0},
            {"get_fraction": 1.5},
            {"key_pool": 0},
            {"imbalance_threshold": 0.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ProtocolError):
            StressConfig(targets=(TARGET,), **kwargs)


class TestSummarize:
    def _config(self, **kwargs):
        return StressConfig(targets=(TARGET,), seed=7, **kwargs)

    def test_schema_and_counts(self):
        outcome = StressOutcome(
            requests=[
                _req(latency=0.010),
                _req(latency=0.020),
                _req(ok=False, kind="transient"),
                _req(ok=False, kind="app"),
            ],
            polls=[],
            elapsed=2.0,
        )
        summary = summarize(outcome, self._config())
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["seed"] == 7
        assert summary["requests"] == {
            "total": 4,
            "success": 2,
            "errors": {"app": 1, "transient": 1, "transport": 0},
            "error_rate": 0.5,
        }
        assert summary["throughput_rps"] == 1.0
        assert summary["latency_ms"]["p50"] == 15.0
        assert summary["latency_ms"]["max"] == 20.0

    def test_empty_run(self):
        summary = summarize(StressOutcome(), self._config(duration=3.0))
        assert summary["requests"]["total"] == 0
        assert summary["requests"]["error_rate"] is None
        assert summary["latency_ms"]["p50"] is None
        assert summary["duration_s"] == 3.0
        assert summary["rebalance"]["converged"] is False
        assert summary["rebalance"]["seconds"] is None

    def test_convergence_is_first_balanced_poll(self):
        outcome = StressOutcome(
            requests=[_req()],
            polls=[
                {"elapsed": 0.5, "loads": [], "unreachable": 0},
                {"elapsed": 1.0, "loads": [9, 1, 1, 1], "unreachable": 0},
                {"elapsed": 1.5, "loads": [4, 3, 3, 2], "unreachable": 0},
                {"elapsed": 2.0, "loads": [3, 3, 3, 3], "unreachable": 0},
            ],
            elapsed=2.5,
        )
        summary = summarize(
            outcome, self._config(imbalance_threshold=1.5)
        )
        rebalance = summary["rebalance"]
        assert rebalance["samples"] == 4
        assert rebalance["converged"] is True
        # imbalance at 1.5s is 4/3 <= 1.5; the 1.0s poll was 3.0
        assert rebalance["seconds"] == 1.5
        assert rebalance["final_imbalance"] == 1.0

    def test_zero_load_polls_never_converge(self):
        outcome = StressOutcome(
            requests=[_req()],
            polls=[{"elapsed": 1.0, "loads": [0, 0], "unreachable": 0}],
            elapsed=1.5,
        )
        rebalance = summarize(outcome, self._config())["rebalance"]
        assert rebalance["converged"] is False
        assert rebalance["final_imbalance"] is None

    def test_summary_is_deterministic(self):
        outcome = StressOutcome(
            requests=[_req(), _req(ok=False, kind="transport")],
            polls=[{"elapsed": 1.0, "loads": [2, 2], "unreachable": 1}],
            elapsed=2.0,
        )
        config = self._config()
        assert summarize(outcome, config) == summarize(outcome, config)


class _ListTrace:
    def __init__(self):
        self.records = []

    def record(self, tick, kind, **fields):
        self.records.append((tick, kind, fields))


class TestLiveStress:
    def test_short_run_against_live_ring(self):
        async def main():
            first = LiveNode(
                "127.0.0.1",
                0,
                LiveNodeConfig(seed=50, maintenance_interval=0.03),
            )
            await first.start()
            second = LiveNode(
                "127.0.0.1",
                0,
                LiveNodeConfig(seed=51, maintenance_interval=0.03),
            )
            await second.start(bootstrap=first.addr)
            try:
                # let the pair stabilize before offering load
                for _ in range(200):
                    if second.main.successor_list[0] == first.main.id:
                        break
                    await asyncio.sleep(0.05)
                config = StressConfig(
                    targets=(first.addr, second.addr),
                    duration=1.0,
                    concurrency=4,
                    seed=9,
                    prefill=2,
                    key_pool=32,
                    poll_interval=0.2,
                    policy=RetryPolicy(timeout=2.0, retries=1),
                )
                metrics = MetricsRegistry()
                trace = _ListTrace()
                summary = await run_stress(
                    config, metrics=metrics, trace=trace
                )
            finally:
                await second.stop()
                await first.stop()

            assert summary["schema"] == SUMMARY_SCHEMA
            assert summary["requests"]["success"] > 0
            assert summary["requests"]["error_rate"] is not None
            assert summary["latency_ms"]["p50"] is not None
            assert summary["rebalance"]["samples"] >= 1
            assert metrics.as_dict()["counters"].get("stress.success", 0) > 0
            kinds = {kind for _tick, kind, _f in trace.records}
            assert "request" in kinds and "summary" in kinds
            return summary

        asyncio.run(main())
