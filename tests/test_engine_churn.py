"""Tests of the engine's churn phase (induced churn strategy, §IV-A)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine, run_simulation


@pytest.fixture
def churn_config():
    return SimulationConfig(
        strategy="churn",
        n_nodes=100,
        n_tasks=10_000,
        churn_rate=0.02,
        seed=9,
    )


class TestChurnMechanics:
    def test_joins_and_leaves_happen(self, churn_config):
        result = run_simulation(churn_config)
        assert result.counters["churn_leaves"] > 0
        assert result.counters["churn_joins"] > 0

    def test_conservation_under_churn(self, churn_config):
        result = run_simulation(churn_config)
        assert result.completed
        assert result.total_consumed == churn_config.n_tasks

    def test_network_size_stays_bounded(self, churn_config):
        """Equal join/leave rates on equal pools keep the size stable."""
        engine = TickEngine(churn_config)
        sizes = []
        while not engine.finished and engine.tick < 300:
            engine.step()
            sizes.append(engine.owners.n_in_network)
        sizes = np.asarray(sizes)
        assert sizes.min() > 50
        assert sizes.max() < 150

    def test_pool_plus_network_constant(self, churn_config):
        engine = TickEngine(churn_config)
        total = engine.owners.n_total
        for _ in range(100):
            if engine.finished:
                break
            engine.step()
            assert (
                engine.owners.n_in_network
                + engine.owners.waiting_indices.size
                == total
            )

    def test_ring_invariants_hold_during_churn(self, churn_config):
        engine = TickEngine(churn_config)
        for _ in range(60):
            if engine.finished:
                break
            engine.step()
            engine.state.verify_invariants()
            engine.owners.validate()

    def test_invariants_every_tick_under_churn_storm(self):
        """Aggressive churn exercises the batched leave/join pass hard:
        every tick many owners depart and many join at once, and the
        full structural invariant set (including the owner index and
        loads cache) must hold after each batch commit."""
        config = SimulationConfig(
            strategy="churn",
            n_nodes=80,
            n_tasks=8_000,
            churn_rate=0.15,
            seed=17,
        )
        engine = TickEngine(config)
        for _ in range(120):
            if engine.finished:
                break
            engine.step()
            engine.state.verify_invariants()
            engine.owners.validate()
        assert engine.counters["churn_leaves"] > 50
        assert engine.counters["churn_joins"] > 50

    def test_invariants_every_tick_with_sybils_and_churn(self):
        """Sybil creation/retirement interleaved with batched churn keeps
        the slab, owner index, and key accounting consistent."""
        config = SimulationConfig(
            strategy="random_injection",
            n_nodes=60,
            n_tasks=6_000,
            churn_rate=0.05,
            seed=11,
        )
        engine = TickEngine(config)
        consumed = 0
        for _ in range(120):
            if engine.finished:
                break
            consumed += engine.step()
            engine.state.verify_invariants()
            engine.owners.validate()
            assert consumed + engine.remaining == config.n_tasks
        assert engine.state.n_sybil_slots >= 0
        assert engine.counters["sybils_created"] > 0


class TestChurnSpeedup:
    """The paper's core §VI-A result at test scale."""

    def test_churn_beats_baseline(self):
        base = SimulationConfig(n_nodes=200, n_tasks=40_000, seed=21)
        churned = base.with_updates(strategy="churn", churn_rate=0.01)
        factor_base = run_simulation(base).runtime_factor
        factor_churn = run_simulation(churned).runtime_factor
        assert factor_churn < factor_base

    def test_more_churn_helps_more(self):
        base = SimulationConfig(
            strategy="churn", n_nodes=150, n_tasks=30_000, seed=2
        )
        low = run_simulation(base.with_updates(churn_rate=0.001))
        high = run_simulation(base.with_updates(churn_rate=0.01))
        assert high.runtime_factor < low.runtime_factor

    def test_zero_churn_rate_warns_for_churn_strategy(self):
        config = SimulationConfig(strategy="churn", n_nodes=30, n_tasks=300)
        with pytest.warns(UserWarning):
            TickEngine(config)
