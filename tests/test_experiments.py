"""Tests of the experiment harness: each table/figure reproduces its shape.

These run at ``quick`` scale with small trial counts; the assertions
check the *qualitative* results the paper reports (orderings, directions,
monotonicity), which are stable at this scale.
"""

import math

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS, experiment_ids
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.errors import ExperimentError


class TestRegistry:
    def test_ids_stable(self):
        assert set(experiment_ids()) == {
            "table1",
            "table2",
            "fig01",
            "fig02_03",
            "fig04_06",
            "fig07_09",
            "fig10",
            "fig11_12",
            "fig13_14",
            "text_claims",
            "ablations",
            "ext_skew",
            "ext_future_work",
            "ext_maintenance",
            "ext_arrivals",
            "ext_failures",
            "ext_adversarial",
        }

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            run_experiment("table9")

    def test_scale_resolution(self, monkeypatch):
        assert resolve_scale(None) == "quick"
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert resolve_scale(None) == "full"
        assert resolve_scale("quick") == "quick"
        with pytest.raises(ExperimentError):
            resolve_scale("huge")

    def test_trials_for(self):
        assert trials_for("quick", quick=5, full=100) == 5
        assert trials_for("full", quick=5, full=100) == 100


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        # restrict to the 3 smallest grid rows via direct measurement
        from repro.experiments.table1 import measure_initial_distribution

        rows = {}
        for n_nodes, n_tasks in [(1000, 100_000), (1000, 500_000)]:
            rows[(n_nodes, n_tasks)] = measure_initial_distribution(
                n_nodes, n_tasks, n_trials=5, seed=0
            )
        return rows

    def test_median_is_ln2_of_mean(self, result):
        for (n_nodes, n_tasks), (median, _sigma) in result.items():
            mean = n_tasks / n_nodes
            assert median == pytest.approx(mean * math.log(2), rel=0.06)

    def test_sigma_close_to_mean(self, result):
        """Table I's observation: σ ≈ mean workload (exponential arcs)."""
        for (n_nodes, n_tasks), (_median, sigma) in result.items():
            mean = n_tasks / n_nodes
            assert sigma == pytest.approx(mean, rel=0.15)

    def test_matches_paper_values(self, result):
        from repro.experiments.table1 import PAPER_TABLE1

        for key, (median, sigma) in result.items():
            paper_median, paper_sigma = PAPER_TABLE1[key]
            assert median == pytest.approx(paper_median, rel=0.08)
            if key == (1000, 100_000):
                # The paper reports sigma=137.27 here, inconsistent with
                # its own exponential signature (sigma≈mean=100) that every
                # other Table I row follows; we match the theory (≈100.5)
                # and flag the paper cell as an outlier in EXPERIMENTS.md.
                assert sigma == pytest.approx(100.5, rel=0.15)
            else:
                assert sigma == pytest.approx(paper_sigma, rel=0.20)


class TestTable2:
    def test_churn_monotonically_helps(self):
        from repro.experiments.table2 import cell

        factors = [
            cell(200, 20_000, churn, n_trials=3, seed=0)
            for churn in (0.0, 0.001, 0.01)
        ]
        assert factors[0] > factors[1] > factors[2]

    def test_more_tasks_amplify_churn_gains(self):
        from repro.experiments.table2 import cell

        few = cell(100, 10_000, 0.01, n_trials=3, seed=0)
        many = cell(100, 100_000, 0.01, n_trials=3, seed=0)
        assert many < few


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig01", seed=0)

    def test_caption_claims(self, result):
        rows = {r[0]: r[1] for r in result.rows}
        assert rows["median workload"] == pytest.approx(692, rel=0.05)
        assert rows["fraction below 1000 tasks"] > 0.6
        assert rows["fraction above 10000 tasks"] > 0
        assert rows["max workload"] > 5000
        assert rows["zipf tail exponent"] < 0

    def test_density_valid(self, result):
        assert result.data["density"].sum() == pytest.approx(1.0)


class TestFig0203:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig02_03", seed=0)

    def test_layout_sizes(self, result):
        hashed = result.data["hashed"]
        assert len(hashed.node_ids) == 10
        assert len(hashed.task_ids) == 100
        assert int(hashed.task_counts.sum()) == 100

    def test_even_spacing_reduces_spread(self, result):
        hashed = result.data["hashed"]
        even = result.data["even"]
        assert even.task_counts.std() <= hashed.task_counts.std()

    def test_tasks_still_cluster_with_even_nodes(self, result):
        even = result.data["even"]
        assert int(even.task_counts.max()) > 10  # paper's Figure 3 point

    def test_projection_on_unit_circle(self, result):
        xy = result.data["hashed"].node_xy
        assert np.allclose(np.hypot(xy[:, 0], xy[:, 1]), 1.0)


class TestComparisonFigures:
    @pytest.fixture(scope="class")
    def fig04_06(self):
        return run_experiment("fig04_06", seed=1)

    def test_identical_start(self, fig04_06):
        left, right = fig04_06.data["histograms"][0]
        assert np.array_equal(left.counts, right.counts)

    def test_churn_reduces_idle_by_tick_35(self, fig04_06):
        left, right = fig04_06.data["histograms"][35]  # churn, none
        assert left.stats.idle_fraction < right.stats.idle_fraction
        assert left.stats.gini < right.stats.gini

    def test_random_injection_beats_both(self):
        result = run_experiment("fig07_09", seed=1)
        inj, none = result.data["fig07_08"].data["histograms"][35]
        assert inj.stats.idle_fraction < none.stats.idle_fraction
        inj9, churn9 = result.data["fig09"].data["histograms"][35]
        assert inj9.stats.idle_fraction < churn9.stats.idle_fraction

    def test_neighbor_cuts_max_load(self):
        result = run_experiment("fig11_12", seed=1)
        neighbor, none = result.data["fig11"].data["histograms"][35]
        assert neighbor.stats.max < none.stats.max  # paper: ~450 vs ~650

    def test_invitation_cuts_max_load(self):
        result = run_experiment("fig13_14", seed=1)
        inv, none = result.data["fig13"].data["histograms"][35]
        assert inv.stats.max < none.stats.max  # paper: ~500 vs ~650

    def test_hetero_balancing_still_helps(self):
        result = run_experiment("fig10", seed=1)
        inj, none = result.data["histograms"][35]
        assert inj.stats.idle_fraction < none.stats.idle_fraction
