"""Tests of the ChordReduce MapReduce layer."""

import pytest

from repro.apps.chordreduce import ChordReduce
from repro.apps.wordcount import tokenize, word_count
from repro.errors import SimulationError


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World! it's 42") == [
            "hello",
            "world",
            "it's",
            "42",
        ]

    def test_empty(self):
        assert tokenize("...") == []


class TestWordCount:
    DOCS = [
        "chord chord sybil",
        "sybil balance",
        "balance balance chord",
    ]

    def test_counts_correct(self):
        counts, report = word_count(self.DOCS, n_nodes=10, seed=0)
        assert counts == {"chord": 3, "sybil": 2, "balance": 3}
        assert report.n_map_tasks == 3
        assert report.n_reduce_tasks == 3
        assert report.map_ticks >= 1

    def test_results_invariant_across_strategies(self):
        reference, _ = word_count(self.DOCS, n_nodes=10, seed=0)
        for strategy in ("random_injection", "invitation"):
            counts, _ = word_count(
                self.DOCS, n_nodes=10, strategy=strategy, seed=0
            )
            assert counts == reference

    def test_balancing_speeds_up_map_phase(self):
        docs = [f"word{i % 7} filler text here" for i in range(200)]
        _, plain = word_count(docs, n_nodes=25, strategy="none", seed=2)
        _, balanced = word_count(
            docs, n_nodes=25, strategy="random_injection", seed=2
        )
        assert balanced.map_ticks < plain.map_ticks


class TestChordReduceGeneric:
    def test_custom_job(self):
        """Sum of squares grouped by parity."""
        job = ChordReduce(
            map_fn=lambda n: [(n % 2, n * n)],
            reduce_fn=lambda _k, values: sum(values),
            n_nodes=8,
            seed=1,
        )
        results, report = job.run(range(10))
        assert results == {
            0: sum(n * n for n in range(0, 10, 2)),
            1: sum(n * n for n in range(1, 10, 2)),
        }
        assert report.n_reduce_tasks == 2
        assert report.total_ticks == report.map_ticks + report.reduce_ticks

    def test_empty_input_rejected(self):
        job = ChordReduce(
            map_fn=lambda x: [], reduce_fn=lambda k, v: v, n_nodes=5
        )
        with pytest.raises(SimulationError):
            job.run([])

    def test_map_only_job(self):
        """A map that emits nothing produces no reduce phase."""
        job = ChordReduce(
            map_fn=lambda x: [],
            reduce_fn=lambda k, v: v,
            n_nodes=5,
            seed=1,
        )
        results, report = job.run([1, 2, 3])
        assert results == {}
        assert report.reduce_ticks == 0
