"""Observer-overhead guard: the no-observer tick path is bookkeeping-free.

PR 6's hot-path contract: when no trace sink is attached and the
profiler is ``NULL_PROFILER``, ``step()`` must not touch observability
machinery at all — no ``_emit`` calls (each builds a kwargs dict), no
null-profiler context entries, and zero allocations attributable to the
``repro/obs`` layer.  The tracemalloc check is the micro-benchmark
form of the assertion: it counts observability allocations per tick and
demands exactly none.
"""

import tracemalloc

import pytest

from repro.config import SimulationConfig
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.trace import TraceRecorder
from repro.sim.engine import TickEngine

CHURNY = SimulationConfig(
    strategy="random_injection",
    n_nodes=50,
    n_tasks=4000,
    churn_rate=0.05,
    max_sybils=4,
    seed=31,
)


def test_no_observer_path_never_calls_emit():
    engine = TickEngine(CHURNY)

    def tripwire(kind, **fields):  # pragma: no cover - must not run
        raise AssertionError(f"_emit({kind!r}) called without a trace sink")

    engine._emit = tripwire
    for _ in range(25):
        engine.step()
    assert engine.tick == 25


def test_no_observer_path_never_enters_profiler_contexts(monkeypatch):
    engine = TickEngine(CHURNY)
    null_ctx_cls = type(NULL_PROFILER.phase("x"))

    def tripwire(self):  # pragma: no cover - must not run
        raise AssertionError("null profiler context entered on fast path")

    monkeypatch.setattr(null_ctx_cls, "__enter__", tripwire)
    for _ in range(10):
        engine.step()
    assert engine.tick == 10


def test_observed_path_still_profiles_and_traces():
    """The guard must not silently disable real observers."""
    trace = TraceRecorder()
    profiler = PhaseProfiler()
    engine = TickEngine(CHURNY, trace=trace, profiler=profiler)
    for _ in range(25):
        engine.step()
    breakdown = profiler.as_dict()["phases"]
    assert breakdown["consumption"]["calls"] == 25
    assert len(trace) > 0  # churn at 5%/tick emits within 25 ticks


def test_no_observer_tick_allocates_nothing_for_observability():
    """Micro-benchmark assertion: zero per-tick obs-layer allocations.

    Snapshot-diffs tracemalloc over 20 unobserved ticks and demands no
    allocation whose stack lands in ``repro/obs`` — dict/list churn for
    events, phase contexts, or profiler rows would show up there.
    """
    engine = TickEngine(CHURNY)
    for _ in range(5):  # warm caches (owner index, loads, groups)
        engine.step()

    tracemalloc.start(10)
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(20):
            engine.step()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    obs_filter = tracemalloc.Filter(True, "*repro/obs/*")
    obs_allocs = [
        stat
        for stat in after.filter_traces([obs_filter]).compare_to(
            before.filter_traces([obs_filter]), "lineno"
        )
        if stat.size_diff > 0
    ]
    assert obs_allocs == [], (
        "observability allocations on the no-observer path: "
        + "; ".join(str(s) for s in obs_allocs)
    )


def test_disabled_adversary_allocates_nothing():
    """Same micro-benchmark contract for the adversary plane: with the
    default (disabled) ``AdversaryModel`` no plane is constructed, so
    ticking must produce zero allocations attributable to
    ``repro/sim/adversary``."""
    engine = TickEngine(CHURNY)
    assert engine._adversary is None
    for _ in range(5):  # warm caches (owner index, loads, groups)
        engine.step()

    tracemalloc.start(10)
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(20):
            engine.step()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    adv_filter = tracemalloc.Filter(True, "*repro/sim/adversary*")
    adv_allocs = [
        stat
        for stat in after.filter_traces([adv_filter]).compare_to(
            before.filter_traces([adv_filter]), "lineno"
        )
        if stat.size_diff > 0
    ]
    assert adv_allocs == [], (
        "adversary-plane allocations on a disabled-adversary run: "
        + "; ".join(str(s) for s in adv_allocs)
    )


def test_observer_flags_capture_construction_state():
    unobserved = TickEngine(CHURNY)
    assert unobserved._observed is False
    assert unobserved._tracing is False
    assert unobserved.profiler is NULL_PROFILER

    profiled = TickEngine(CHURNY, profiler=PhaseProfiler())
    assert profiled._observed is True
    assert profiled._tracing is False

    traced = TickEngine(CHURNY, trace=TraceRecorder())
    assert traced._observed is True
    assert traced._tracing is True


@pytest.mark.parametrize("attach", ["none", "trace", "profiler", "both"])
def test_observed_and_fast_paths_are_bit_identical(attach):
    """Dual step drivers must produce identical seeded trajectories."""
    kwargs = {}
    if attach in ("trace", "both"):
        kwargs["trace"] = TraceRecorder()
    if attach in ("profiler", "both"):
        kwargs["profiler"] = PhaseProfiler()
    result = TickEngine(CHURNY, **kwargs).run()
    baseline = TickEngine(CHURNY).run()
    assert result.runtime_ticks == baseline.runtime_ticks
    assert result.counters == baseline.counters
