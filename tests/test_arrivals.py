"""Tests for the streaming task-arrival extension."""

import pytest

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine, run_simulation


def arrival_config(**overrides) -> SimulationConfig:
    overrides.setdefault("n_nodes", 100)
    overrides.setdefault("n_tasks", 2000)
    overrides.setdefault("arrival_rate", 50.0)
    overrides.setdefault("arrival_until", 40)
    overrides.setdefault("seed", 11)
    return SimulationConfig(**overrides)


class TestArrivalMechanics:
    def test_tasks_arrive_and_are_consumed(self):
        result = run_simulation(arrival_config())
        arrived = result.counters["tasks_arrived"]
        assert arrived > 0
        assert result.completed
        assert result.total_consumed == 2000 + arrived

    def test_engine_not_finished_while_arrivals_pending(self):
        engine = TickEngine(arrival_config(n_tasks=0))
        # initial workload empty, but arrivals are still due
        assert not engine.finished
        while not engine.finished:
            engine.step()
        assert engine.tick >= 40
        assert engine.total_consumed == engine.total_injected - engine.remaining

    def test_ideal_uses_total_injected(self):
        result = run_simulation(arrival_config())
        total = 2000 + result.counters["tasks_arrived"]
        assert result.ideal_ticks == pytest.approx(total / 100)

    def test_no_arrivals_after_window(self):
        engine = TickEngine(arrival_config(arrival_until=10))
        for _ in range(25):
            if engine.finished:
                break
            engine.step()
        arrived_at_10 = engine.counters["tasks_arrived"]
        while not engine.finished:
            engine.step()
        assert engine.counters["tasks_arrived"] == arrived_at_10

    def test_determinism_with_arrivals(self):
        a = run_simulation(arrival_config())
        b = run_simulation(arrival_config())
        assert a.runtime_ticks == b.runtime_ticks
        assert a.counters == b.counters

    def test_invariants_during_arrivals(self):
        engine = TickEngine(arrival_config())
        for _ in range(50):
            if engine.finished:
                break
            engine.step()
            engine.state.verify_invariants()


class TestArrivalsWithStrategies:
    @pytest.mark.parametrize(
        "strategy", ["random_injection", "invitation"]
    )
    def test_strategies_complete_under_arrivals(self, strategy):
        result = run_simulation(arrival_config(strategy=strategy))
        assert result.completed
        arrived = result.counters["tasks_arrived"]
        assert result.total_consumed == 2000 + arrived

    def test_balancing_beats_baseline_under_arrivals(self):
        base = run_simulation(arrival_config())
        balanced = run_simulation(
            arrival_config(strategy="random_injection")
        )
        assert balanced.runtime_factor < base.runtime_factor


class TestAddTasks:
    def test_add_tasks_lands_in_responsible_slots(self, rng):
        import numpy as np

        engine = TickEngine(
            SimulationConfig(n_nodes=20, n_tasks=0, seed=1)
        )
        keys = rng.integers(0, 2**64, size=200, dtype=np.uint64)
        engine.state.add_tasks(keys)
        assert engine.state.total_remaining() == 200
        engine.state.verify_invariants()

    def test_add_empty_is_noop(self):
        import numpy as np

        engine = TickEngine(SimulationConfig(n_nodes=20, n_tasks=50, seed=1))
        engine.state.add_tasks(np.array([], dtype=np.uint64))
        assert engine.state.total_remaining() == 50
