"""Tests for the vectorized uint64 arc primitives."""

import numpy as np
import pytest

from repro.errors import IdSpaceError
from repro.sim.arcops import (
    arc_length,
    arc_lengths,
    in_arc_mask,
    responsible_slots,
    slot_arc_starts,
)


class TestInArcMask:
    def test_plain(self):
        keys = np.array([5, 10, 15, 20, 25], dtype=np.uint64)
        mask = in_arc_mask(keys, 10, 20)
        assert mask.tolist() == [False, False, True, True, False]

    def test_wrapping(self):
        keys = np.array([0, 3, 100, 250, 255], dtype=np.uint64)
        mask = in_arc_mask(keys, 250, 5)
        assert mask.tolist() == [True, True, False, False, True]

    def test_full_circle(self):
        keys = np.array([1, 2, 3], dtype=np.uint64)
        assert in_arc_mask(keys, 7, 7).all()

    def test_empty_input(self):
        assert in_arc_mask(np.array([], dtype=np.uint64), 1, 2).shape == (0,)

    def test_max_uint64_boundary(self):
        hi = 2**64 - 1
        keys = np.array([0, hi, hi - 1], dtype=np.uint64)
        mask = in_arc_mask(keys, hi - 1, 0)
        assert mask.tolist() == [True, True, False]


class TestArcLength:
    def test_simple(self):
        assert arc_length(10, 20, 256) == 10

    def test_wrap(self):
        assert arc_length(250, 5, 256) == 11

    def test_full(self):
        assert arc_length(9, 9, 256) == 256


class TestArcLengths:
    def test_partition_sums_to_space(self):
        ids = np.array([10, 100, 200], dtype=np.uint64)
        gaps = arc_lengths(ids, 256)
        assert int(gaps.sum()) == 256

    def test_values(self):
        ids = np.array([10, 100, 200], dtype=np.uint64)
        gaps = arc_lengths(ids, 256)
        # slot 0 covers (200, 10]: 66 ids
        assert gaps.tolist() == [66, 90, 100]

    def test_single_slot_saturates(self):
        gaps = arc_lengths(np.array([7], dtype=np.uint64), 2**64)
        assert int(gaps[0]) == 2**64 - 1

    def test_empty(self):
        assert arc_lengths(np.array([], dtype=np.uint64), 256).size == 0


class TestResponsibleSlots:
    def test_matches_bruteforce(self, rng):
        ids = np.sort(
            rng.choice(2**16, size=20, replace=False).astype(np.uint64)
        )
        keys = rng.integers(0, 2**16, size=500, dtype=np.uint64)
        got = responsible_slots(ids, keys)
        for key, slot in zip(keys.tolist(), got.tolist()):
            # brute force: first id >= key, else wrap to slot 0
            expect = next(
                (i for i, nid in enumerate(ids.tolist()) if nid >= key), 0
            )
            assert slot == expect

    def test_key_equal_to_id(self):
        ids = np.array([10, 20, 30], dtype=np.uint64)
        keys = np.array([10, 20, 30], dtype=np.uint64)
        assert responsible_slots(ids, keys).tolist() == [0, 1, 2]

    def test_wrap_to_first(self):
        ids = np.array([10, 20], dtype=np.uint64)
        keys = np.array([25, 5], dtype=np.uint64)
        assert responsible_slots(ids, keys).tolist() == [0, 0]

    def test_empty_ring_raises(self):
        with pytest.raises(IdSpaceError):
            responsible_slots(
                np.array([], dtype=np.uint64), np.array([1], dtype=np.uint64)
            )


class TestSlotArcStarts:
    def test_roll(self):
        ids = np.array([10, 20, 30], dtype=np.uint64)
        assert slot_arc_starts(ids).tolist() == [30, 10, 20]
