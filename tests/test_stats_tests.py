"""Tests for confidence intervals and Welch comparisons."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.metrics.stats_tests import compare_factors, mean_ci, welch_t
from repro.sim.trials import run_trials


class TestMeanCi:
    def test_interval_contains_mean(self, rng):
        x = rng.normal(10, 2, size=50)
        mean, lo, hi = mean_ci(x)
        assert lo < mean < hi
        assert mean == pytest.approx(float(x.mean()))

    def test_coverage_roughly_95(self):
        """~95% of CIs over repeated draws cover the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(400):
            x = rng.normal(5.0, 1.0, size=30)
            _, lo, hi = mean_ci(x)
            hits += lo <= 5.0 <= hi
        assert 0.90 <= hits / 400 <= 0.99

    def test_single_sample(self):
        assert mean_ci(np.array([3.0])) == (3.0, 3.0, 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci(np.array([]))

    def test_narrower_with_more_samples(self, rng):
        x = rng.normal(0, 1, size=1000)
        _, lo_small, hi_small = mean_ci(x[:10])
        _, lo_big, hi_big = mean_ci(x)
        assert (hi_big - lo_big) < (hi_small - lo_small)


class TestWelch:
    def test_detects_separated_means(self, rng):
        a = rng.normal(5.0, 0.5, size=40)
        b = rng.normal(7.0, 0.5, size=40)
        result = welch_t(a, b)
        assert result.significant
        assert result.mean_difference < 0
        if result.p_value is not None:
            assert result.p_value < 1e-6

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(42)
        a = rng.normal(5.0, 1.0, size=60)
        b = rng.normal(5.0, 1.0, size=60)
        result = welch_t(a, b)
        assert not result.significant

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            welch_t(np.array([1.0]), np.array([1.0, 2.0]))

    def test_identical_samples(self):
        a = np.array([2.0, 2.0, 2.0])
        result = welch_t(a, a)
        assert result.t_statistic == 0.0
        assert not result.significant


class TestTrialSetComparison:
    def test_strategies_differ_significantly(self):
        base = SimulationConfig(n_nodes=100, n_tasks=10_000, seed=0)
        plain = run_trials(base, 6)
        balanced = run_trials(
            base.with_updates(strategy="random_injection"), 6
        )
        report = balanced.compare_with(plain)
        assert report["significant"]
        assert report["difference"] < 0  # balanced factor is lower

    def test_factor_ci(self):
        trials = run_trials(
            SimulationConfig(n_nodes=60, n_tasks=1200, seed=1), 5
        )
        mean, lo, hi = trials.factor_ci()
        assert lo <= mean <= hi

    def test_compare_report_keys(self):
        a = run_trials(SimulationConfig(n_nodes=40, n_tasks=800, seed=2), 4)
        b = run_trials(SimulationConfig(n_nodes=40, n_tasks=800, seed=3), 4)
        report = compare_factors(a.factors, b.factors)
        assert set(report) >= {
            "mean_a",
            "mean_b",
            "difference",
            "t",
            "significant",
        }
