"""Tests for wrapping Arc intervals."""

import pytest

from repro.errors import IdSpaceError
from repro.hashspace.intervals import Arc


class TestArcBasics:
    def test_length_simple(self, space8):
        assert Arc(space8, 10, 20).length == 10

    def test_length_wrapping(self, space8):
        assert Arc(space8, 250, 5).length == 11

    def test_full_circle(self, space8):
        arc = Arc(space8, 42, 42)
        assert arc.is_full_circle
        assert arc.length == 256
        assert arc.fraction() == 1.0

    def test_fraction(self, space8):
        assert Arc(space8, 0, 128).fraction() == 0.5

    def test_contains_respects_half_open(self, space8):
        arc = Arc(space8, 10, 20)
        assert not arc.contains(10)
        assert arc.contains(20)
        assert arc.contains(15)
        assert not arc.contains(25)

    def test_validates_endpoints(self, space8):
        with pytest.raises(IdSpaceError):
            Arc(space8, 0, 300)


class TestSplit:
    def test_split_simple(self, space8):
        first, second = Arc(space8, 10, 20).split_at(15)
        assert (first.start, first.end) == (10, 15)
        assert (second.start, second.end) == (15, 20)
        assert first.length + second.length == 10

    def test_split_wrapping(self, space8):
        first, second = Arc(space8, 250, 5).split_at(2)
        assert first.contains(255)
        assert second.contains(4)

    def test_split_at_boundary_raises(self, space8):
        arc = Arc(space8, 10, 20)
        with pytest.raises(IdSpaceError):
            arc.split_at(10)
        with pytest.raises(IdSpaceError):
            arc.split_at(20)

    def test_split_outside_raises(self, space8):
        with pytest.raises(IdSpaceError):
            Arc(space8, 10, 20).split_at(30)

    def test_split_full_circle(self, space8):
        first, second = Arc(space8, 42, 42).split_at(100)
        assert first.length + second.length == 256

    def test_split_full_circle_at_anchor_raises(self, space8):
        with pytest.raises(IdSpaceError):
            Arc(space8, 42, 42).split_at(42)


class TestSampleAndMidpoint:
    def test_sample_strictly_inside(self, space8, rng):
        arc = Arc(space8, 100, 140)
        for _ in range(100):
            v = arc.sample(rng)
            assert 100 < v < 140

    def test_sample_too_small(self, space8, rng):
        with pytest.raises(IdSpaceError):
            Arc(space8, 10, 11).sample(rng)

    def test_midpoint(self, space8):
        assert Arc(space8, 10, 20).midpoint() == 15
        # (250, 4] spans 10 ids; halfway is 250 + 5 = 255
        assert Arc(space8, 250, 4).midpoint() == 255
