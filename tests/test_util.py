"""Tests for the util package (tables, rng) and the errors hierarchy."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    ExperimentError,
    IdSpaceError,
    ProtocolError,
    ReproError,
    RingError,
    SimulationError,
    StrategyError,
)
from repro.util.rng import make_rng, spawn_rngs, spawn_seeds
from repro.util.tables import format_float, format_kv, format_table


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            IdSpaceError,
            RingError,
            ProtocolError,
            SimulationError,
            StrategyError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_value_error_compatibility(self):
        """Config/IdSpace errors are also ValueErrors for ergonomics."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(IdSpaceError, ValueError)


class TestRng:
    def test_make_rng_from_int(self):
        a = make_rng(7)
        b = make_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_make_rng_from_seedsequence(self):
        seq = np.random.SeedSequence(5)
        a = make_rng(seq)
        b = make_rng(np.random.SeedSequence(5))
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(0, 5)
        assert len(seeds) == 5
        draws = [make_rng(s).integers(0, 10**9) for s in seeds]
        assert len(set(draws)) == 5

    def test_spawn_rngs(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        again = spawn_rngs(0, 3)
        for a, b in zip(rngs, again):
            assert a.integers(0, 10**9) == b.integers(0, 10**9)


class TestTables:
    def test_format_float(self):
        assert format_float(1.23456) == "1.235"
        assert format_float(1.23456, digits=1) == "1.2"
        assert format_float("text") == "text"
        assert format_float(7) == "7"
        assert format_float(True) == "True"

    def test_format_table_alignment(self):
        out = format_table(
            ["name", "v"], [["a", 1.5], ["long", 22.25]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "v" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # columns aligned: all rows same width
        assert len(lines[3]) == len(lines[4])

    def test_format_table_extra_cells(self):
        out = format_table(["a"], [["x", "extra"]])
        assert "extra" in out

    def test_format_kv(self):
        out = format_kv({"alpha": 1.5, "b": "two"})
        lines = out.splitlines()
        assert lines[0].startswith("alpha")
        assert ": 1.500" in lines[0]
        assert format_kv({}) == ""
