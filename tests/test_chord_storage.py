"""Tests of primary/replica storage and the active-backup semantics."""

import pytest

from repro.chord.storage import NodeStore
from repro.errors import IdSpaceError
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(8)


@pytest.fixture
def store():
    return NodeStore(SPACE)


class TestPrimary:
    def test_put_get(self, store):
        store.put_primary(10, "x")
        assert store.get(10) == "x"
        assert store.has(10)
        assert store.primary_count == 1

    def test_put_validates_key(self, store):
        with pytest.raises(IdSpaceError):
            store.put_primary(300, "x")

    def test_remove_primary(self, store):
        store.put_primary(10, "x")
        assert store.remove_primary(10) == "x"
        assert not store.has(10)

    def test_pop_primary_range_keeps_replicas(self, store):
        for key in (10, 20, 30):
            store.put_primary(key, f"v{key}")
        moved = store.pop_primary_range(5, 20)  # (5, 20] -> keys 10, 20
        assert set(moved) == {10, 20}
        assert store.primary_keys == {30}
        # handed-off items stay as replicas (we are their first backup)
        assert store.get(10) == "v10"
        assert store.replica_count == 2

    def test_pop_wrapping_range(self, store):
        for key in (250, 3, 100):
            store.put_primary(key, key)
        moved = store.pop_primary_range(200, 5)
        assert set(moved) == {250, 3}


class TestReplicas:
    def test_accept_does_not_override_primary(self, store):
        store.put_primary(10, "primary")
        store.accept_replicas({10: "stale", 20: "r"})
        assert store.get(10) == "primary"
        assert store.get(20) == "r"
        assert store.replica_count == 1

    def test_promote_range(self, store):
        store.accept_replicas({10: "a", 20: "b", 200: "c"})
        promoted = store.promote_range(5, 25)
        assert promoted == 2
        assert store.primary_keys == {10, 20}
        assert store.replica_count == 1

    def test_promote_nothing(self, store):
        assert store.promote_range(0, 100) == 0

    def test_primary_wins_on_put(self, store):
        store.accept_replicas({10: "old"})
        store.put_primary(10, "new")
        assert store.get(10) == "new"
        assert store.replica_count == 0


class TestSyncTombstones:
    def test_sync_removes_completed_items(self, store):
        store.accept_replicas({10: "a", 20: "b"})
        # origin responsible for (5, 25] now only holds key 20
        store.sync_replica_range(5, 25, {20: "b"})
        assert not store.has(10)
        assert store.get(20) == "b"

    def test_sync_leaves_other_ranges_alone(self, store):
        store.accept_replicas({100: "other"})
        store.sync_replica_range(5, 25, {})
        assert store.get(100) == "other"

    def test_sync_adds_new_items(self, store):
        store.sync_replica_range(5, 25, {10: "new"})
        assert store.get(10) == "new"

    def test_drop_replicas_outside(self, store):
        store.accept_replicas({1: "a", 2: "b", 3: "c"})
        store.drop_replicas_outside([2])
        assert store.replica_count == 1
        assert store.get(2) == "b"

    def test_all_keys(self, store):
        store.put_primary(1, "p")
        store.accept_replicas({2: "r"})
        assert store.all_keys() == {1, 2}
