"""Tests for the shared comparison-figure machinery."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.experiments.figures import (
    SNAPSHOT_TICKS,
    comparison_figure,
    paired_histograms,
    run_with_snapshots,
)


@pytest.fixture(scope="module")
def base_config():
    return SimulationConfig(n_nodes=150, n_tasks=7500, seed=8)


class TestRunWithSnapshots:
    def test_snapshot_ticks_captured(self, base_config):
        run = run_with_snapshots("base", base_config, ticks=(0, 3, 7))
        assert set(run.loads_at) == {0, 3, 7}
        assert run.loads_at[0].sum() == base_config.n_tasks
        assert run.runtime_factor > 1.0

    def test_default_ticks_are_papers(self):
        assert SNAPSHOT_TICKS == (0, 5, 35)

    def test_label_carried(self, base_config):
        run = run_with_snapshots("my-label", base_config, ticks=(0,))
        assert run.label == "my-label"


class TestPairedHistograms:
    def test_shared_edges(self, base_config):
        a = run_with_snapshots("a", base_config, ticks=(0, 5))
        b = run_with_snapshots(
            "b",
            base_config.with_updates(strategy="random_injection"),
            ticks=(0, 5),
        )
        ha, hb = paired_histograms(a, b, tick=5)
        assert np.array_equal(ha.edges, hb.edges)
        assert ha.label == "a" and hb.label == "b"
        assert ha.n_nodes == 150

    def test_same_seed_identical_at_tick0(self, base_config):
        a = run_with_snapshots("a", base_config, ticks=(0,))
        b = run_with_snapshots(
            "b",
            base_config.with_updates(strategy="invitation"),
            ticks=(0,),
        )
        ha, hb = paired_histograms(a, b, tick=0)
        assert np.array_equal(ha.counts, hb.counts)


class TestComparisonFigure:
    def test_structure(self, base_config):
        result = comparison_figure(
            "test_fig",
            "test",
            base_config.with_updates(strategy="random_injection"),
            base_config,
            "inj",
            "none",
            ticks=(0, 5),
            focus_ticks=(5,),
        )
        assert result.experiment_id == "test_fig"
        # rows: 2 networks at 1 focus tick + 2 end rows
        assert len(result.rows) == 4
        assert set(result.data["histograms"]) == {0, 5}
        runs = result.data["runs"]
        assert set(runs) == {"inj", "none"}
        assert runs["inj"].runtime_factor < runs["none"].runtime_factor
