"""Tests of Neighbor Injection and its smart (querying) variant (§IV-C)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.neighbor import NeighborInjection, SmartNeighborInjection
from repro.sim.engine import TickEngine, run_simulation
from repro.sim.view import SimView


def make_engine(strategy="neighbor_injection", **overrides) -> TickEngine:
    overrides.setdefault("n_tasks", 5000)
    config = SimulationConfig(
        strategy=strategy, n_nodes=100, seed=17, **overrides
    )
    return TickEngine(config)


class TestTargetSelection:
    def test_candidates_are_successors_not_self(self):
        engine = make_engine()
        strategy = NeighborInjection()
        view = engine.view
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        candidates = strategy._candidate_slots(view, owner)
        base = view.main_slot(owner)
        succ = set(
            view.successor_slots(base, engine.config.num_successors).tolist()
        )
        for slot in candidates.tolist():
            assert slot in succ
            assert view.slot_owner(int(slot)) != owner

    def test_estimate_picks_largest_gap(self):
        engine = make_engine()
        strategy = NeighborInjection()
        view = engine.view
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        target = strategy._pick_target(view, owner)
        candidates = strategy._candidate_slots(view, owner)
        gaps = [view.slot_gap(int(s)) for s in candidates.tolist()]
        assert view.slot_gap(target) == max(gaps)

    def test_smart_picks_heaviest_and_counts_messages(self):
        engine = make_engine(strategy="smart_neighbor_injection")
        strategy = SmartNeighborInjection()
        view = engine.view
        view.begin_round()
        owner = int(engine.owners.network_indices[0])
        before = view.stats.messages
        target = strategy._pick_target(view, owner)
        candidates = strategy._candidate_slots(view, owner)
        counts = [view.slot_count(int(s)) for s in candidates.tolist()]
        assert view.slot_count(target) == max(counts)
        assert view.stats.messages - before == len(counts)


class TestSybilLocality:
    def test_sybils_land_near_their_owner(self):
        """Neighbor injection must place a Sybil inside one of the owner's
        tracked successor arcs — locality is the whole point."""
        engine = make_engine()
        k = engine.config.num_successors
        # run a few decision rounds, checking each new sybil's position
        for _ in range(3 * engine.config.decision_interval):
            sybils_before = {
                int(engine.state.ids[s])
                for s in np.flatnonzero(~engine.state.is_main)
            }
            engine.step()
            for slot in np.flatnonzero(~engine.state.is_main):
                ident = int(engine.state.ids[slot])
                if ident in sybils_before:
                    continue
                owner = int(engine.state.owner[slot])
                main = engine.state.main_slot_of(owner)
                # within k+1 ring positions clockwise of the main slot
                # (+1 because the new sybil itself shifted indices)
                distance = (slot - main) % engine.state.n_slots
                assert 0 < distance <= k + 1


class TestEffectiveness:
    def test_beats_baseline(self, small_config):
        baseline = run_simulation(small_config)
        neighbor = run_simulation(
            small_config.with_updates(strategy="neighbor_injection")
        )
        assert neighbor.runtime_factor < baseline.runtime_factor

    def test_smart_beats_estimate(self):
        """Querying actual workloads beats estimating by range (§VI-C),
        averaged over a few seeds."""
        est, smart = [], []
        for seed in range(4):
            config = SimulationConfig(
                n_nodes=200, n_tasks=20_000, seed=seed
            )
            est.append(
                run_simulation(
                    config.with_updates(strategy="neighbor_injection")
                ).runtime_factor
            )
            smart.append(
                run_simulation(
                    config.with_updates(
                        strategy="smart_neighbor_injection"
                    )
                ).runtime_factor
            )
        assert np.mean(smart) < np.mean(est)

    def test_more_successors_help(self):
        """numSuccessors 10 beats 5 for neighbor injection (§VI-C)."""
        factors = {}
        for k in (5, 10):
            runs = [
                run_simulation(
                    SimulationConfig(
                        strategy="neighbor_injection",
                        n_nodes=200,
                        n_tasks=20_000,
                        num_successors=k,
                        seed=seed,
                    )
                ).runtime_factor
                for seed in range(3)
            ]
            factors[k] = np.mean(runs)
        assert factors[10] < factors[5]

    def test_conservation(self):
        for strategy in ("neighbor_injection", "smart_neighbor_injection"):
            result = run_simulation(
                SimulationConfig(
                    strategy=strategy, n_nodes=100, n_tasks=5000, seed=2
                )
            )
            assert result.completed
            assert result.total_consumed == 5000


class TestAvoidFailedRanges:
    def test_failed_ranges_are_remembered(self):
        engine = make_engine(avoid_failed_ranges=True)
        strategy = engine.strategy
        result = engine.run()
        assert result.completed
        # the memory only fills when some injection acquired nothing
        total_marks = sum(
            len(v) for v in strategy._failed_ranges.values()
        )
        assert total_marks >= 0  # smoke: structure exists and run is sound

    def test_run_valid_with_option(self):
        result = run_simulation(
            SimulationConfig(
                strategy="neighbor_injection",
                n_nodes=100,
                n_tasks=5000,
                avoid_failed_ranges=True,
                seed=4,
            )
        )
        assert result.completed


class TestInvariants:
    def test_state_valid_every_tick(self):
        engine = make_engine(n_tasks=2000)
        while not engine.finished:
            engine.step()
            engine.state.verify_invariants()
