"""Tests for the §III distribution analysis (exponential / Zipf claims)."""

import math

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.metrics.distribution import (
    expected_median_ratio,
    fit_exponential,
    ks_exponential,
    zipf_tail_exponent,
)
from repro.sim.engine import TickEngine


class TestExpectedMedianRatio:
    def test_is_ln2(self):
        assert expected_median_ratio() == pytest.approx(math.log(2))

    def test_matches_paper_table1(self):
        """The paper's 1000n/1e6t row: median 692.3 over mean 1000."""
        assert 692.3 / 1000 == pytest.approx(expected_median_ratio(), abs=0.01)


class TestExponentialFit:
    def test_fits_true_exponential(self, rng):
        samples = rng.exponential(scale=50.0, size=20_000)
        fit = fit_exponential(samples)
        assert fit.scale == pytest.approx(50.0, rel=0.05)
        assert fit.ks_statistic < 0.02
        if fit.p_value is not None:
            assert fit.p_value > 0.001

    def test_rejects_uniform(self, rng):
        samples = rng.uniform(0, 100, size=20_000)
        fit = fit_exponential(samples)
        assert fit.ks_statistic > 0.1

    def test_zero_samples(self):
        fit = fit_exponential(np.zeros(10))
        assert fit.n == 0
        assert fit.ks_statistic == 1.0

    def test_dht_loads_are_exponential(self):
        """The core §III claim: hashed DHT workloads fit an exponential."""
        engine = TickEngine(
            SimulationConfig(n_nodes=2000, n_tasks=2_000_000, seed=0)
        )
        loads = engine.network_loads()
        fit = fit_exponential(loads)
        assert fit.scale == pytest.approx(1000.0, rel=0.1)
        assert fit.ks_statistic < 0.05


class TestKs:
    def test_degenerate(self):
        stat, p = ks_exponential(np.array([]), 1.0)
        assert stat == 1.0 and p is None

    def test_bad_scale(self):
        stat, _ = ks_exponential(np.array([1.0, 2.0]), 0.0)
        assert stat == 1.0


class TestZipfTail:
    def test_negative_for_heavy_tail(self, rng):
        samples = rng.exponential(scale=100, size=5000)
        assert zipf_tail_exponent(samples) < 0

    def test_power_law_slope(self, rng):
        """rank-size of a true power law has log-log slope ≈ -1/alpha."""
        alpha = 2.0
        samples = rng.pareto(alpha, size=200_000) + 1
        slope = zipf_tail_exponent(samples, tail_fraction=0.01)
        assert slope == pytest.approx(-1 / alpha, abs=0.15)

    def test_tiny_input(self):
        assert zipf_tail_exponent(np.array([1.0])) == 0.0
