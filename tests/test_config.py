"""Tests for SimulationConfig validation and derivation."""

import pytest

from repro.config import STRATEGY_NAMES, SimulationConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.strategy == "none"
        assert config.n_nodes == 1000
        assert config.n_tasks == 100_000
        assert config.heterogeneous is False
        assert config.work_measurement == "one"
        assert config.churn_rate == 0.0
        assert config.max_sybils == 5
        assert config.sybil_threshold == 0
        assert config.num_successors == 5
        assert config.decision_interval == 5

    def test_tasks_per_node(self):
        assert SimulationConfig().tasks_per_node == 100.0

    def test_uses_sybils(self):
        assert not SimulationConfig(strategy="none").uses_sybils
        assert not SimulationConfig(strategy="churn").uses_sybils
        for name in (
            "random_injection",
            "neighbor_injection",
            "smart_neighbor_injection",
            "invitation",
        ):
            assert SimulationConfig(strategy=name).uses_sybils

    def test_strategy_names_constant(self):
        assert "random_injection" in STRATEGY_NAMES
        # 6 paper strategies + 3 §VII future-work extensions
        assert len(STRATEGY_NAMES) == 9


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strategy": "bogus"},
            {"n_nodes": 0},
            {"n_tasks": -1},
            {"churn_rate": -0.1},
            {"churn_rate": 1.5},
            {"max_sybils": -1},
            {"sybil_threshold": -1},
            {"num_successors": 0},
            {"decision_interval": 0},
            {"work_measurement": "half"},
            {"placement": "wherever"},
            {"bits": 4},
            {"bits": 80},
            {"max_ticks": 0},
            {"invite_factor": 0.0},
            {"heterogeneous": True, "max_sybils": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)

    def test_with_updates_validates(self):
        config = SimulationConfig()
        with pytest.raises(ConfigError):
            config.with_updates(churn_rate=2.0)

    def test_with_updates_returns_new(self):
        config = SimulationConfig()
        other = config.with_updates(strategy="churn", churn_rate=0.01)
        assert other.strategy == "churn"
        assert config.strategy == "none"  # original untouched

    def test_as_dict_roundtrip(self):
        config = SimulationConfig(strategy="invitation", n_nodes=42)
        data = config.as_dict()
        assert SimulationConfig(**data) == config
