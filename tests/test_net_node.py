"""Tests of the live node layer: directory, remote fabric, LiveNode.

The LiveNode tests boot real asyncio nodes on loopback ephemeral ports
inside ``asyncio.run`` — small rings, tight maintenance intervals, and
polling with hard deadlines keep them fast and non-flaky.
"""

import asyncio

import pytest

from repro.errors import ProtocolError, TransientNetworkError
from repro.net.node import (
    LiveBalancer,
    LiveNode,
    LiveNodeConfig,
    PeerDirectory,
    RemoteNetwork,
)
from repro.net.transport import RetryPolicy, async_request

POLICY = RetryPolicy(timeout=2.0, retries=1, backoff=0.01)

FAST = dict(maintenance_interval=0.03, heartbeat_interval=0.2)


class TestPeerDirectory:
    def test_add_get_snapshot(self):
        directory = PeerDirectory()
        directory.add(5, ("127.0.0.1", 9000))
        assert directory.get(5) == ("127.0.0.1", 9000)
        assert directory.snapshot() == {5: ["127.0.0.1", 9000]}
        assert directory.ids() == [5]

    def test_unknown_id_is_transport_failure(self):
        with pytest.raises(ProtocolError) as info:
            PeerDirectory().get(42)
        assert info.value.transport_failure is True

    def test_merge_does_not_overwrite(self):
        directory = PeerDirectory()
        directory.add(5, ("127.0.0.1", 9000))
        directory.merge({5: ["10.0.0.9", 1], 6: ["127.0.0.1", 9001]})
        assert directory.get(5) == ("127.0.0.1", 9000)
        assert directory.get(6) == ("127.0.0.1", 9001)

    def test_tombstone_blocks_resurrection_by_merge(self):
        """A retired identity must not flap back in via stale gossip."""
        directory = PeerDirectory()
        directory.add(5, ("127.0.0.1", 9000))
        directory.remove(5)
        directory.merge({5: ["127.0.0.1", 9000]})
        assert not directory.knows(5)
        # an explicit re-add (genuine re-registration) clears the stone
        directory.add(5, ("127.0.0.1", 9002))
        assert directory.get(5) == ("127.0.0.1", 9002)

    def test_tombstones_bounded_by_size(self):
        """Retiring identities forever must not leak memory: the stone
        set is capped, evicting oldest-first."""
        directory = PeerDirectory(max_tombstones=8)
        for ident in range(100):
            directory.add(ident, ("127.0.0.1", 9000))
            directory.remove(ident)
        assert len(directory._tombstones) == 8
        # the survivors are the most recent removals
        assert sorted(directory._tombstones) == list(range(92, 100))
        # old stones are gone, so (by design) a very stale snapshot can
        # re-add those ids; recent retirements stay protected
        directory.merge({0: ["127.0.0.1", 9000], 99: ["127.0.0.1", 9000]})
        assert directory.knows(0)
        assert not directory.knows(99)

    def test_tombstones_expire_by_op_age(self):
        directory = PeerDirectory(tombstone_ttl_ops=10)
        directory.add(5, ("127.0.0.1", 9000))
        directory.remove(5)
        assert 5 in directory._tombstones
        for ident in range(100, 106):
            directory.add(ident, ("127.0.0.1", 9000))
        assert 5 in directory._tombstones  # still young
        for ident in range(106, 112):
            directory.add(ident, ("127.0.0.1", 9000))
        assert 5 not in directory._tombstones  # aged out
        directory.merge({5: ["127.0.0.1", 9000]})
        assert directory.knows(5)

    def test_re_removal_refreshes_tombstone_age(self):
        directory = PeerDirectory(max_tombstones=2)
        for ident in (1, 2):
            directory.add(ident, ("127.0.0.1", 9000))
            directory.remove(ident)
        # re-add + re-remove id 1: its stone must now be the youngest
        directory.add(1, ("127.0.0.1", 9000))
        directory.remove(1)
        directory.add(3, ("127.0.0.1", 9000))
        directory.remove(3)
        assert sorted(directory._tombstones) == [1, 3]


class TestRemoteNetworkLocal:
    """The SimNetwork-facade behaviours that need no sockets."""

    def _net(self):
        directory = PeerDirectory()
        return RemoteNetwork(directory, ("127.0.0.1", 1), policy=POLICY)

    def test_unknown_target_is_transport_failure(self):
        net = self._net()
        with pytest.raises(ProtocolError) as info:
            net.rpc(99, "rpc_ping")
        assert info.value.transport_failure is True
        assert net.messages["rpc_ping"] == 1  # the send was attempted

    def test_local_dispatch_counts_messages(self):
        from repro.chord.node import ChordNode
        from repro.hashspace.idspace import IdSpace

        net = self._net()
        node = ChordNode(10, IdSpace(16), net)
        node.create()
        assert net.rpc(10, "rpc_ping") is True
        assert net.messages["rpc_ping"] == 1
        assert net.is_alive(10)
        assert net.directory.knows(10)

    def test_dispatch_rejects_non_rpc_methods(self):
        from repro.chord.node import ChordNode
        from repro.hashspace.idspace import IdSpace

        net = self._net()
        ChordNode(10, IdSpace(16), net).create()
        with pytest.raises(ProtocolError):
            net.dispatch(10, "fail", [], {})  # would kill the node

    def test_deregister_tombstones_directory(self):
        from repro.chord.node import ChordNode
        from repro.hashspace.idspace import IdSpace

        net = self._net()
        ChordNode(10, IdSpace(16), net).create()
        net.deregister(10)
        assert not net.is_alive(10)
        net.directory.merge({10: ["127.0.0.1", 1]})
        assert not net.is_alive(10)


class TestLiveBalancerValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ProtocolError):
            LiveBalancer(object(), "smart_neighbor_injection")


async def _wait_until(predicate, *, timeout=10.0, interval=0.05):
    """Poll an async predicate until truthy (hard deadline)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        value = await predicate()
        if value:
            return value
        if loop.time() > deadline:
            raise AssertionError("condition not reached before deadline")
        await asyncio.sleep(interval)


async def _boot_ring(n, **config_kwargs):
    nodes = []
    first = LiveNode(
        "127.0.0.1", 0, LiveNodeConfig(seed=100, **FAST, **config_kwargs)
    )
    await first.start()
    nodes.append(first)
    for i in range(1, n):
        node = LiveNode(
            "127.0.0.1",
            0,
            LiveNodeConfig(seed=100 + i, **FAST, **config_kwargs),
        )
        await node.start(bootstrap=first.addr)
        nodes.append(node)
    return nodes


async def _stop_all(nodes):
    for node in reversed(nodes):
        await node.stop()


class TestLiveRing:
    def test_three_node_ring_put_get(self):
        async def main():
            nodes = await _boot_ring(3)
            try:
                ids = sorted(n.main.id for n in nodes)

                async def ring_converged():
                    # every node's successor pointer lands on the next
                    # ring id — the standard Chord convergence criterion
                    for node in nodes:
                        succ = node.main.successor_list[0]
                        expected = ids[
                            (ids.index(node.main.id) + 1) % len(ids)
                        ]
                        if succ != expected:
                            return False
                    return True

                await _wait_until(ring_converged)

                # store through one node, fetch through another
                put = await async_request(
                    nodes[0].addr,
                    {"op": "client_put", "key": 777, "value": "v"},
                    policy=POLICY,
                )
                assert put["holder"] in ids
                got = await async_request(
                    nodes[2].addr,
                    {"op": "client_get", "key": 777},
                    policy=POLICY,
                )
                assert got["value"] == "v"

                stats = await async_request(
                    nodes[1].addr, {"op": "stats"}, policy=POLICY
                )
                assert stats["known_peers"] == 3
                assert set(stats["fault_stats"]) == {
                    "drops", "retries", "fallbacks",
                }
            finally:
                await _stop_all(nodes)

        asyncio.run(main())

    def test_graceful_leave_hands_off_data(self):
        async def main():
            nodes = await _boot_ring(2)
            try:
                await _wait_until(
                    lambda: asyncio.sleep(
                        0, nodes[1].main.successor_list[0] == nodes[0].main.id
                    )
                )
                put = await async_request(
                    nodes[0].addr,
                    {"op": "client_put", "key": 4242, "value": "kept"},
                    policy=POLICY,
                )
                assert put["holder"] in (nodes[0].main.id, nodes[1].main.id)
                # stop (graceful leave) whichever node holds the key
                holder = next(
                    n for n in nodes if n.main.id == put["holder"]
                )
                survivor = next(n for n in nodes if n is not holder)
                await holder.stop()
                got = await async_request(
                    survivor.addr,
                    {"op": "client_get", "key": 4242},
                    policy=POLICY,
                )
                assert got["value"] == "kept"
                await survivor.stop()
            except BaseException:
                await _stop_all([n for n in nodes if n._server is not None])
                raise

        asyncio.run(main())

    def test_random_injection_spawns_sybils(self):
        async def main():
            nodes = await _boot_ring(
                2,
                strategy="random_injection",
                sybil_threshold=0,
                max_sybils=2,
                decision_interval=2,
            )
            try:
                async def some_sybil():
                    stats = await async_request(
                        nodes[0].addr, {"op": "stats"}, policy=POLICY
                    )
                    return stats["n_sybils"] >= 1

                await _wait_until(some_sybil)
                stats = await async_request(
                    nodes[0].addr, {"op": "stats"}, policy=POLICY
                )
                sybil_idents = [
                    v for v in stats["identities"].values() if v["sybil"]
                ]
                assert sybil_idents
                assert stats["metrics"]["counters"].get(
                    "net.sybils_created", 0
                ) >= 1
            finally:
                await _stop_all(nodes)

        asyncio.run(main())

    def test_unknown_op_is_app_error(self):
        async def main():
            nodes = await _boot_ring(1)
            try:
                with pytest.raises(ProtocolError) as info:
                    await async_request(
                        nodes[0].addr, {"op": "nonsense"}, policy=POLICY
                    )
                assert not isinstance(info.value, TransientNetworkError)
                assert not getattr(info.value, "transport_failure", False)
            finally:
                await _stop_all(nodes)

        asyncio.run(main())

    def test_rpc_to_unhosted_id_is_transport_error(self):
        async def main():
            nodes = await _boot_ring(1)
            try:
                with pytest.raises(ProtocolError) as info:
                    await async_request(
                        nodes[0].addr,
                        {
                            "op": "rpc",
                            "to": 123456789,
                            "method": "rpc_ping",
                            "args": [],
                            "kwargs": {},
                        },
                        policy=POLICY,
                    )
                assert info.value.transport_failure is True
            finally:
                await _stop_all(nodes)

        asyncio.run(main())

    def test_sha1_identity_when_unspecified(self):
        from repro.hashspace.hashing import sha1_id

        async def main():
            node = LiveNode("127.0.0.1", 0, LiveNodeConfig(seed=3, **FAST))
            await node.start()
            try:
                expected = sha1_id(
                    f"{node.addr[0]}:{node.addr[1]}", node.space
                )
                assert node.main.id == expected
            finally:
                await node.stop()

        asyncio.run(main())
