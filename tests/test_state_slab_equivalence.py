"""Slab RingState vs. the naive reference: observation equivalence.

The slab-allocated :class:`~repro.sim.state.RingState` must be
indistinguishable from :class:`~repro.sim.reference.NaiveRingState` —
not just in the multiset of remaining keys, but bit-for-bit: same slot
arrays, same remaining-key *order*, and the same generator stream
position after every operation.  That last condition is what makes
seeded whole-simulation runs reproducible across the rewrite.

``add_tasks`` is the one deliberate exception: the slab version shuffles
all affected slots in a single vectorized pass, which consumes the
stream differently, so it is held to per-slot multiset equality instead.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IdSpaceError
from repro.hashspace.idspace import IdSpace
from repro.sim.reference import NaiveRingState
from repro.sim.state import RingState

SPACE = IdSpace(12)


def build_pair(seed, n_nodes, n_keys):
    """Identically-seeded (slab, naive) rings over the same initial data."""
    setup = np.random.default_rng(seed)
    ids = setup.choice(
        SPACE.size, size=n_nodes, replace=False
    ).astype(np.uint64)
    keys = setup.integers(0, SPACE.size, size=n_keys, dtype=np.uint64)
    owners = np.arange(n_nodes, dtype=np.int64)
    slab = RingState.build(
        SPACE, ids, owners, keys, np.random.default_rng(seed + 1)
    )
    naive = NaiveRingState.build(
        SPACE, ids, owners, keys, np.random.default_rng(seed + 1)
    )
    return slab, naive


def assert_equivalent(slab, naive, *, exact_order=True):
    assert slab.n_slots == naive.n_slots
    assert slab.n_sybil_slots == naive.n_sybil_slots
    np.testing.assert_array_equal(slab.ids, naive.ids)
    np.testing.assert_array_equal(slab.owner, naive.owner)
    np.testing.assert_array_equal(slab.is_main, naive.is_main)
    np.testing.assert_array_equal(slab.counts, naive.counts)
    for i in range(slab.n_slots):
        a = slab.remaining_keys(i)
        b = naive.remaining_keys(i)
        if not exact_order:
            a, b = np.sort(a), np.sort(b)
        np.testing.assert_array_equal(a, b)
    if exact_order:
        # same number and order of draws consumed from the stream
        assert (
            slab.rng.bit_generator.state == naive.rng.bit_generator.state
        )


OP = st.sampled_from(
    ["insert_main", "insert_sybil", "remove_slot", "remove_owner",
     "retire_sybils", "consume"]
)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(2, 16),
    n_keys=st.integers(0, 250),
    ops=st.lists(st.tuples(OP, st.integers(0, 2**31 - 1)), max_size=30),
)
def test_slab_matches_naive_reference(seed, n_nodes, n_keys, ops):
    slab, naive = build_pair(seed, n_nodes, n_keys)
    next_owner = n_nodes

    for kind, op_seed in ops:
        op_rng = np.random.default_rng(op_seed)
        if kind in ("insert_main", "insert_sybil"):
            ident = int(op_rng.integers(0, SPACE.size))
            if kind == "insert_main":
                owner, is_main = next_owner, True
            else:
                owner = int(op_rng.integers(0, next_owner))
                is_main = False
            try:
                got = slab.insert_slot(ident, owner, is_main=is_main)
            except IdSpaceError:
                continue
            assert got == naive.insert_slot(ident, owner, is_main=is_main)
            if is_main:
                next_owner += 1
        elif kind == "remove_slot":
            if slab.n_slots <= 1:
                continue
            slot = int(op_rng.integers(0, slab.n_slots))
            assert slab.remove_slot(slot) == naive.remove_slot(slot)
        elif kind == "remove_owner":
            owner = int(op_rng.integers(0, next_owner))
            if slab.n_slots - slab.slots_of_owner(owner).size < 1:
                continue
            assert slab.remove_owner(owner) == naive.remove_owner(owner)
        elif kind == "retire_sybils":
            owner = int(op_rng.integers(0, next_owner))
            assert slab.retire_sybils(owner) == naive.retire_sybils(owner)
        elif kind == "consume":
            if slab.n_slots == 0:
                continue
            slot = int(op_rng.integers(0, slab.n_slots))
            take = int(min(slab.counts[slot], op_rng.integers(0, 5)))
            idx = np.array([slot])
            amt = np.array([take], dtype=np.int64)
            slab.consume_at(idx, amt)
            naive.consume_at(idx, amt)
        slab.verify_invariants()
        assert_equivalent(slab, naive)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(2, 12),
    n_keys=st.integers(0, 150),
    n_fresh=st.integers(0, 150),
)
def test_add_tasks_matches_naive_keysets(seed, n_nodes, n_keys, n_fresh):
    """Vectorized ``add_tasks`` routes every key to the same slot as the
    reference (the within-slot shuffle order may differ)."""
    slab, naive = build_pair(seed, n_nodes, n_keys)
    fresh = np.random.default_rng(seed ^ 0x5EED).integers(
        0, SPACE.size, size=n_fresh, dtype=np.uint64
    )
    slab.add_tasks(fresh)
    naive.add_tasks(fresh)
    slab.verify_invariants()
    assert_equivalent(slab, naive, exact_order=False)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(3, 14),
    n_keys=st.integers(0, 200),
    leavers=st.lists(st.integers(0, 13), max_size=6),
    joiner_ids=st.lists(st.integers(0, SPACE.size - 1), max_size=6),
)
def test_batched_churn_matches_sequential(
    seed, n_nodes, n_keys, leavers, joiner_ids
):
    """A batched removal pass followed by a batched insertion pass is
    bit-identical (state and RNG stream) to the sequential per-node
    remove_owner / insert_slot loop the engine used to run."""
    slab, naive = build_pair(seed, n_nodes, n_keys)
    next_owner = n_nodes

    removal = slab.begin_batch_removal()
    for owner in leavers:
        owner = owner % n_nodes
        moved = removal.remove_owner_guarded(owner)
        # replay sequentially on the reference
        if naive.n_slots - naive.slots_of_owner(owner).size >= 1:
            assert moved == naive.remove_owner(owner)
        else:
            assert moved is None
    removal.commit()

    insertion = slab.begin_batch_insertion()
    for ident in joiner_ids:
        if insertion.id_exists(ident):
            continue
        acquired = insertion.add(ident, next_owner, is_main=True)
        _, naive_acquired = naive.insert_slot(
            ident, next_owner, is_main=True
        )
        assert acquired == naive_acquired
        next_owner += 1
    insertion.commit()

    slab.verify_invariants()
    assert_equivalent(slab, naive)
