"""Slab RingState vs. the naive reference: observation equivalence.

The slab-allocated :class:`~repro.sim.state.RingState` must be
indistinguishable from :class:`~repro.sim.reference.NaiveRingState` —
not just in the multiset of remaining keys, but bit-for-bit: same slot
arrays, same remaining-key *order*, and the same generator stream
position after every operation.  That last condition is what makes
seeded whole-simulation runs reproducible across the rewrite.

``add_tasks`` is the one deliberate exception: the slab version shuffles
all affected slots in a single vectorized pass, which consumes the
stream differently, so it is held to per-slot multiset equality instead.
"""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import IdSpaceError
from repro.hashspace.idspace import IdSpace
from repro.sim.reference import NaiveRingState
from repro.sim.state import RingState

SPACE = IdSpace(12)


def build_pair(seed, n_nodes, n_keys):
    """Identically-seeded (slab, naive) rings over the same initial data."""
    setup = np.random.default_rng(seed)
    ids = setup.choice(
        SPACE.size, size=n_nodes, replace=False
    ).astype(np.uint64)
    keys = setup.integers(0, SPACE.size, size=n_keys, dtype=np.uint64)
    owners = np.arange(n_nodes, dtype=np.int64)
    slab = RingState.build(
        SPACE, ids, owners, keys, np.random.default_rng(seed + 1)
    )
    naive = NaiveRingState.build(
        SPACE, ids, owners, keys, np.random.default_rng(seed + 1)
    )
    return slab, naive


def assert_equivalent(slab, naive, *, exact_order=True):
    assert slab.n_slots == naive.n_slots
    assert slab.n_sybil_slots == naive.n_sybil_slots
    np.testing.assert_array_equal(slab.ids, naive.ids)
    np.testing.assert_array_equal(slab.owner, naive.owner)
    np.testing.assert_array_equal(slab.is_main, naive.is_main)
    np.testing.assert_array_equal(slab.counts, naive.counts)
    for i in range(slab.n_slots):
        a = slab.remaining_keys(i)
        b = naive.remaining_keys(i)
        if not exact_order:
            a, b = np.sort(a), np.sort(b)
        np.testing.assert_array_equal(a, b)
    if exact_order:
        # same number and order of draws consumed from the stream
        assert (
            slab.rng.bit_generator.state == naive.rng.bit_generator.state
        )


OP = st.sampled_from(
    ["insert_main", "insert_sybil", "remove_slot", "remove_owner",
     "retire_sybils", "consume"]
)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(2, 16),
    n_keys=st.integers(0, 250),
    ops=st.lists(st.tuples(OP, st.integers(0, 2**31 - 1)), max_size=30),
)
# Pinned falsifying example (formerly .hypothesis/patches/): churn takes
# owner 1's main while its Sybil survives, then retire_sybils targets
# the last slot alive — retirement must leave it in place, not raise.
@example(
    seed=0,
    n_nodes=2,
    n_keys=0,
    ops=[
        ("remove_slot", 0),
        ("insert_sybil", 0),
        ("remove_slot", 1),
        ("retire_sybils", 0),
    ],
).via("discovered failure")
def test_slab_matches_naive_reference(seed, n_nodes, n_keys, ops):
    slab, naive = build_pair(seed, n_nodes, n_keys)
    next_owner = n_nodes

    for kind, op_seed in ops:
        op_rng = np.random.default_rng(op_seed)
        if kind in ("insert_main", "insert_sybil"):
            ident = int(op_rng.integers(0, SPACE.size))
            if kind == "insert_main":
                owner, is_main = next_owner, True
            else:
                owner = int(op_rng.integers(0, next_owner))
                is_main = False
            try:
                got = slab.insert_slot(ident, owner, is_main=is_main)
            except IdSpaceError:
                continue
            assert got == naive.insert_slot(ident, owner, is_main=is_main)
            if is_main:
                next_owner += 1
        elif kind == "remove_slot":
            if slab.n_slots <= 1:
                continue
            slot = int(op_rng.integers(0, slab.n_slots))
            assert slab.remove_slot(slot) == naive.remove_slot(slot)
        elif kind == "remove_owner":
            owner = int(op_rng.integers(0, next_owner))
            if slab.n_slots - slab.slots_of_owner(owner).size < 1:
                continue
            assert slab.remove_owner(owner) == naive.remove_owner(owner)
        elif kind == "retire_sybils":
            owner = int(op_rng.integers(0, next_owner))
            assert slab.retire_sybils(owner) == naive.retire_sybils(owner)
        elif kind == "consume":
            if slab.n_slots == 0:
                continue
            slot = int(op_rng.integers(0, slab.n_slots))
            take = int(min(slab.counts[slot], op_rng.integers(0, 5)))
            idx = np.array([slot])
            amt = np.array([take], dtype=np.int64)
            slab.consume_at(idx, amt)
            naive.consume_at(idx, amt)
        slab.verify_invariants()
        naive.verify_invariants()
        assert_equivalent(slab, naive)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(2, 12),
    n_keys=st.integers(0, 150),
    n_fresh=st.integers(0, 150),
)
def test_add_tasks_matches_naive_keysets(seed, n_nodes, n_keys, n_fresh):
    """Vectorized ``add_tasks`` routes every key to the same slot as the
    reference (the within-slot shuffle order may differ)."""
    slab, naive = build_pair(seed, n_nodes, n_keys)
    fresh = np.random.default_rng(seed ^ 0x5EED).integers(
        0, SPACE.size, size=n_fresh, dtype=np.uint64
    )
    slab.add_tasks(fresh)
    naive.add_tasks(fresh)
    slab.verify_invariants()
    naive.verify_invariants()
    assert_equivalent(slab, naive, exact_order=False)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_nodes=st.integers(3, 14),
    n_keys=st.integers(0, 200),
    leavers=st.lists(st.integers(0, 13), max_size=6),
    joiner_ids=st.lists(st.integers(0, SPACE.size - 1), max_size=6),
)
# Pinned falsifying example (formerly .hypothesis/patches/): the same
# owner leaves twice in one batch — the second guarded removal must see
# the first batch removal and become a no-op on both sides.
@example(
    seed=0,
    n_nodes=3,
    n_keys=0,
    leavers=[0, 0],
    joiner_ids=[],
).via("discovered failure")
def test_batched_churn_matches_sequential(
    seed, n_nodes, n_keys, leavers, joiner_ids
):
    """A batched removal pass followed by a batched insertion pass is
    bit-identical (state and RNG stream) to the sequential per-node
    remove_owner / insert_slot loop the engine used to run."""
    slab, naive = build_pair(seed, n_nodes, n_keys)
    next_owner = n_nodes

    removal = slab.begin_batch_removal()
    for owner in leavers:
        owner = owner % n_nodes
        moved = removal.remove_owner_guarded(owner)
        # replay sequentially on the reference
        if naive.n_slots - naive.slots_of_owner(owner).size >= 1:
            assert moved == naive.remove_owner(owner)
        else:
            assert moved is None
    removal.commit()

    insertion = slab.begin_batch_insertion()
    for ident in joiner_ids:
        if insertion.id_exists(ident):
            continue
        acquired = insertion.add(ident, next_owner, is_main=True)
        _, naive_acquired = naive.insert_slot(
            ident, next_owner, is_main=True
        )
        assert acquired == naive_acquired
        next_owner += 1
    insertion.commit()

    slab.verify_invariants()
    naive.verify_invariants()
    assert_equivalent(slab, naive)


# ----------------------------------------------------------------------
# Sybil-retirement edge cases (regressions for the last-slot guard)
# ----------------------------------------------------------------------
def _orphan_sybil_pair(n_extra_sybils=0):
    """(slab, naive) where owner 0's main is gone and only its Sybils
    remain on the ring."""
    slab, naive = build_pair(7, 2, 40)
    # owner 0 gains sybils, then loses its main slot to churn
    sybil_ids = [10, 20] + [30 + i for i in range(n_extra_sybils)]
    for ident in sybil_ids:
        assert slab.insert_slot(ident, 0, is_main=False) == naive.insert_slot(
            ident, 0, is_main=False
        )
    main_slot = int(np.flatnonzero(slab.is_main & (slab.owner == 0))[0])
    assert slab.remove_slot(main_slot) == naive.remove_slot(main_slot)
    return slab, naive


class TestRetireSybilsEdgeCases:
    def test_retire_with_main_gone_keeps_ring_alive(self):
        """Owner's main left under churn: its Sybils still retire."""
        slab, naive = _orphan_sybil_pair()
        got = slab.retire_sybils(0)
        assert got == naive.retire_sybils(0)
        assert got == 2  # other owner's main still alive: all retire
        slab.verify_invariants()
        naive.verify_invariants()
        assert_equivalent(slab, naive)

    def test_sybil_only_remainder_keeps_last_slot(self):
        """When the owner's Sybils are ALL that's left of the ring, the
        last one stays put instead of emptying the ring."""
        slab, naive = _orphan_sybil_pair(n_extra_sybils=1)
        # remove the other owner entirely: ring is now sybil-only
        assert slab.remove_owner(1) == naive.remove_owner(1)
        n_sybils = slab.n_slots
        assert bool((~slab.is_main).all()) and n_sybils == 3
        got = slab.retire_sybils(0)
        assert got == naive.retire_sybils(0)
        assert got == n_sybils - 1
        assert slab.n_slots == naive.n_slots == 1
        assert not bool(slab.is_main[0])
        slab.verify_invariants()
        naive.verify_invariants()
        assert_equivalent(slab, naive)

    def test_batch_retire_matches_sequential_guard(self):
        """BatchRemoval.retire_sybils applies the same last-slot guard
        as the sequential path."""
        slab, naive = _orphan_sybil_pair(n_extra_sybils=1)
        slab.remove_owner(1)
        naive.remove_owner(1)
        removal = slab.begin_batch_removal()
        got = removal.retire_sybils(0)
        removal.commit()
        assert got == naive.retire_sybils(0)
        assert slab.n_slots == naive.n_slots == 1
        slab.verify_invariants()
        naive.verify_invariants()
        assert_equivalent(slab, naive)

    def test_retire_with_live_main_is_unchanged(self):
        """The guard never fires in the normal case: main alive, every
        Sybil retires."""
        slab, naive = build_pair(3, 4, 120)
        for ident in (11, 22, 33):
            slab.insert_slot(ident, 2, is_main=False)
            naive.insert_slot(ident, 2, is_main=False)
        assert slab.retire_sybils(2) == naive.retire_sybils(2) == 3
        assert slab.slots_of_owner(2).size == 1
        slab.verify_invariants()
        naive.verify_invariants()
        assert_equivalent(slab, naive)
