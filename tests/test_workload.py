"""Tests for workload generation and the ideal-runtime definition."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hashspace.idspace import IdSpace
from repro.sim.workload import (
    draw_new_node_id,
    draw_task_keys,
    draw_unique_ids,
    ideal_runtime,
)


class TestDrawUniqueIds:
    def test_unique_and_in_range(self, rng):
        space = IdSpace(10)
        ids = draw_unique_ids(500, space, rng)
        assert np.unique(ids).size == 500
        assert int(ids.max()) < 1024

    def test_exhaustive_draw(self, rng):
        space = IdSpace(8)
        ids = draw_unique_ids(256, space, rng)
        assert np.unique(ids).size == 256

    def test_overfull_raises(self, rng):
        with pytest.raises(ConfigError):
            draw_unique_ids(300, IdSpace(8), rng)

    def test_not_sorted(self, rng):
        """Ids must be permuted so owner index is independent of position."""
        ids = draw_unique_ids(1000, IdSpace(32), rng)
        assert not (ids[:-1] <= ids[1:]).all()


class TestDrawTaskKeys:
    def test_shape_dtype(self, rng):
        keys = draw_task_keys(1234, IdSpace(64), rng)
        assert keys.shape == (1234,)
        assert keys.dtype == np.uint64


class TestDrawNewNodeId:
    def test_avoids_existing(self, rng):
        space = IdSpace(8)
        taken = set(range(0, 256, 2))  # all even ids occupied
        for _ in range(20):
            ident = draw_new_node_id(space, rng, lambda i: i in taken)
            assert ident % 2 == 1

    def test_gives_up_when_full(self, rng):
        space = IdSpace(8)
        with pytest.raises(ConfigError):
            draw_new_node_id(space, rng, lambda i: True)


class TestIdealRuntime:
    def test_paper_example(self):
        # 1000 nodes, 100,000 tasks, one task per tick -> 100 ticks
        assert ideal_runtime(100_000, 1000) == 100.0

    def test_heterogeneous_capacity(self):
        assert ideal_runtime(300, 30) == 10.0

    def test_zero_capacity_raises(self):
        with pytest.raises(ConfigError):
            ideal_runtime(100, 0)
