"""Adversarial Sybil plane tests: attacks, defenses, and the
default-off guarantee.

Mirrors the failure-model test contract: with ``AdversaryModel`` at its
defaults, seeded runs must stay bit-identical to results produced
before the feature existed (the pinned fingerprints are the same ones
``tests/test_failure_model.py`` pins).  One enabled scenario is pinned
too and must agree across shard counts and kernel backends.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.config import AdversaryModel, SimulationConfig
from repro.errors import ConfigError
from repro.obs.metrics import collect_run_metrics, result_fingerprint
from repro.sim.cache import trial_key
from repro.sim.engine import TickEngine
from repro.sim.kernels import available_backends
from repro.sim.owners import (
    PROV_ADVERSARIAL,
    PROV_BENEVOLENT,
    PROV_HONEST,
    OwnerRegistry,
)
from repro.sim.persistence import result_from_dict, result_to_dict
from repro.sim.shard import ShardedTickEngine


def _loads_sha16(result) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(result.final_loads).tobytes()
    ).hexdigest()[:16]


# ----------------------------------------------------------------------
# default-off bit-identity (pre-feature fingerprints; do not update)
# ----------------------------------------------------------------------
PRE_FEATURE_FINGERPRINTS = [
    (
        "baseline",
        dict(n_nodes=120, n_tasks=6000, seed=7),
        306,
        "3dc463a76fc17060",
    ),
    (
        "churn",
        dict(
            strategy="churn", n_nodes=120, n_tasks=6000,
            churn_rate=0.02, seed=11,
        ),
        149,
        "116d7399ce18e417",
    ),
    (
        "invitation_churn",
        dict(
            strategy="invitation", n_nodes=100, n_tasks=5000,
            churn_rate=0.01, seed=5,
        ),
        140,
        "67042dfda5683aea",
    ),
    (
        "hetero_smart",
        dict(
            strategy="smart_neighbor_injection", n_nodes=80, n_tasks=4000,
            heterogeneous=True, work_measurement="strength", seed=13,
        ),
        41,
        "9e132485d5107211",
    ),
]


class TestDefaultBitIdentity:
    @pytest.mark.parametrize(
        "label,kwargs,ticks,sha16",
        PRE_FEATURE_FINGERPRINTS,
        ids=[f[0] for f in PRE_FEATURE_FINGERPRINTS],
    )
    def test_explicit_default_model_is_a_noop(
        self, label, kwargs, ticks, sha16
    ):
        """An explicitly-passed ``AdversaryModel()`` must be
        byte-identical to the pre-feature engine — no extra RNG draws,
        no phase, no counters."""
        config = SimulationConfig(adversary=AdversaryModel(), **kwargs)
        result = TickEngine(config).run()
        assert result.runtime_ticks == ticks
        assert _loads_sha16(result) == sha16
        assert result.adversary is None
        assert not any(k.startswith("adversary.") for k in result.counters)

    def test_disabled_plane_is_not_constructed(self):
        engine = TickEngine(SimulationConfig(n_nodes=20, n_tasks=200, seed=1))
        assert engine._adversary is None

    def test_honest_views_alias_full_views_when_disabled(self):
        config = SimulationConfig(n_nodes=20, n_tasks=200, seed=1)
        owners = OwnerRegistry(config, np.random.default_rng(0))
        assert owners.honest_network_indices is owners.network_indices
        assert owners.honest_waiting_indices is owners.waiting_indices
        assert owners.join_budget is None


# ----------------------------------------------------------------------
# AdversaryModel config group
# ----------------------------------------------------------------------
class TestAdversaryModelConfig:
    def test_defaults_are_inert(self):
        adv = AdversaryModel()
        assert not adv.enabled
        assert adv.n_adversaries == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eclipse_sybils": -1},
            {"eclipse_arc_fraction": 0.0},
            {"eclipse_arc_fraction": 0.9},
            {"free_riders": -2},
            {"churn_amplification": 1.5},
            {"attack_tick": 0},
            {"join_cost": -1},
            {"join_budget_refill": 0},
            {"detection_interval": -5},
            {"density_threshold": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            AdversaryModel(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eclipse_sybils": 4},
            {"free_riders": 1},
            {"churn_amplification": 0.1},
            {"join_cost": 2},
            {"detection_interval": 10},
        ],
    )
    def test_any_knob_enables(self, kwargs):
        assert AdversaryModel(**kwargs).enabled

    def test_config_round_trip_through_dict(self):
        config = SimulationConfig(
            n_nodes=40,
            n_tasks=400,
            seed=2,
            adversary=AdversaryModel(eclipse_sybils=6, join_cost=3),
        )
        data = config.as_dict()
        assert data["adversary"]["eclipse_sybils"] == 6
        assert data["adversary"]["join_cost"] == 3
        data["snapshot_ticks"] = tuple(data["snapshot_ticks"])
        assert SimulationConfig(**data) == config

    def test_bad_adversary_type_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(adversary="eclipse")

    def test_adversary_participates_in_cache_key(self):
        base = SimulationConfig(n_nodes=40, n_tasks=400, seed=2)
        hostile = base.with_updates(
            adversary=AdversaryModel(free_riders=2)
        )
        seq = np.random.SeedSequence(2)
        assert trial_key(base, seq) != trial_key(hostile, seq)


# ----------------------------------------------------------------------
# attacks
# ----------------------------------------------------------------------
def run_attack(adversary, *, strategy="invitation", seed=11, **overrides):
    overrides.setdefault("n_nodes", 60)
    overrides.setdefault("n_tasks", 3000)
    overrides.setdefault("churn_rate", 0.02)
    overrides.setdefault("max_sybils", 5)
    overrides.setdefault("max_ticks", 1500)
    config = SimulationConfig(
        strategy=strategy, seed=seed, adversary=adversary, **overrides
    )
    engine = TickEngine(config)
    return engine, engine.run()


class TestEclipse:
    ADV = AdversaryModel(
        eclipse_sybils=8, eclipse_arc_fraction=0.05, attack_tick=5
    )

    def test_captures_keys(self):
        engine, result = run_attack(self.ADV)
        adv = result.adversary
        assert adv["slots_joined"] == 8
        assert adv["owners_joined"] == 1
        assert adv["captured_keys_peak"] > 0
        assert 0.0 < adv["captured_fraction_peak"] <= 1.0

    def test_provenance_marks_adversarial_slots(self):
        adv = AdversaryModel(eclipse_sybils=8, attack_tick=5)
        config = SimulationConfig(
            strategy="invitation", n_nodes=60, n_tasks=3000,
            max_sybils=5, seed=11, adversary=adv,
        )
        engine = TickEngine(config)
        for _ in range(10):
            engine.step()
        state = engine.state
        hostile = state.provenance == PROV_ADVERSARIAL
        assert hostile.sum() == 8
        # adversarial owner indices all live in the registry's tail
        assert (
            state.owner[hostile] >= engine.owners.adversary_start
        ).all()
        # honest mains and benevolent sybils keep their own marks
        honest_main = state.is_main & ~hostile
        assert (state.provenance[honest_main] == PROV_HONEST).all()
        benevolent = ~state.is_main & ~hostile
        assert (state.provenance[benevolent] == PROV_BENEVOLENT).all()

    def test_strategies_never_see_adversaries(self):
        engine, _ = run_attack(self.ADV, max_ticks=300)
        view_owners = engine.view.network_owners()
        assert (view_owners < engine.owners.adversary_start).all()


class TestFreeRiders:
    def test_stranded_tasks_without_churn(self):
        adv = AdversaryModel(free_riders=3, attack_tick=2)
        engine, result = run_attack(
            adv, churn_rate=0.0, max_ticks=120
        )
        assert result.termination_reason == "max_ticks"
        assert result.adversary["stranded_tasks"] > 0
        # free-riders hold one slot each and never consume
        assert result.adversary["slots_joined"] == 3

    def test_invisible_to_density_detection(self):
        adv = AdversaryModel(
            free_riders=3, attack_tick=2, detection_interval=10
        )
        _, result = run_attack(adv, churn_rate=0.0, max_ticks=120)
        assert result.adversary["detection_tp"] == 0
        assert result.adversary["detection_recall"] == 0.0


class TestChurnAmplifier:
    def test_crashes_heaviest_honest_owner(self):
        adv = AdversaryModel(churn_amplification=1.0)
        engine, result = run_attack(adv, max_ticks=400)
        assert result.adversary["crashes"] > 0
        # replication defaults to full: pressure, not data loss
        assert result.adversary["crash_tasks_lost"] == 0
        assert result.adversary["crash_tasks_recovered"] >= 0

    def test_never_empties_the_ring(self):
        adv = AdversaryModel(churn_amplification=1.0)
        _, result = run_attack(
            adv, n_nodes=3, n_tasks=200, churn_rate=0.0, max_ticks=400
        )
        assert result.termination_reason != "ring_empty"


# ----------------------------------------------------------------------
# defenses
# ----------------------------------------------------------------------
class TestJoinBudget:
    def test_throttles_eclipse_joins(self):
        fast = AdversaryModel(eclipse_sybils=10, attack_tick=5)
        slow = AdversaryModel(eclipse_sybils=10, attack_tick=5, join_cost=4)
        config = dict(
            strategy="none", n_nodes=60, n_tasks=3000, seed=11,
        )
        e_fast = TickEngine(SimulationConfig(adversary=fast, **config))
        e_slow = TickEngine(SimulationConfig(adversary=slow, **config))
        for _ in range(6):
            e_fast.step()
            e_slow.step()
        fast_joined = e_fast.counters["adversary.slots_joined"]
        slow_joined = e_slow.counters["adversary.slots_joined"]
        assert fast_joined == 10  # all land at attack_tick
        assert 0 < slow_joined < fast_joined  # budget-gated trickle

    def test_benevolent_balancing_survives_join_cost(self):
        adv = AdversaryModel(join_cost=3)
        _, result = run_attack(adv, max_ticks=600)
        assert result.completed
        assert result.counters["sybils_created"] > 0

    def test_view_exposes_budget(self):
        adv = AdversaryModel(join_cost=3)
        config = SimulationConfig(
            strategy="none", n_nodes=20, n_tasks=200, seed=1, adversary=adv
        )
        engine = TickEngine(config)
        assert engine.view.join_budget_remaining(0) == 3
        engine.owners.register_sybil(0)
        assert engine.view.join_budget_remaining(0) == 0

    def test_view_returns_none_when_defense_off(self):
        config = SimulationConfig(n_nodes=20, n_tasks=200, seed=1)
        engine = TickEngine(config)
        assert engine.view.join_budget_remaining(0) is None

    def test_budget_refills_capped_at_cost(self):
        adv = AdversaryModel(join_cost=2, join_budget_refill=5)
        config = SimulationConfig(
            strategy="none", n_nodes=10, n_tasks=100, seed=1, adversary=adv
        )
        engine = TickEngine(config)
        owners = engine.owners
        owners.register_sybil(0)
        assert owners.join_budget_remaining(0) == 0
        owners.refill_join_budgets()
        assert owners.join_budget_remaining(0) == 2  # capped at cost

    def test_exhausted_budget_blocks_sybil_creation(self):
        adv = AdversaryModel(join_cost=2)
        config = SimulationConfig(
            strategy="none", n_nodes=10, n_tasks=100, seed=1,
            max_sybils=5, adversary=adv,
        )
        owners = TickEngine(config).owners
        assert owners.can_add_sybil(0)
        owners.register_sybil(0)
        assert not owners.can_add_sybil(0)  # broke, despite cap headroom


class TestDensityDetection:
    DENSE = AdversaryModel(
        eclipse_sybils=12,
        eclipse_arc_fraction=0.01,
        attack_tick=5,
        detection_interval=10,
    )

    def test_evicts_dense_eclipse(self):
        _, result = run_attack(self.DENSE)
        adv = result.adversary
        assert adv["detection_tp"] > 0
        assert adv["owners_evicted"] == 1
        assert adv["detection_recall"] == 1.0
        assert result.completed

    def test_precision_perfect_on_small_honest_rings(self):
        # honest owners hold <= 1 + max_sybils scattered slots; none
        # should concentrate 4+ into one of 64 arcs at these sizes
        _, result = run_attack(self.DENSE)
        assert result.adversary["detection_fp"] == 0
        assert result.adversary["detection_precision"] == 1.0

    def test_evicted_adversary_is_quarantined(self):
        adv = AdversaryModel(
            eclipse_sybils=12, eclipse_arc_fraction=0.01,
            attack_tick=5, detection_interval=10,
        )
        engine, _ = run_attack(adv)
        owners = engine.owners
        # the benign waiting pool never offers an adversarial identity
        assert (
            owners.honest_waiting_indices < owners.adversary_start
        ).all()


# ----------------------------------------------------------------------
# pinned enabled scenario (fingerprint equivalence gate)
# ----------------------------------------------------------------------
PINNED_ADVERSARY = AdversaryModel(
    eclipse_sybils=12,
    eclipse_arc_fraction=0.01,
    churn_amplification=0.05,
    attack_tick=5,
    join_cost=2,
    detection_interval=10,
)

PINNED_CONFIG = SimulationConfig(
    strategy="invitation",
    n_nodes=50,
    n_tasks=3000,
    churn_rate=0.02,
    max_sybils=5,
    seed=424242,
    adversary=PINNED_ADVERSARY,
)

PINNED_TICKS = 123
PINNED_FINGERPRINT = "7a12e561363385e9"


class TestPinnedScenario:
    def test_plain_engine_matches_pin(self):
        result = TickEngine(PINNED_CONFIG).run()
        assert result.runtime_ticks == PINNED_TICKS
        assert result_fingerprint(result) == PINNED_FINGERPRINT
        assert result.completed

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_engines_match_pin(self, shards):
        with ShardedTickEngine(
            PINNED_CONFIG, shards=shards, min_parallel_slots=1
        ) as engine:
            result = engine.run()
        assert result.runtime_ticks == PINNED_TICKS
        assert result_fingerprint(result) == PINNED_FINGERPRINT

    @pytest.mark.parametrize("backend", available_backends())
    def test_backends_match_pin(self, backend):
        result = TickEngine(PINNED_CONFIG, backend=backend).run()
        assert result_fingerprint(result) == PINNED_FINGERPRINT

    def test_rerun_is_deterministic(self):
        a = TickEngine(PINNED_CONFIG).run()
        b = TickEngine(PINNED_CONFIG).run()
        assert result_fingerprint(a) == result_fingerprint(b)
        assert a.adversary == b.adversary


# ----------------------------------------------------------------------
# result plumbing: persistence, metrics
# ----------------------------------------------------------------------
class TestResultPlumbing:
    def test_v3_round_trip_keeps_adversary_block(self):
        _, result = run_attack(
            AdversaryModel(eclipse_sybils=8, attack_tick=5), max_ticks=300
        )
        restored = result_from_dict(result_to_dict(result))
        assert restored.adversary == result.adversary
        assert restored.config == result.config

    def test_v2_documents_still_load(self):
        config = SimulationConfig(n_nodes=40, n_tasks=800, seed=3)
        result = TickEngine(config).run()
        data = result_to_dict(result)
        data["format"] = "repro.simulation_result.v2"
        del data["adversary"]
        restored = result_from_dict(data)
        assert restored.adversary is None
        assert restored.completed

    def test_metrics_namespace(self):
        _, result = run_attack(
            AdversaryModel(eclipse_sybils=8, attack_tick=5), max_ticks=300
        )
        registry = collect_run_metrics(engine_counters=result.counters)
        assert registry.counter("sim.adversary.slots_joined") == 8
