"""Property-based tests of the protocol stack under random churn."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chord.ring import ChordRing
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(20)

churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["fail", "leave", "join", "noop"]),
        st.integers(0, 2**31 - 1),
    ),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**31 - 1), ops=churn_ops)
def test_ring_recovers_from_any_churn_schedule(seed, ops):
    """Any interleaving of crashes, graceful leaves and joins — with
    maintenance rounds between — leaves a consistent ring with all data
    reachable (churn bursts stay below the replication factor)."""
    ring = ChordRing.create(14, space=SPACE, seed=seed, n_successors=5)
    rng = np.random.default_rng(seed)
    keys = [int(k) for k in rng.integers(0, SPACE.size, size=40)]
    for key in keys:
        ring.put(key, key * 3)
    for _ in range(2):
        ring.maintenance_round()  # replicate before any failures

    for kind, op_seed in ops:
        op_rng = np.random.default_rng(op_seed)
        alive = ring.network.alive_ids()
        if kind == "fail" and len(alive) > 6:
            ring.fail_node(alive[int(op_rng.integers(0, len(alive)))])
        elif kind == "leave" and len(alive) > 6:
            ring.leave_node(alive[int(op_rng.integers(0, len(alive)))])
        elif kind == "join":
            ring.join_node()
        for _ in range(5):
            ring.maintenance_round()

    ring.verify()
    for key in keys:
        value, _ = ring.get(key)
        assert value == key * 3


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n_nodes=st.integers(3, 40))
def test_build_is_correct_at_any_size(seed, n_nodes):
    """Fresh rings of any size verify immediately and route correctly."""
    ring = ChordRing.create(n_nodes, space=SPACE, seed=seed)
    ring.verify()
    rng = np.random.default_rng(seed)
    for _ in range(10):
        key = int(rng.integers(0, SPACE.size))
        node = ring.network.node(ring.random_alive_id())
        holder, _ = node.find_successor(key)
        assert holder == ring.ground_truth_holder(key)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_lookup_modes_agree(seed):
    ring = ChordRing.create(20, space=SPACE, seed=seed)
    rng = np.random.default_rng(seed)
    node = ring.network.node(ring.network.alive_ids()[0])
    for _ in range(10):
        key = int(rng.integers(0, SPACE.size))
        iterative, _ = node.find_successor(key)
        recursive, _ = node.find_successor_recursive(key)
        assert iterative == recursive
