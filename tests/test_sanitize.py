"""Runtime determinism sanitizer (``repro.sanitize``): the env toggle,
RNG ownership tracking, payload scanning, shard-plan disjointness,
RNG-free phase guards, the asyncio watch, and end-to-end proof that a
sanitized sharded trial stays bit-identical to a plain one."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro import sanitize
from repro.config import SimulationConfig
from repro.errors import SanitizeError
from repro.obs import result_fingerprint
from repro.sim.trials import run_trial
from repro.util.rng import make_rng

CONFIG = SimulationConfig(
    strategy="invitation",
    n_nodes=40,
    n_tasks=1500,
    churn_rate=0.02,
    seed=11,
)


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
    sanitize.reset()
    yield
    sanitize.reset()


def arm(monkeypatch):
    monkeypatch.setenv(sanitize.ENV_FLAG, "1")


class TestToggle:
    def test_disabled_by_default(self):
        assert not sanitize.enabled()

    def test_env_flag_read_per_call(self, monkeypatch):
        arm(monkeypatch)
        assert sanitize.enabled()
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        assert not sanitize.enabled()

    def test_checks_are_inert_when_off(self):
        rng = make_rng(1)
        sanitize.track_rng(rng, "a")
        sanitize.track_rng(rng, "b")  # would raise when armed
        sanitize.forbid_generators((rng,), "payload")
        with sanitize.maybe_guard(rng, "phase"):
            rng.integers(10)  # a draw: would raise when armed
        assert sanitize.report_count() == 0


class TestTrackRng:
    def test_conflicting_owner_raises_and_reports(self, monkeypatch):
        arm(monkeypatch)
        rng = make_rng(1)
        sanitize.track_rng(rng, "tick-engine")
        with pytest.raises(SanitizeError, match="rng-aliasing"):
            sanitize.track_rng(rng, "stress-worker-0")
        assert sanitize.report_count() == 1
        assert "tick-engine" in sanitize.reports()[0]

    def test_same_owner_is_idempotent(self, monkeypatch):
        arm(monkeypatch)
        rng = make_rng(1)
        sanitize.track_rng(rng, "tick-engine")
        sanitize.track_rng(rng, "tick-engine")
        assert sanitize.report_count() == 0

    def test_distinct_streams_coexist(self, monkeypatch):
        arm(monkeypatch)
        sanitize.track_rng(make_rng(1), "a")
        sanitize.track_rng(make_rng(1), "b")  # same seed, own stream
        assert sanitize.report_count() == 0

    def test_two_wrappers_over_one_bit_generator_collide(self, monkeypatch):
        arm(monkeypatch)
        rng = make_rng(1)
        alias = np.random.Generator(rng.bit_generator)
        sanitize.track_rng(rng, "a")
        with pytest.raises(SanitizeError):
            sanitize.track_rng(alias, "b")

    def test_reset_clears_ownership(self, monkeypatch):
        arm(monkeypatch)
        rng = make_rng(1)
        sanitize.track_rng(rng, "a")
        sanitize.reset()
        sanitize.track_rng(rng, "b")
        assert sanitize.report_count() == 0


class TestForbidGenerators:
    def test_nested_generator_raises(self, monkeypatch):
        arm(monkeypatch)
        task = ("shm-name", 0, 4, {"rng": make_rng(3)})
        with pytest.raises(SanitizeError, match="generator-in-payload"):
            sanitize.forbid_generators(task, "shard worker task")

    def test_bit_generator_also_raises(self, monkeypatch):
        arm(monkeypatch)
        with pytest.raises(SanitizeError):
            sanitize.forbid_generators([make_rng(3).bit_generator], "task")

    def test_clean_payload_passes(self, monkeypatch):
        arm(monkeypatch)
        sanitize.forbid_generators(
            ("name", 0, 4, np.arange(3), {"k": [1, 2]}), "task"
        )
        assert sanitize.report_count() == 0


class TestCheckShardPlan:
    GOOD = dict(
        el_bounds=np.array([0, 4, 8]),
        starts=np.array([0, 2, 4, 6]),
        order=np.arange(8),
        n_elements=8,
    )

    def test_good_plan_passes(self, monkeypatch):
        arm(monkeypatch)
        sanitize.check_shard_plan(**self.GOOD)
        assert sanitize.report_count() == 0

    def test_bounds_must_tile(self, monkeypatch):
        arm(monkeypatch)
        bad = {**self.GOOD, "el_bounds": np.array([0, 4, 7])}
        with pytest.raises(SanitizeError, match="tile"):
            sanitize.check_shard_plan(**bad)

    def test_cut_inside_group_raises(self, monkeypatch):
        arm(monkeypatch)
        bad = {**self.GOOD, "el_bounds": np.array([0, 3, 8])}
        with pytest.raises(SanitizeError, match="straddling"):
            sanitize.check_shard_plan(**bad)

    def test_order_must_be_permutation(self, monkeypatch):
        arm(monkeypatch)
        order = np.arange(8)
        order[0] = 1  # duplicate slot
        bad = {**self.GOOD, "order": order}
        with pytest.raises(SanitizeError, match="permutation"):
            sanitize.check_shard_plan(**bad)


class TestMaybeGuard:
    def test_draw_inside_guard_raises(self, monkeypatch):
        arm(monkeypatch)
        rng = make_rng(5)
        with pytest.raises(SanitizeError, match="rng-in-parallel-phase"):
            with sanitize.maybe_guard(rng, "sharded consumption"):
                rng.integers(10)

    def test_rng_free_block_passes(self, monkeypatch):
        arm(monkeypatch)
        rng = make_rng(5)
        with sanitize.maybe_guard(rng, "sharded consumption"):
            sum(range(10))
        assert sanitize.report_count() == 0


class TestAsyncioWatch:
    def test_blocking_callback_is_reported(self, monkeypatch):
        arm(monkeypatch)

        async def blocky():
            loop = asyncio.get_running_loop()
            sanitize.install_asyncio_watch(loop, slow_callback_s=0.05)
            await asyncio.sleep(0)
            time.sleep(0.2)  # deliberately stall the loop
            await asyncio.sleep(0)

        asyncio.run(blocky())
        assert any(
            "blocked-event-loop" in msg for msg in sanitize.reports()
        )

    def test_off_means_no_debug_flip(self):
        async def probe():
            loop = asyncio.get_running_loop()
            sanitize.install_asyncio_watch(loop)
            return loop.get_debug()

        assert asyncio.run(probe()) is False


@pytest.mark.slow
class TestSanitizedTrials:
    def test_sharded_trial_bit_identical_under_sanitizer(self, monkeypatch):
        plain = result_fingerprint(run_trial(CONFIG))
        arm(monkeypatch)
        sanitized = result_fingerprint(run_trial(CONFIG))
        sharded = result_fingerprint(
            run_trial(CONFIG, shards=2, min_parallel_slots=1)
        )
        assert plain == sanitized == sharded
        assert sanitize.report_count() == 0
