"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale is None
        assert args.jobs == 1


class TestListCommand:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig13_14" in out


class TestExperimentsAlias:
    def test_list_alias(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "ext_failures" in out

    def test_run_alias_parses_like_run(self):
        args = build_parser().parse_args(
            ["experiments", "run", "ext_failures", "--scale", "quick"]
        )
        assert args.experiment == "ext_failures"
        assert args.scale == "quick"

    def test_run_alias_executes(self, capsys):
        assert main(["experiments", "run", "fig02_03"]) == 0
        assert "fig02_03" in capsys.readouterr().out


class TestRunCommand:
    def test_run_fig02_03_with_exports(self, capsys, tmp_path):
        csv = tmp_path / "out.csv"
        jsn = tmp_path / "out.json"
        code = main(
            [
                "run",
                "fig02_03",
                "--csv",
                str(csv),
                "--json",
                str(jsn),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig02_03" in out
        assert csv.exists()
        data = json.loads(jsn.read_text())
        assert data["experiment_id"] == "fig02_03"


class TestSimulateCommand:
    def test_small_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy",
                "random_injection",
                "--nodes",
                "50",
                "--tasks",
                "1000",
                "--trials",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean runtime factor" in out

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--strategy", "bogus"])

    def test_failure_flags(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "churn",
                "--nodes", "60",
                "--tasks", "1200",
                "--churn", "0.02",
                "--crash-fraction", "1.0",
                "--replication", "0",
                "--seed", "9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean completed-work factor" in out
        assert "trials with data loss" in out
        assert "avg tasks_lost" in out

    def test_rejects_bad_replication(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--replication", "lots"])


class TestFiguresCommand:
    def test_writes_svgs(self, capsys, tmp_path):
        code = main(["figures", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig2_hashed_ring.svg").exists()
        assert (tmp_path / "fig3_even_ring.svg").exists()


class TestProfileCommand:
    def test_profile_prints_metrics(self, capsys):
        code = main(
            [
                "profile",
                "--strategy",
                "random_injection",
                "--nodes",
                "60",
                "--tasks",
                "1200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization_auc" in out
        assert "wasted_node_ticks" in out


class TestTheoryCommand:
    def test_theory_table(self, capsys):
        code = main(["theory", "--nodes", "200", "--tasks", "20000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "median workload" in out
        assert "baseline runtime factor" in out
