"""Property tests: grouped multi-slot consumption vs a naive reference.

``TickEngine._consume_multi_slot`` distributes each owner's per-tick
rate across its identities via the grouped CSR kernel in
``repro.sim.kernels`` (segmented ``reduceat`` reductions over the
layout cached by ``RingState.consumption_groups``).  The reference
below does the same thing the obvious way — one owner at a time,
heaviest slot first — and the property demands *exact* agreement on
both the consumed total and the full post-tick counts vector under
random Sybil layouts.

Tie-break note: among equally heavy slots the engine takes the first in
ring order for the initial grab and drains the residual over the
remaining slots in *stable* descending-count order (ring position
breaks ties); the reference reproduces both rules so the comparison
isolates the vectorization, which is where a regression would hide.
Kernel-vs-historical-lexsort equivalence is pinned separately in
``tests/test_kernels.py``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine


def naive_consume(counts, owner_of_slot, rates, slots_by_owner):
    """Per-owner heaviest-first consumption on a copy of the counts."""
    counts = counts.copy()
    consumed = 0
    for owner, slots in slots_by_owner.items():
        want = min(int(rates[owner]), int(counts[slots].sum()))
        if want == 0:
            continue
        group = counts[slots]
        heavy = int(np.argmax(group))  # first-of-max: lowest ring position
        take = min(want, int(group[heavy]))
        counts[slots[heavy]] -= take
        consumed += take
        residual = want - take
        if residual > 0:
            group = counts[slots]
            for j in np.argsort(-group, kind="stable"):
                if residual == 0:
                    break
                grab = min(residual, int(group[j]))
                counts[slots[j]] -= grab
                residual -= grab
                consumed += grab
    return counts, consumed


def build_sybil_engine(params) -> TickEngine | None:
    config = SimulationConfig(
        strategy=params["strategy"],
        n_nodes=params["n_nodes"],
        n_tasks=params["n_tasks"],
        heterogeneous=params["heterogeneous"],
        work_measurement=(
            "strength" if params["heterogeneous"] else "one"
        ),
        max_sybils=params["max_sybils"],
        num_successors=3,
        seed=params["seed"],
    )
    engine = TickEngine(config)
    for _ in range(60):
        if engine.state.n_sybil_slots > 0 or engine.finished:
            break
        engine.step()
    if engine.state.n_sybil_slots == 0 or engine.finished:
        return None
    return engine


sybil_params = st.fixed_dictionaries(
    {
        "strategy": st.sampled_from(
            ["random_injection", "neighbor_injection", "invitation"]
        ),
        "n_nodes": st.integers(8, 50),
        "n_tasks": st.integers(200, 2500),
        "heterogeneous": st.booleans(),
        "max_sybils": st.integers(1, 6),
        "seed": st.integers(0, 2**31 - 1),
    }
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=sybil_params)
def test_multi_slot_consumption_matches_naive_reference(params):
    engine = build_sybil_engine(params)
    if engine is None:  # this layout produced no Sybils in time
        return
    # several consecutive ticks, re-deriving the reference each time so
    # residual-path states reached mid-drain are covered too
    for _ in range(4):
        if engine.state.n_sybil_slots == 0 or engine.remaining == 0:
            break
        state = engine.state
        n_slots = state.n_slots
        counts_before = state.counts[:n_slots].copy()
        owner_of_slot = state.owner[:n_slots].copy()
        rates = engine.owners.rate
        slots_by_owner = {
            int(o): np.asarray(state.slots_of_owner(int(o)))
            for o in np.unique(owner_of_slot)
        }
        expected_counts, expected_total = naive_consume(
            counts_before, owner_of_slot, rates, slots_by_owner
        )
        consumed = engine._consume_tick()
        assert consumed == expected_total
        np.testing.assert_array_equal(
            engine.state.counts[:n_slots], expected_counts
        )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**31 - 1))
def test_residual_path_matches_reference_under_strength(seed):
    """Heterogeneous strength-rate networks force the residual loop
    (demand above the heaviest identity); agreement must still be exact."""
    engine = build_sybil_engine(
        {
            "strategy": "random_injection",
            "n_nodes": 25,
            "n_tasks": 1200,
            "heterogeneous": True,
            "max_sybils": 5,
            "seed": seed,
        }
    )
    if engine is None:
        return
    state = engine.state
    n_slots = state.n_slots
    counts_before = state.counts[:n_slots].copy()
    owner_of_slot = state.owner[:n_slots].copy()
    slots_by_owner = {
        int(o): np.asarray(state.slots_of_owner(int(o)))
        for o in np.unique(owner_of_slot)
    }
    expected_counts, expected_total = naive_consume(
        counts_before, owner_of_slot, engine.owners.rate, slots_by_owner
    )
    consumed = engine._consume_tick()
    assert consumed == expected_total
    np.testing.assert_array_equal(
        engine.state.counts[:n_slots], expected_counts
    )
