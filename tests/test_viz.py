"""Tests for ASCII/SVG rendering and result export."""

import json

import numpy as np
import pytest

from repro.experiments.spec import ExperimentResult
from repro.metrics.histograms import histogram, shared_edges
from repro.viz.ascii import bar_chart, render_histogram, render_side_by_side
from repro.viz.export import result_to_json, write_csv, write_json
from repro.viz.ringplot import render_ring_svg, ring_svg


@pytest.fixture
def hist_pair(rng):
    a = rng.integers(0, 50, size=200)
    b = rng.integers(0, 80, size=200)
    edges = shared_edges([a, b], n_bins=10)
    return (
        histogram(a, edges, tick=5, label="left"),
        histogram(b, edges, tick=5, label="right"),
    )


class TestAscii:
    def test_bar_chart(self):
        out = bar_chart(["a", "bb"], [1, 2], width=10, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[2]
        assert lines[2].count("█") == 10

    def test_bar_chart_zero_values(self):
        out = bar_chart(["x"], [0])
        assert "x" in out

    def test_render_histogram_counts_everything(self, hist_pair):
        out = render_histogram(hist_pair[0])
        assert "tick 5" in out
        assert "n=200" in out

    def test_render_histogram_merges_rows(self, rng):
        loads = rng.integers(0, 1000, size=300)
        hist = histogram(loads, shared_edges([loads], n_bins=60))
        out = render_histogram(hist, max_rows=10)
        # rows merged: bins header + <= 11 rows
        assert len(out.splitlines()) <= 12

    def test_side_by_side(self, hist_pair):
        out = render_side_by_side(*hist_pair, width=12)
        assert "left" in out and "right" in out

    def test_side_by_side_requires_shared_edges(self, rng, hist_pair):
        other = histogram(
            rng.integers(0, 10, size=50), np.array([0.0, 5.0, 10.0])
        )
        with pytest.raises(ValueError):
            render_side_by_side(hist_pair[0], other)


class TestRingSvg:
    def test_svg_structure(self):
        nodes = np.array([[0.0, 1.0], [1.0, 0.0]])
        tasks = np.array([[0.0, -1.0]])
        svg = ring_svg(nodes, tasks, title="demo")
        assert svg.startswith("<svg")
        assert svg.count("<circle") == 3  # ring outline + 2 nodes
        assert svg.count("<path") == 1  # 1 task plus
        assert "demo" in svg

    def test_write_file(self, tmp_path):
        nodes = np.array([[0.0, 1.0]])
        tasks = np.zeros((0, 2))
        path = render_ring_svg(nodes, tasks, tmp_path / "ring.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestExport:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo",
            headers=["a", "b"],
            rows=[[1, 2.5], [3, np.float64(4.5)]],
            notes="note",
        )

    def test_write_csv(self, result, tmp_path):
        path = write_csv(result, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_write_json_roundtrip(self, result, tmp_path):
        path = write_json(result, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "demo"
        assert data["rows"][1][1] == 4.5

    def test_json_handles_numpy(self, result):
        result.rows.append([np.int64(7), np.array([1, 2])])
        data = result_to_json(result)
        assert data["rows"][2] == [7, [1, 2]]

    def test_render(self, result):
        out = result.render()
        assert "[demo] Demo" in out
        assert "note" in out

    def test_row_dicts(self, result):
        assert result.row_dicts()[0] == {"a": 1, "b": 2.5}
