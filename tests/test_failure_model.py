"""Failure-model tests: crash churn, replication, loss, and the
default-off guarantee.

The single most important property here is the regression pin: with the
failure model at its defaults, seeded runs must stay bit-identical to
results produced before the feature existed.  The fingerprints below
were computed from the pre-feature engine and must never change.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.chord.balance import ProtocolSimulation
from repro.chord.network import SimNetwork
from repro.chord.node import ChordNode
from repro.config import FailureModel, SimulationConfig
from repro.errors import (
    ConfigError,
    ProtocolError,
    RingEmptyError,
    SimulationError,
    TransientNetworkError,
)
from repro.hashspace.idspace import IdSpace
from repro.sim.cache import trial_key
from repro.sim.engine import TickEngine
from repro.sim.persistence import result_from_dict, result_to_dict
from repro.sim.trials import reset_run_stats, run_stats, run_trials


def _loads_sha16(result) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(result.final_loads).tobytes()
    ).hexdigest()[:16]


# ----------------------------------------------------------------------
# default-off bit-identity (pre-feature fingerprints; do not update)
# ----------------------------------------------------------------------
PRE_FEATURE_FINGERPRINTS = [
    (
        "baseline",
        SimulationConfig(n_nodes=120, n_tasks=6000, seed=7),
        306,
        "3dc463a76fc17060",
    ),
    (
        "churn",
        SimulationConfig(
            strategy="churn", n_nodes=120, n_tasks=6000,
            churn_rate=0.02, seed=11,
        ),
        149,
        "116d7399ce18e417",
    ),
    (
        "random_injection",
        SimulationConfig(
            strategy="random_injection", n_nodes=100, n_tasks=5000, seed=3
        ),
        84,
        "67042dfda5683aea",
    ),
    (
        "invitation_churn",
        SimulationConfig(
            strategy="invitation", n_nodes=100, n_tasks=5000,
            churn_rate=0.01, seed=5,
        ),
        140,
        "67042dfda5683aea",
    ),
    (
        "hetero_smart",
        SimulationConfig(
            strategy="smart_neighbor_injection", n_nodes=80, n_tasks=4000,
            heterogeneous=True, work_measurement="strength", seed=13,
        ),
        41,
        "9e132485d5107211",
    ),
]


class TestDefaultBitIdentity:
    @pytest.mark.parametrize(
        "label,config,ticks,sha16",
        PRE_FEATURE_FINGERPRINTS,
        ids=[f[0] for f in PRE_FEATURE_FINGERPRINTS],
    )
    def test_defaults_match_pre_feature_results(
        self, label, config, ticks, sha16
    ):
        result = TickEngine(config).run()
        assert result.runtime_ticks == ticks
        assert result.total_consumed == config.n_tasks
        assert result.completed
        assert result.termination_reason is None
        assert _loads_sha16(result) == sha16

    def test_default_runs_carry_no_failure_counters(self):
        result = TickEngine(
            SimulationConfig(n_nodes=50, n_tasks=1000, seed=1)
        ).run()
        assert "crashes" not in result.counters
        assert "tasks_lost" not in result.counters
        assert result.tasks_lost == 0


# ----------------------------------------------------------------------
# FailureModel config group
# ----------------------------------------------------------------------
class TestFailureModelConfig:
    def test_defaults_are_inert(self):
        fm = FailureModel()
        assert not fm.enabled
        assert fm.crash_fraction == 0.0
        assert fm.replication_factor is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_fraction": -0.1},
            {"crash_fraction": 1.5},
            {"replication_factor": -1},
            {"message_loss_rate": 2.0},
            {"crash_detection_ticks": -3},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FailureModel(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_fraction": 0.5},
            {"replication_factor": 0},
            {"message_loss_rate": 0.01},
            {"crash_detection_ticks": 2},
        ],
    )
    def test_any_knob_enables(self, kwargs):
        assert FailureModel(**kwargs).enabled

    def test_config_round_trip_through_dict(self):
        config = SimulationConfig(
            n_nodes=40,
            n_tasks=400,
            seed=2,
            failures=FailureModel(crash_fraction=0.3, replication_factor=2),
        )
        data = config.as_dict()
        assert data["failures"] == {
            "crash_fraction": 0.3,
            "replication_factor": 2,
            "message_loss_rate": 0.0,
            "crash_detection_ticks": 0,
        }
        data["snapshot_ticks"] = tuple(data["snapshot_ticks"])
        assert SimulationConfig(**data) == config

    def test_bad_failures_type_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(failures="none")

    def test_failures_participate_in_cache_key(self):
        base = SimulationConfig(n_nodes=40, n_tasks=400, seed=2)
        crashy = base.with_updates(
            failures=FailureModel(crash_fraction=0.5)
        )
        seq = np.random.SeedSequence(2)
        assert trial_key(base, seq) != trial_key(crashy, seq)


# ----------------------------------------------------------------------
# tick-layer crash semantics
# ----------------------------------------------------------------------
def _crash_config(replication, *, seed=9, crash_fraction=1.0):
    return SimulationConfig(
        strategy="churn",
        n_nodes=120,
        n_tasks=6000,
        churn_rate=0.02,
        seed=seed,
        failures=FailureModel(
            crash_fraction=crash_fraction, replication_factor=replication
        ),
    )


class TestCrashChurn:
    def test_unreplicated_crashes_lose_tasks(self):
        result = TickEngine(_crash_config(0)).run()
        assert result.tasks_lost > 0
        assert result.counters["crashes"] > 0
        assert not result.completed
        assert result.termination_reason == "data_loss"
        assert result.n_survivors > 0
        # conservation: every injected task was consumed or destroyed
        assert result.total_consumed + result.tasks_lost == result.total_injected

    def test_full_replication_recovers_everything(self):
        result = TickEngine(_crash_config(None)).run()
        assert result.tasks_lost == 0
        assert result.counters["crashes"] > 0
        assert result.counters["recovered_from_backup"] > 0
        assert result.completed
        assert result.termination_reason is None

    def test_more_replicas_lose_less(self):
        lost = {
            rep: TickEngine(_crash_config(rep)).run().tasks_lost
            for rep in (0, 2, None)
        }
        assert lost[0] > lost[2] >= lost[None] == 0

    def test_loss_monotone_in_crash_fraction(self):
        # one seed is too noisy near the top of the range (a cf=0.5 run
        # can outlive and out-crash a cf=1.0 run); the 5-seed mean
        # separates the levels cleanly
        fractions = [0.0, 0.25, 0.5, 1.0]
        lost = []
        for cf in fractions:
            per_seed = [
                TickEngine(
                    _crash_config(0, seed=seed, crash_fraction=cf)
                ).run().tasks_lost
                for seed in range(9, 14)
            ]
            lost.append(sum(per_seed) / len(per_seed))
        assert lost[0] == 0
        assert lost == sorted(lost)
        assert lost[-1] > lost[1] > 0

    def test_completed_work_factor_penalizes_loss(self):
        result = TickEngine(_crash_config(0)).run()
        assert 0.0 < result.completed_fraction < 1.0
        assert result.completed_work_factor > result.runtime_factor

    def test_total_churn_with_crashes_empties_ring(self):
        config = SimulationConfig(
            strategy="churn",
            n_nodes=10,
            n_tasks=1000,
            churn_rate=1.0,
            seed=4,
            failures=FailureModel(crash_fraction=1.0, replication_factor=0),
        )
        result = TickEngine(config).run()  # must not raise
        assert result.termination_reason == "ring_empty"
        assert not result.completed
        assert result.total_consumed + result.tasks_lost == result.total_injected

    def test_ring_empty_error_carries_context(self):
        err = RingEmptyError(
            "ring became empty at tick 7",
            tick=7,
            strategy="churn",
            churn_rate=1.0,
            crash_fraction=0.5,
        )
        assert isinstance(err, SimulationError)
        assert err.tick == 7
        assert err.strategy == "churn"
        assert err.churn_rate == 1.0
        assert err.crash_fraction == 0.5


# ----------------------------------------------------------------------
# trial aggregation and accounting
# ----------------------------------------------------------------------
class TestTrialAccounting:
    def test_data_loss_trials_are_counted(self):
        reset_run_stats()
        trials = run_trials(_crash_config(0), 3, cache=False)
        assert trials.n_data_loss == 3
        assert trials.n_truncated == 0
        assert trials.mean_completed_work_factor > trials.mean_factor
        stats = run_stats()
        assert stats.trials_data_loss == 3
        assert "with data loss" in stats.summary_line()

    def test_truncated_trials_are_counted(self):
        reset_run_stats()
        config = SimulationConfig(
            n_nodes=50, n_tasks=5000, seed=6, max_ticks=3
        )
        trials = run_trials(config, 2, cache=False)
        assert all(
            r.termination_reason == "max_ticks" for r in trials.results
        )
        assert trials.n_truncated == 2
        assert trials.n_data_loss == 0
        stats = run_stats()
        assert stats.trials_truncated == 2
        assert "TRUNCATED" in stats.summary_line()

    def test_cache_hits_repeat_outcome_accounting(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = _crash_config(0)
        run_trials(config, 2)
        reset_run_stats()
        run_trials(config, 2)  # all cached now
        stats = run_stats()
        assert stats.trials_cached == 2
        assert stats.trials_data_loss == 2


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
class TestPersistence:
    def test_v2_round_trip_keeps_failure_fields(self):
        result = TickEngine(_crash_config(0)).run()
        restored = result_from_dict(result_to_dict(result))
        assert restored.termination_reason == "data_loss"
        assert restored.total_injected == result.total_injected
        assert restored.n_survivors == result.n_survivors
        assert restored.tasks_lost == result.tasks_lost
        assert restored.config == result.config

    def test_v1_documents_still_load(self):
        result = TickEngine(
            SimulationConfig(n_nodes=40, n_tasks=800, seed=3)
        ).run()
        data = result_to_dict(result)
        data["format"] = "repro.simulation_result.v1"
        for legacy_missing in (
            "termination_reason", "total_injected", "n_survivors",
        ):
            del data[legacy_missing]
        restored = result_from_dict(data)
        assert restored.completed
        assert restored.termination_reason is None
        assert restored.total_injected is None
        assert restored.n_survivors is None

    def test_unknown_format_rejected(self):
        result = TickEngine(
            SimulationConfig(n_nodes=40, n_tasks=800, seed=3)
        ).run()
        data = result_to_dict(result)
        data["format"] = "repro.simulation_result.v999"
        with pytest.raises(ValueError):
            result_from_dict(data)


# ----------------------------------------------------------------------
# protocol-layer fault plane
# ----------------------------------------------------------------------
SPACE = IdSpace(16)


def _two_node_net() -> tuple[SimNetwork, ChordNode, ChordNode]:
    net = SimNetwork()
    a = ChordNode(10, SPACE, net)
    a.create()
    b = ChordNode(200, SPACE, net)
    b.join(10)
    return net, a, b


class TestNetworkFaultPlane:
    def test_drop_next_rpc_consumed_exactly_once(self):
        net, a, b = _two_node_net()
        net.drop_next_rpc_to(b.id)
        with pytest.raises(TransientNetworkError):
            net.rpc(b.id, "rpc_get_predecessor")
        # consumed: the very next call succeeds with no further setup
        net.rpc(b.id, "rpc_get_predecessor")
        assert net.drops == 1

    def test_drop_once_composes_with_probabilistic_drops(self):
        net, a, b = _two_node_net()
        net.configure_faults(loss_rate=1.0, seed=1)
        net.drop_next_rpc_to(b.id)
        # first failure consumes the one-shot hook...
        with pytest.raises(TransientNetworkError):
            net.rpc(b.id, "rpc_get_predecessor")
        assert b.id not in net._drop_once
        # ...and the probabilistic plane keeps dropping afterwards
        with pytest.raises(TransientNetworkError):
            net.rpc(b.id, "rpc_get_predecessor")
        assert net.drops == 2

    def test_rpc_retry_rides_out_transient_drops(self):
        net, a, b = _two_node_net()
        net.drop_next_rpc_to(b.id)
        net.rpc_retry(b.id, "rpc_get_predecessor")  # must not raise
        assert net.retries == 1
        assert net.drops == 1

    def test_rpc_retry_gives_up_after_budget(self):
        net, a, b = _two_node_net()
        net.configure_faults(loss_rate=1.0, seed=1, transient_retries=2)
        with pytest.raises(TransientNetworkError):
            net.rpc_retry(b.id, "rpc_get_predecessor")
        assert net.retries == 2
        assert net.drops == 3  # initial send + 2 resends

    def test_dead_endpoint_is_not_retried(self):
        net, a, b = _two_node_net()
        b.fail()
        before = net.retries
        with pytest.raises(ProtocolError) as excinfo:
            net.rpc_retry(b.id, "rpc_get_predecessor")
        assert not isinstance(excinfo.value, TransientNetworkError)
        assert excinfo.value.transport_failure
        assert net.retries == before

    def test_crash_detection_window(self):
        net, a, b = _two_node_net()
        net.configure_faults(crash_detection_ticks=3)
        net.crash(b.id)
        # the oracle lies for the detection window...
        assert net.is_alive(b.id)
        # ...while real RPCs already fail
        with pytest.raises(ProtocolError):
            net.rpc(b.id, "rpc_get_predecessor")
        for _ in range(3):
            net.tick()
        assert not net.is_alive(b.id)

    def test_seeded_losses_are_deterministic(self):
        outcomes = []
        for _ in range(2):
            net, a, b = _two_node_net()
            net.configure_faults(loss_rate=0.5, seed=42)
            trace = []
            for _ in range(20):
                try:
                    net.rpc(b.id, "rpc_get_predecessor")
                    trace.append(True)
                except TransientNetworkError:
                    trace.append(False)
            outcomes.append(trace)
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]


# ----------------------------------------------------------------------
# protocol-layer simulation under failures
# ----------------------------------------------------------------------
class TestProtocolFailures:
    def _summary(self, *, crash_fraction=0.0, replication=None,
                 loss_rate=0.0, seed=21):
        config = SimulationConfig(
            n_nodes=16,
            n_tasks=400,
            churn_rate=0.05 if crash_fraction > 0 else 0.0,
            seed=seed,
            num_successors=4,
            failures=FailureModel(
                crash_fraction=crash_fraction,
                replication_factor=replication,
                message_loss_rate=loss_rate,
                crash_detection_ticks=2 if crash_fraction > 0 else 0,
            ),
        )
        return ProtocolSimulation(config).run(max_ticks=600)

    def test_lossy_network_still_completes(self):
        summary = self._summary(loss_rate=0.05)
        assert summary["completed"]
        assert summary["termination_reason"] is None
        assert summary["network_drops"] > 0
        assert summary["network_retries"] > 0

    def test_crashes_without_replication_lose_work(self):
        summary = self._summary(crash_fraction=1.0, replication=0)
        assert summary["tasks_lost"] > 0
        assert summary["termination_reason"] in ("data_loss", "max_ticks")
        assert summary["crashes"] > 0
        assert (
            summary["total_consumed"] + summary["tasks_lost"]
            <= self._n_tasks()
        )

    def test_exactly_once_never_exceeds_submitted(self):
        for replication in (0, 2, None):
            summary = self._summary(
                crash_fraction=0.5, replication=replication
            )
            assert summary["total_consumed"] <= self._n_tasks()

    @staticmethod
    def _n_tasks() -> int:
        return 400


# ----------------------------------------------------------------------
# the ext_failures experiment
# ----------------------------------------------------------------------
class TestExtFailuresExperiment:
    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "ext_failures" in EXPERIMENTS

    def test_quick_grid_shape_and_monotone_degradation(self, monkeypatch):
        from repro.experiments import ext_failures

        monkeypatch.setattr(ext_failures, "STRATEGIES", ("churn",))
        monkeypatch.setattr(
            ext_failures, "CRASH_FRACTIONS", (0.0, 0.5, 1.0)
        )
        monkeypatch.setattr(
            ext_failures, "REPLICATION_FACTORS", (None, 0)
        )
        result = ext_failures.run(scale="quick", seed=0)
        assert result.experiment_id == "ext_failures"
        assert len(result.rows) == 2
        assert len(result.headers) == 2 + 2 * 3
        lost_none = result.data["lost_pct"][("churn", "full")]
        lost_zero = result.data["lost_pct"][("churn", "0")]
        # full replication: nothing is ever lost
        assert all(v == 0.0 for v in lost_none.values())
        # no replication: loss grows monotonically with the crash rate
        curve = [lost_zero[cf] for cf in (0.0, 0.5, 1.0)]
        assert curve[0] == 0.0
        assert curve == sorted(curve)
        assert curve[-1] > 0.0
        # and the completed-work factor degrades with it
        cwf = result.data["measured"][("churn", "0")]
        assert cwf[1.0] > cwf[0.0]
