"""Property-based tests of the tick engine across the config space."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine, run_simulation

configs = st.fixed_dictionaries(
    {
        "strategy": st.sampled_from(
            [
                "none",
                "churn",
                "random_injection",
                "neighbor_injection",
                "smart_neighbor_injection",
                "invitation",
            ]
        ),
        "n_nodes": st.integers(5, 60),
        "n_tasks": st.integers(0, 1500),
        "churn_rate": st.sampled_from([0.0, 0.005, 0.02]),
        "heterogeneous": st.booleans(),
        "work_measurement": st.sampled_from(["one", "strength"]),
        "max_sybils": st.integers(1, 6),
        "sybil_threshold": st.integers(0, 20),
        "num_successors": st.integers(1, 8),
        "seed": st.integers(0, 2**31 - 1),
    }
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=configs)
def test_every_config_completes_and_conserves(params):
    """Whatever the configuration, the job finishes, every task is consumed
    exactly once, and the Sybil caps are never violated."""
    if params["strategy"] == "churn" and params["churn_rate"] == 0.0:
        params["churn_rate"] = 0.005  # avoid the deliberate warning
    config = SimulationConfig(max_ticks=60_000, **params)
    engine = TickEngine(config)
    result = engine.run()
    assert result.completed
    assert result.total_consumed == config.n_tasks
    assert engine.state.total_remaining() == 0
    assert (engine.owners.n_sybils <= engine.owners.sybil_cap).all()
    engine.state.verify_invariants()
    engine.owners.validate()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    strategy=st.sampled_from(["none", "random_injection", "invitation"]),
)
def test_determinism_property(seed, strategy):
    config = SimulationConfig(
        strategy=strategy, n_nodes=40, n_tasks=800, seed=seed
    )
    a = run_simulation(config)
    b = run_simulation(config)
    assert a.runtime_ticks == b.runtime_ticks
    assert a.counters == b.counters
    assert np.array_equal(a.final_loads, b.final_loads)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_snapshot_totals_decrease(seed):
    """Workload snapshots are consistent: totals decrease tick over tick by
    exactly the consumed amount (no strategy; nothing enters or leaves)."""
    config = SimulationConfig(
        n_nodes=30,
        n_tasks=900,
        seed=seed,
        snapshot_ticks=(0, 3, 6),
    )
    engine = TickEngine(config)
    engine.run()
    loads = engine.snapshot_loads()
    totals = [int(loads[t].sum()) for t in (0, 3, 6)]
    assert totals[0] == 900
    assert totals[0] >= totals[1] >= totals[2]
