"""Tests of individual ChordNode protocol behaviour."""

import pytest

from repro.chord.network import SimNetwork
from repro.chord.node import ChordNode
from repro.chord.ring import ChordRing
from repro.errors import ProtocolError
from repro.hashspace.idspace import IdSpace

SPACE = IdSpace(16)


def two_node_ring():
    net = SimNetwork()
    a = ChordNode(100, SPACE, net)
    a.create()
    b = ChordNode(40_000, SPACE, net)
    b.join(100)
    for _ in range(3):
        a.maintenance_cycle()
        b.maintenance_cycle()
    return net, a, b


class TestCreateAndJoin:
    def test_single_node_ring(self):
        net = SimNetwork()
        node = ChordNode(5, SPACE, net)
        node.create()
        assert node.successor == 5
        assert node.find_successor(12345) == (5, 0)

    def test_two_node_pointers(self):
        _, a, b = two_node_ring()
        assert a.successor == b.id
        assert b.successor == a.id
        assert a.predecessor == b.id
        assert b.predecessor == a.id

    def test_join_transfers_keys(self):
        net = SimNetwork()
        a = ChordNode(100, SPACE, net)
        a.create()
        # all keys initially belong to the only node
        for key in (50, 200, 30_000):
            a.put(key, f"v{key}")
        b = ChordNode(40_000, SPACE, net)
        b.join(100)
        for _ in range(2):
            a.maintenance_cycle()
            b.maintenance_cycle()
        # b is responsible for (100, 40000]: keys 200 and 30000
        assert b.store.primary_keys == {200, 30_000}
        assert a.store.primary_keys == {50}


class TestResponsibility:
    def test_find_successor_matches_oracle(self):
        ring = ChordRing.create(25, space=SPACE, seed=1)
        node = ring.network.node(ring.network.alive_ids()[0])
        for key in range(0, SPACE.size, 1500):
            holder, _ = node.find_successor(key)
            assert holder == ring.ground_truth_holder(key)

    def test_hop_count_logarithmic(self):
        ring = ChordRing.create(64, space=SPACE, seed=2)
        hops = ring.lookup_hops_sample(200)
        # O(log n): 64 nodes -> log2 = 6; allow slack
        assert hops.mean() < 6
        assert hops.max() <= 12


class TestDataPlane:
    def test_put_get_roundtrip(self):
        ring = ChordRing.create(10, space=SPACE, seed=3)
        holder, _ = ring.put(1234, "hello")
        value, _ = ring.get(1234)
        assert value == "hello"
        assert holder == ring.ground_truth_holder(1234)

    def test_get_missing_raises(self):
        _, a, b = two_node_ring()
        with pytest.raises(ProtocolError):
            a.get(777)


class TestFailureDetection:
    def test_check_predecessor_clears_dead(self):
        _, a, b = two_node_ring()
        b.fail()
        a.check_predecessor()
        assert a.predecessor is None

    def test_stabilize_skips_dead_successor(self):
        ring = ChordRing.create(12, space=SPACE, seed=4)
        ids = ring.network.alive_ids()
        victim = ids[3]
        ring.fail_node(victim)
        for _ in range(4):
            ring.maintenance_round()
        ring.verify()
        for ident in ring.network.alive_ids():
            assert ring.network.node(ident).successor != victim

    def test_lookup_routes_around_dead_finger(self):
        ring = ChordRing.create(20, space=SPACE, seed=5)
        node = ring.network.node(ring.network.alive_ids()[0])
        victim = node.fingers.known_ids()
        victim = next(iter(victim - {node.id}))
        ring.fail_node(victim)
        # no maintenance: fingers are stale, lookup must still succeed
        for key in range(0, SPACE.size, 4000):
            holder, _ = node.find_successor(key)
            assert ring.network.is_alive(holder)


class TestGracefulLeave:
    def test_leave_hands_over_data(self):
        ring = ChordRing.create(10, space=SPACE, seed=6)
        keys = list(range(0, SPACE.size, 700))
        for key in keys:
            ring.put(key, key)
        victim = ring.network.alive_ids()[4]
        ring.leave_node(victim)
        for _ in range(3):
            ring.maintenance_round()
        ring.verify()
        for key in keys:
            value, _ = ring.get(key)
            assert value == key

    def test_leave_repairs_predecessor_successor_list(self):
        _, a, b = two_node_ring()
        net = a.network
        c = ChordNode(20_000, SPACE, net)
        c.join(a.id)
        for node in (a, b, c):
            node.maintenance_cycle()
        # c sits between a (100) and b (40000); when c leaves, a's
        # successor list must immediately point at b
        c.leave()
        assert a.successor == b.id


class TestPredecessorList:
    def test_predecessor_list_populated(self):
        ring = ChordRing.create(15, space=SPACE, seed=7)
        for _ in range(3):
            ring.maintenance_round()
        ids = ring.network.alive_ids()
        node = ring.network.node(ids[5])
        assert len(node.predecessor_list) >= 2
        assert node.predecessor_list[0] == node.predecessor
        # entries walk counter-clockwise
        sorted_ids = ids
        pos = sorted_ids.index(node.id)
        expected_first = sorted_ids[pos - 1]
        assert node.predecessor == expected_first
