"""Tests of the Random Injection strategy (§IV-B rules)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine, run_simulation


def engine_for(**overrides) -> TickEngine:
    overrides.setdefault("n_tasks", 5000)
    config = SimulationConfig(
        strategy="random_injection", n_nodes=100, seed=13,
        **overrides,
    )
    return TickEngine(config)


class TestSybilBudget:
    def test_caps_respected_throughout(self):
        engine = engine_for(max_sybils=3)
        while not engine.finished:
            engine.step()
            assert (engine.owners.n_sybils <= 3).all()

    def test_hetero_cap_is_strength(self):
        engine = engine_for(heterogeneous=True, max_sybils=5)
        while not engine.finished:
            engine.step()
            assert (
                engine.owners.n_sybils <= engine.owners.sybil_cap
            ).all()
            assert (
                engine.owners.sybil_cap == engine.owners.strength
            ).all()

    def test_at_most_one_new_sybil_per_owner_per_round(self):
        engine = engine_for()
        before = engine.owners.n_sybils.copy()
        # advance to the first decision round
        for _ in range(engine.config.decision_interval):
            engine.step()
        created = engine.owners.n_sybils - before
        assert created.max() <= 1


class TestRetirementRule:
    def test_idle_nodes_relocate_their_sybils(self):
        """A node with Sybils but no work pulls them and probes a fresh
        random address, so retired + created both grow over the run."""
        result = run_simulation(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=100,
                n_tasks=5000,
                seed=13,
            )
        )
        assert result.counters["sybils_created"] > 0
        assert result.counters["sybils_retired"] > 0
        # every created sybil is eventually retired or survives to the end
        assert (
            result.counters["sybils_retired"]
            <= result.counters["sybils_created"]
        )

    def test_no_sybils_before_first_round(self):
        engine = engine_for()
        for _ in range(engine.config.decision_interval - 1):
            engine.step()
        assert engine.state.n_sybil_slots == 0


class TestEffectiveness:
    def test_beats_baseline(self, small_config):
        baseline = run_simulation(small_config)
        injected = run_simulation(
            small_config.with_updates(strategy="random_injection")
        )
        assert injected.runtime_factor < baseline.runtime_factor

    def test_approaches_ideal_with_many_tasks(self):
        """More tasks per node -> closer to factor 1 (paper §VI-B)."""
        few = run_simulation(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=100,
                n_tasks=10_000,
                seed=3,
            )
        )
        many = run_simulation(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=100,
                n_tasks=100_000,
                seed=3,
            )
        )
        assert many.runtime_factor < few.runtime_factor
        assert many.runtime_factor < 1.6

    def test_acquired_tasks_counted(self):
        result = run_simulation(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=100,
                n_tasks=20_000,
                seed=3,
            )
        )
        assert result.counters["tasks_acquired"] > 0
        assert result.total_consumed == 20_000


class TestThreshold:
    def test_threshold_allows_nodes_with_some_work_to_act(self):
        """With a positive sybilThreshold, nodes create Sybils before they
        are fully idle, so Sybils appear earlier in the run."""
        low = engine_for(sybil_threshold=0)
        high = engine_for(sybil_threshold=25)
        for _ in range(low.config.decision_interval):
            low.step()
            high.step()
        assert high.state.n_sybil_slots >= low.state.n_sybil_slots

    def test_conservation_with_threshold(self):
        result = run_simulation(
            SimulationConfig(
                strategy="random_injection",
                n_nodes=100,
                n_tasks=5000,
                sybil_threshold=10,
                seed=5,
            )
        )
        assert result.completed
        assert result.total_consumed == 5000


class TestInvariantsDuringRun:
    def test_state_valid_every_tick(self):
        engine = engine_for(n_tasks=2000)
        while not engine.finished:
            engine.step()
            engine.state.verify_invariants()
            engine.owners.validate()

    def test_sybil_slot_counter_matches(self):
        engine = engine_for()
        while not engine.finished:
            engine.step()
        assert engine.state.n_sybil_slots == int(
            engine.owners.n_sybils.sum()
        )
