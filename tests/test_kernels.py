"""Property tests for the consumption kernels (repro.sim.kernels).

The vectorized grouped kernel (and, when installed, the numba-jitted
one) must agree *bit for bit* with ``consume_grouped_reference`` — the
historical per-tick lexsort implementation — on the post-tick counts
vector and the consumed total, the same slab-vs-naive equivalence
pattern the ring rewrite used.  A partition-invariance property checks
the math the sharded engine relies on: running the kernel on contiguous
CSR chunks is indistinguishable from one sequential pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim import kernels
from repro.sim.kernels import (
    HAVE_NUMBA,
    available_backends,
    consume_fast,
    consume_grouped,
    consume_grouped_reference,
    fast_kernel,
    grouped_kernel,
    resolve_backend,
)

I64 = np.int64


def build_csr(owner: np.ndarray):
    """The engine-side CSR derivation (mirrors consumption_groups)."""
    gorder = np.argsort(owner, kind="stable").astype(I64)
    owners_sorted = owner[gorder]
    first = np.ones(gorder.size, dtype=bool)
    if gorder.size:
        first[1:] = owners_sorted[1:] != owners_sorted[:-1]
    starts = np.flatnonzero(first).astype(I64)
    sizes = np.diff(np.append(starts, gorder.size)).astype(I64)
    return gorder, starts, sizes, owners_sorted[starts]


def random_workload(rng, n_owners, max_group, max_count, max_rate):
    """Random slot->owner layout with interleaved groups (like a ring)."""
    sizes = rng.integers(1, max_group + 1, size=n_owners)
    owner = np.repeat(np.arange(n_owners, dtype=I64), sizes)
    rng.shuffle(owner)  # ring positions interleave owners
    counts = rng.integers(0, max_count + 1, size=owner.size, dtype=I64)
    rates = rng.integers(0, max_rate + 1, size=n_owners, dtype=I64)
    return counts, owner, rates


workload_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**31 - 1),
        "n_owners": st.integers(1, 60),
        "max_group": st.integers(1, 7),
        "max_count": st.integers(0, 40),
        # rates beyond any single slot's count force the residual path
        "max_rate": st.integers(0, 120),
    }
)


@settings(max_examples=80, deadline=None)
@given(params=workload_params)
def test_grouped_numpy_matches_reference(params):
    rng = np.random.default_rng(params["seed"])
    counts, owner, rates = random_workload(
        rng,
        params["n_owners"],
        params["max_group"],
        params["max_count"],
        params["max_rate"],
    )
    expected = counts.copy()
    expected_total = consume_grouped_reference(expected, owner, rates)

    got = counts.copy()
    gorder, starts, sizes, gowner = build_csr(owner)
    got_total = consume_grouped(got, rates, gorder, starts, sizes, gowner)

    assert got_total == expected_total
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=40, deadline=None)
@given(params=workload_params, n_chunks=st.integers(1, 6))
def test_grouped_kernel_is_partition_invariant(params, n_chunks):
    """Consuming CSR chunks independently == one sequential pass.

    This is the exact property the sharded engine's correctness rests
    on (shard workers each run the kernel on one contiguous chunk)."""
    rng = np.random.default_rng(params["seed"])
    counts, owner, rates = random_workload(
        rng,
        params["n_owners"],
        params["max_group"],
        params["max_count"],
        params["max_rate"],
    )
    gorder, starts, sizes, gowner = build_csr(owner)

    expected = counts.copy()
    expected_total = consume_grouped(
        expected, rates, gorder, starts, sizes, gowner
    )

    got = counts.copy()
    got_total = 0
    n_groups = starts.size
    bounds = np.linspace(0, n_groups, n_chunks + 1).astype(int)
    ends = np.append(starts, gorder.size)
    for k in range(n_chunks):
        g_lo, g_hi = int(bounds[k]), int(bounds[k + 1])
        if g_hi <= g_lo:
            continue
        el_lo, el_hi = int(starts[g_lo]), int(ends[g_hi])
        got_total += consume_grouped(
            got,
            rates,
            gorder[el_lo:el_hi],
            starts[g_lo:g_hi] - el_lo,
            sizes[g_lo:g_hi],
            gowner[g_lo:g_hi],
        )

    assert got_total == expected_total
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 200),
    max_rate=st.integers(0, 30),
)
def test_fast_kernel_matches_reference_on_singletons(seed, n, max_rate):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 50, size=n, dtype=I64)
    owner = rng.permutation(n).astype(I64)  # one slot per owner
    rates = rng.integers(0, max_rate + 1, size=n, dtype=I64)

    expected = counts.copy()
    expected_total = consume_grouped_reference(expected, owner, rates)

    got = counts.copy()
    got_total = consume_fast(got, owner, rates)

    assert got_total == expected_total
    np.testing.assert_array_equal(got, expected)


def test_grouped_handles_empty_ring():
    empty = np.empty(0, dtype=I64)
    assert consume_grouped(empty, empty, empty, empty, empty, empty) == 0


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
@settings(max_examples=30, deadline=None)
@given(params=workload_params)
def test_grouped_numba_matches_numpy(params):
    rng = np.random.default_rng(params["seed"])
    counts, owner, rates = random_workload(
        rng,
        params["n_owners"],
        params["max_group"],
        params["max_count"],
        params["max_rate"],
    )
    gorder, starts, sizes, gowner = build_csr(owner)

    ref = counts.copy()
    ref_total = consume_grouped(ref, rates, gorder, starts, sizes, gowner)

    jit = counts.copy()
    jit_total = grouped_kernel("numba")(
        jit, rates, gorder, starts, sizes, gowner
    )
    assert jit_total == ref_total
    np.testing.assert_array_equal(jit, ref)

    fast_ref = counts.copy()
    fast_ref_total = consume_fast(fast_ref, owner, rates)
    fast_jit = counts.copy()
    fast_jit_total = fast_kernel("numba")(fast_jit, owner, rates)
    assert fast_jit_total == fast_ref_total
    np.testing.assert_array_equal(fast_jit, fast_ref)


class TestBackendRegistry:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "numpy"
        assert resolve_backend("numpy") == "numpy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "numpy")
        assert resolve_backend(None) == "numpy"
        monkeypatch.setenv(kernels.BACKEND_ENV, "not-a-backend")
        with pytest.raises(ConfigError, match="unknown simulation backend"):
            resolve_backend(None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown simulation backend"):
            resolve_backend("fortran")

    def test_numba_without_numba_is_explicit(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed: request is satisfiable")
        with pytest.raises(ConfigError, match="numba"):
            resolve_backend("numba")

    def test_available_backends(self):
        avail = available_backends()
        assert "numpy" in avail
        assert ("numba" in avail) == HAVE_NUMBA

    def test_kernel_lookup_defaults_to_numpy(self):
        assert fast_kernel("numpy") is consume_fast
        assert grouped_kernel("numpy") is consume_grouped
