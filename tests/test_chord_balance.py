"""Tests of the protocol-level balancer (strategies on real Chord)."""

import pytest

from repro.chord.balance import ProtocolSimulation
from repro.config import SimulationConfig
from repro.errors import SimulationError


def make_sim(strategy="none", **overrides) -> ProtocolSimulation:
    overrides.setdefault("n_nodes", 30)
    overrides.setdefault("n_tasks", 600)
    overrides.setdefault("bits", 32)
    overrides.setdefault("seed", 3)
    config = SimulationConfig(strategy=strategy, **overrides)
    return ProtocolSimulation(config)


class TestSetup:
    def test_builds_consistent_ring(self):
        sim = make_sim()
        sim.ring.verify()
        assert sim.remaining() == 600
        assert len(sim.hosts) == 30

    def test_churn_supported(self):
        sim = make_sim(strategy="churn", churn_rate=0.02)
        out = sim.run()
        assert out["completed"]
        assert out["churn_joins"] > 0 and out["churn_leaves"] > 0

    def test_churn_exactly_once(self):
        consumed = []
        sim = make_sim(strategy="churn", churn_rate=0.02, n_tasks=700)
        sim.on_consume = lambda k, v: consumed.append(k)
        sim.run()
        assert len(consumed) == 700
        assert len(set(consumed)) == 700

    def test_churn_network_size_bounded(self):
        sim = make_sim(strategy="churn", churn_rate=0.05)
        for _ in range(60):
            if sim.remaining() == 0:
                break
            sim.step()
            in_net = sum(1 for h in sim.hosts if h.in_network)
            assert 2 <= in_net <= 60  # pool + network = 2x initial

    def test_items_length_validated(self):
        config = SimulationConfig(
            strategy="none", n_nodes=10, n_tasks=5, bits=32, seed=1
        )
        with pytest.raises(SimulationError):
            ProtocolSimulation(config, items={1: "x"})


class TestBaseline:
    def test_runs_to_completion(self):
        sim = make_sim()
        out = sim.run()
        assert out["completed"]
        assert sim.remaining() == 0
        assert out["runtime_factor"] >= 1.0

    def test_runtime_counts_every_task_once(self):
        consumed = []
        sim = make_sim()
        sim.on_consume = lambda k, v: consumed.append(k)
        sim.run()
        assert len(consumed) == 600
        assert len(set(consumed)) == 600  # exactly-once under no churn


class TestStrategiesOnProtocol:
    @pytest.mark.parametrize(
        "strategy",
        [
            "random_injection",
            "neighbor_injection",
            "smart_neighbor_injection",
            "invitation",
        ],
    )
    def test_strategy_completes_and_helps(self, strategy):
        baseline = make_sim().run()
        balanced = make_sim(strategy=strategy).run()
        assert balanced["completed"]
        assert balanced["runtime_factor"] <= baseline["runtime_factor"]

    def test_random_injection_creates_sybils(self):
        out = make_sim(strategy="random_injection").run()
        assert out["sybils_created"] > 0

    def test_exactly_once_execution_with_sybils(self):
        """The Sybil life-cycle (join, acquire, retire) must not duplicate
        or lose any task."""
        consumed = []
        sim = make_sim(strategy="random_injection", n_tasks=800)
        sim.on_consume = lambda k, v: consumed.append(k)
        sim.run()
        assert len(consumed) == 800
        assert len(set(consumed)) == 800

    def test_ring_consistent_after_balancing(self):
        sim = make_sim(strategy="random_injection")
        sim.run()
        for _ in range(3):
            sim.ring.maintenance_round()
        sim.ring.verify()


class TestAgreementWithTickSimulator:
    def test_factors_agree_across_layers(self):
        """The fast simulator and the protocol stack implement the same
        semantics; their runtime factors must agree within trial noise."""
        from repro.sim.engine import run_simulation

        config = SimulationConfig(
            strategy="none", n_nodes=40, n_tasks=2000, bits=32, seed=5
        )
        protocol = ProtocolSimulation(config).run()
        tick = run_simulation(config)
        # identical model, different id draws: expect the same ballpark
        assert protocol["runtime_factor"] == pytest.approx(
            tick.runtime_factor, rel=0.5
        )
