"""Tests for the §VII future-work extension strategies."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.extensions import (
    Relocation,
    StrengthAwareInvitation,
    StrengthProportionalInjection,
)
from repro.core.registry import make_strategy
from repro.sim.engine import TickEngine, run_simulation


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("strength_invitation", StrengthAwareInvitation),
            ("proportional_injection", StrengthProportionalInjection),
            ("relocation", Relocation),
        ],
    )
    def test_registered(self, name, cls):
        assert isinstance(make_strategy(name), cls)


class TestStrengthAwareInvitation:
    def test_helper_prefers_strength(self):
        config = SimulationConfig(
            strategy="strength_invitation",
            n_nodes=100,
            n_tasks=10_000,
            heterogeneous=True,
            seed=1,
        )
        engine = TickEngine(config)
        view = engine.view
        view.begin_round()
        strategy = engine.strategy
        loads = view.owner_loads()
        inviter = int(np.argmax(loads))
        target = view.heaviest_slot(inviter)
        preds = view.predecessor_slots(target, 5)
        helper = strategy._pick_helper(view, inviter, preds, 0, set())
        if helper is not None:
            # no *stronger* qualifying predecessor was skipped
            for slot in preds.tolist():
                other = view.slot_owner(int(slot))
                if other in (inviter, helper):
                    continue
                if (
                    view.live_owner_load(other) == 0
                    and view.can_add_sybil(other)
                ):
                    assert view.owner_strength(other) <= view.owner_strength(
                        helper
                    )

    def test_completes_and_conserves(self):
        result = run_simulation(
            SimulationConfig(
                strategy="strength_invitation",
                n_nodes=100,
                n_tasks=5000,
                heterogeneous=True,
                work_measurement="strength",
                seed=2,
            )
        )
        assert result.completed
        assert result.total_consumed == 5000


class TestProportionalInjection:
    def test_homogeneous_matches_random_injection_rate(self):
        """Homogeneous networks volunteer at full probability."""
        base = SimulationConfig(n_nodes=100, n_tasks=5000, seed=3)
        random_inj = run_simulation(
            base.with_updates(strategy="random_injection")
        )
        proportional = run_simulation(
            base.with_updates(strategy="proportional_injection")
        )
        # identical rule (p=1), identical seed -> identical runtime
        assert (
            proportional.runtime_ticks == random_inj.runtime_ticks
        )

    def test_weak_nodes_volunteer_less(self):
        """First-round volunteers skew strong (weak nodes often sit out).

        The skew is per-round: over many rounds weak nodes accumulate
        volunteers too, so we look at the very first decision round with
        a small job (most nodes idle and eligible).
        """
        config = SimulationConfig(
            strategy="proportional_injection",
            n_nodes=500,
            n_tasks=2_000,
            heterogeneous=True,
            seed=4,
        )
        engine = TickEngine(config)
        # just before the first decision round: who is eligible?
        for _ in range(engine.config.decision_interval - 1):
            engine.step()
        eligible = engine.network_loads() == 0
        strength = engine.owners.strength
        engine.step()  # the round fires
        creators = engine.owners.n_sybils > 0
        assert creators.sum() > 30
        mean_eligible = float(strength[eligible].mean())
        mean_creators = float(strength[creators].mean())
        assert mean_creators > mean_eligible + 0.3

    def test_beats_baseline(self):
        base = SimulationConfig(
            n_nodes=100,
            n_tasks=10_000,
            heterogeneous=True,
            work_measurement="strength",
            seed=5,
        )
        plain = run_simulation(base)
        prop = run_simulation(
            base.with_updates(strategy="proportional_injection")
        )
        assert prop.runtime_factor < plain.runtime_factor


class TestRelocation:
    def test_relocations_happen_and_help(self):
        base = SimulationConfig(n_nodes=150, n_tasks=15_000, seed=6)
        plain = run_simulation(base)
        relocated = run_simulation(base.with_updates(strategy="relocation"))
        assert relocated.counters["relocations"] > 0
        assert relocated.counters.get("sybils_created", 0) == 0
        assert relocated.runtime_factor < plain.runtime_factor

    def test_network_size_constant(self):
        """Relocation never changes the identity count."""
        config = SimulationConfig(
            strategy="relocation", n_nodes=80, n_tasks=4000, seed=7
        )
        engine = TickEngine(config)
        while not engine.finished:
            engine.step()
            assert engine.state.n_slots == 80
            assert engine.state.is_main.all()

    def test_conserves_tasks(self):
        result = run_simulation(
            SimulationConfig(
                strategy="relocation", n_nodes=80, n_tasks=4000, seed=8
            )
        )
        assert result.completed
        assert result.total_consumed == 4000

    def test_invariants_every_tick(self):
        config = SimulationConfig(
            strategy="relocation", n_nodes=60, n_tasks=3000, seed=9
        )
        engine = TickEngine(config)
        while not engine.finished:
            engine.step()
            engine.state.verify_invariants()
            engine.owners.validate()

    def test_relocate_main_view_action(self):
        config = SimulationConfig(
            strategy="relocation", n_nodes=50, n_tasks=5000, seed=10
        )
        engine = TickEngine(config)
        view = engine.view
        view.begin_round()
        loads = view.owner_loads()
        idle = int(np.argmin(loads))
        heavy = int(np.argmax(loads))
        target = view.heaviest_slot(heavy)
        old_id = int(engine.owners.main_id[idle])
        acquired = view.relocate_main(idle, target)
        assert acquired is not None and acquired > 0
        assert int(engine.owners.main_id[idle]) != old_id
        assert view.stats.relocations == 1
        engine.state.verify_invariants()
