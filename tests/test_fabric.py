"""Tests for the trial fabric: queue, broker, protocol, remote workers.

The fabric's contract is exact: whatever mixture of local pool slots and
remote workers drains the queue, the assembled TrialSets are
bit-identical to a serial run.  These tests exercise the dispatch state
machine directly (lease/settle/expiry), the wire codecs, an in-thread
remote worker against a live broker socket, and the three dispatch-loop
races fixed in this module's lineage.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    ProtocolError,
    TransientNetworkError,
    TrialError,
)
from repro.fabric import (
    Broker,
    GridPoint,
    STATUS_FORMAT,
    TrialQueue,
    run_worker,
)
from repro.fabric.protocol import (
    OP_LEASE,
    OP_SETTLE,
    OP_STATUS,
    config_from_wire,
    config_to_wire,
    result_from_wire,
    result_to_wire,
    unit_from_wire,
    unit_to_wire,
)
from repro.fabric.queue import DONE, QUEUED, RUNNING
from repro.net.transport import RetryPolicy, request
from repro.sim.cache import TrialCache
from repro.sim.trials import (
    record_retries,
    record_trial_cached,
    record_trial_run,
    record_trials_failed,
    reset_run_stats,
    run_stats,
    run_trial,
    run_trials,
    sweep,
    sweep_grid,
)

WORKER_POLICY = RetryPolicy(timeout=2.0, retries=1, backoff=0.01)


def _grid(config, n_trials=4):
    return [GridPoint(config=config, n_trials=n_trials)]


def _slow_trial(config, seed_seq):
    time.sleep(0.1)
    return run_trial(config, seed_seq)


# ----------------------------------------------------------------------
# queue
# ----------------------------------------------------------------------
class TestTrialQueue:
    def test_flattening_reuses_serial_seed_derivation(self, tiny_config):
        queue = TrialQueue(_grid(tiny_config, 3))
        children = np.random.SeedSequence(tiny_config.seed).spawn(3)
        for unit, child in zip(queue.units, children):
            assert unit.entropy == child.entropy
            assert unit.spawn_key == tuple(int(k) for k in child.spawn_key)
            rebuilt = unit.seed_seq()
            assert rebuilt.generate_state(4).tolist() == (
                child.generate_state(4).tolist()
            )

    def test_uids_are_point_major(self, tiny_config):
        grid = [
            GridPoint(config=tiny_config, n_trials=2),
            GridPoint(config=tiny_config.with_updates(seed=9), n_trials=3),
        ]
        queue = TrialQueue(grid)
        assert [(u.point, u.trial) for u in queue.units] == [
            (0, 0), (0, 1), (1, 0), (1, 1), (1, 2),
        ]
        assert [u.uid for u in queue.units] == list(range(5))

    def test_keys_only_when_keyed_and_seeded(self, tiny_config):
        seedless = tiny_config.with_updates(seed=None)
        keyed = TrialQueue(
            [GridPoint(tiny_config, 1), GridPoint(seedless, 1)], keyed=True
        )
        assert keyed.units[0].key is not None
        assert keyed.units[1].key is None
        unkeyed = TrialQueue(_grid(tiny_config, 1))
        assert unkeyed.units[0].key is None

    def test_lease_requeue_cycle(self, tiny_config):
        queue = TrialQueue(_grid(tiny_config, 2))
        a = queue.lease("w", None)
        assert a.uid == 0 and queue.state[0].status == RUNNING
        queue.requeue(0)
        assert queue.state[0].status == QUEUED
        # requeued unit goes to the tail
        assert queue.lease("w", None).uid == 1
        assert queue.lease("w", None).uid == 0
        assert queue.lease("w", None) is None

    def test_expired_leases(self, tiny_config):
        queue = TrialQueue(_grid(tiny_config, 2))
        queue.lease("w1", deadline=10.0)
        queue.lease("w2", deadline=None)  # local: never expires
        assert queue.expired(now=5.0) == []
        assert queue.expired(now=11.0) == [0]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            TrialQueue([])

    def test_zero_trials_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            GridPoint(config=tiny_config, n_trials=0)


# ----------------------------------------------------------------------
# protocol codecs
# ----------------------------------------------------------------------
class TestProtocol:
    def test_config_round_trip(self, tiny_config):
        config = tiny_config.with_updates(snapshot_ticks=(5, 10))
        assert config_from_wire(config_to_wire(config)) == config

    def test_config_junk_raises(self):
        with pytest.raises(ProtocolError):
            config_from_wire({"definitely": "not a config"})

    def test_unit_round_trip_wide_entropy(self, tiny_config):
        seedless = tiny_config.with_updates(seed=None)
        queue = TrialQueue(_grid(seedless, 2))
        unit = queue.units[1]
        assert unit.entropy.bit_length() > 64  # seedless roots draw 128-bit
        wire = unit_to_wire(unit, seedless)
        assert isinstance(wire["entropy"], str)
        uid, config, seed_seq = unit_from_wire(wire)
        assert uid == 1
        assert config == seedless
        assert seed_seq.entropy == unit.entropy
        assert tuple(seed_seq.spawn_key) == unit.spawn_key

    def test_unit_junk_raises(self):
        with pytest.raises(ProtocolError):
            unit_from_wire({"uid": "nope"})

    def test_result_round_trip_is_cache_exact(self, tiny_config):
        result = run_trial(
            tiny_config, np.random.SeedSequence(tiny_config.seed)
        )
        wire = result_to_wire(result)
        # pre-serialized: transport's sort_keys canonicalization must not
        # be able to re-order counters and break byte-identity
        assert isinstance(wire, str)
        back = result_from_wire(wire)
        assert back.runtime_factor == result.runtime_factor
        assert list(back.counters) == list(result.counters)  # exact order
        assert np.array_equal(back.final_loads, result.final_loads)

    def test_result_junk_raises(self):
        with pytest.raises(ProtocolError):
            result_from_wire("{broken json")
        with pytest.raises(ProtocolError):
            result_from_wire({"format": "bogus"})


# ----------------------------------------------------------------------
# broker: local dispatch
# ----------------------------------------------------------------------
class TestBrokerLocal:
    def test_pool_matches_serial_bitwise(self, tiny_config):
        serial = run_trials(tiny_config, 4, n_jobs=1, cache=False)
        sets = Broker(_grid(tiny_config, 4), n_jobs=2, cache=False).run()
        assert len(sets) == 1
        assert np.array_equal(sets[0].factors, serial.factors)

    def test_one_broker_runs_whole_grid(self, tiny_config):
        grid = sweep_grid(tiny_config, "churn_rate", [0.0, 0.01], 2)
        sets = Broker(grid, cache=False).run()
        direct = sweep(tiny_config, "churn_rate", [0.0, 0.01], 2, cache=False)
        for got, want in zip(sets, direct):
            assert got.config == want.config
            assert np.array_equal(got.factors, want.factors)

    def test_resume_runs_only_missing_units(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        run_trials(tiny_config, 2, cache=cache)  # pre-populate 2 of 5
        assert cache.stores == 2
        reset_run_stats()
        broker = Broker(_grid(tiny_config, 5), cache=cache)
        sets = broker.run()
        stats = run_stats()
        assert stats.trials_cached == 2
        assert stats.trials_run == 3
        assert broker.metrics.counter("fabric.cached") == 2
        assert broker.metrics.counter("fabric.done") == 3
        serial = run_trials(tiny_config, 5, cache=False)
        assert np.array_equal(sets[0].factors, serial.factors)

    def test_failure_surfaces_like_old_runner(self, tiny_config):
        def boom(config, seed_seq):
            if seed_seq.spawn_key[-1] == 1:
                raise RuntimeError("injected failure")
            return run_trial(config, seed_seq)

        broker = Broker(
            _grid(tiny_config, 3), cache=False, trial_fn=boom, retries=0
        )
        with pytest.raises(TrialError) as excinfo:
            broker.run()
        err = excinfo.value
        assert len(err.failures) == 1
        assert err.failures[0].trial_index == 1
        assert err.n_completed == 2
        assert broker.metrics.counter("fabric.failed") == 1

    def test_status_file_written_atomically(self, tiny_config, tmp_path):
        status_path = tmp_path / "deep" / "status.json"
        Broker(
            _grid(tiny_config, 2), cache=False, status_path=status_path
        ).run()
        doc = json.loads(status_path.read_text())
        assert doc["format"] == STATUS_FORMAT
        assert doc["total"] == 2
        assert doc["done"] == 2
        assert doc["queued"] == doc["running"] == 0
        assert not list(status_path.parent.glob(".tmp-status-*"))

    def test_snapshot_counts_and_eta(self, tiny_config):
        broker = Broker(_grid(tiny_config, 3), cache=False)
        before = broker.status()
        assert before["queued"] == 3 and before["done"] == 0
        assert before["eta_seconds"] is None  # no settled runs yet
        broker.run()
        after = broker.status()
        assert after["done"] == 3
        assert after["avg_trial_seconds"] > 0
        assert after["metrics"]["counters"]["fabric.done"] == 3


# ----------------------------------------------------------------------
# broker: remote workers over the attach socket
# ----------------------------------------------------------------------
class TestBrokerRemote:
    def _start(self, broker):
        addr = broker.open_listener()
        out = {}

        def drive():
            out["sets"] = broker.run()

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        return addr, thread, out

    def test_worker_attaches_and_results_stay_bitwise(self, tiny_config):
        serial = run_trials(tiny_config, 6, n_jobs=1, cache=False)
        broker = Broker(
            _grid(tiny_config, 6),
            cache=False,
            trial_fn=_slow_trial,  # local path slowed: worker must win units
            listen=("127.0.0.1", 0),
        )
        addr, thread, out = self._start(broker)
        summary = run_worker(
            addr, name="t-worker", policy=WORKER_POLICY, poll_interval=0.01
        )
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert summary.units_ok >= 1
        assert summary.units_err == 0
        assert summary.clean_shutdown or summary.broker_lost
        assert (
            broker.metrics.counter("fabric.remote_settled")
            == summary.units_ok
        )
        assert np.array_equal(out["sets"][0].factors, serial.factors)

    def test_dead_worker_loses_only_its_unit(self, tiny_config):
        """A worker that leases a unit and vanishes costs exactly one
        lease expiry; the broker retries the unit and still completes."""
        serial = run_trials(tiny_config, 4, n_jobs=1, cache=False)
        broker = Broker(
            _grid(tiny_config, 4),
            cache=False,
            trial_fn=_slow_trial,
            listen=("127.0.0.1", 0),
            lease_timeout=0.3,
            retries=1,
        )
        addr, thread, out = self._start(broker)
        # zombie worker: lease one unit, never settle it
        lease = request(
            addr, {"op": OP_LEASE, "worker": "zombie"}, policy=WORKER_POLICY
        )
        assert lease["unit"] is not None
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert broker.metrics.counter("fabric.lease_expired") == 1
        assert broker.metrics.counter("fabric.retries") == 1
        assert np.array_equal(out["sets"][0].factors, serial.factors)

    def test_status_op_serves_snapshot(self, tiny_config):
        broker = Broker(
            _grid(tiny_config, 2),
            cache=False,
            trial_fn=_slow_trial,
            listen=("127.0.0.1", 0),
        )
        addr, thread, _out = self._start(broker)
        snapshot = request(addr, {"op": OP_STATUS}, policy=WORKER_POLICY)
        assert snapshot["format"] == STATUS_FORMAT
        assert snapshot["total"] == 2
        thread.join(timeout=30)

    def test_worker_without_broker_raises(self):
        with pytest.raises(TransientNetworkError):
            run_worker(
                ("127.0.0.1", 1),  # reserved port, nothing listening
                policy=RetryPolicy(timeout=0.2, retries=0, backoff=0.01),
            )

    def test_worker_max_units(self, tiny_config):
        broker = Broker(
            _grid(tiny_config, 4),
            cache=False,
            trial_fn=_slow_trial,
            listen=("127.0.0.1", 0),
        )
        addr, thread, _out = self._start(broker)
        summary = run_worker(
            addr, policy=WORKER_POLICY, poll_interval=0.01, max_units=1
        )
        assert summary.units_total == 1
        thread.join(timeout=30)


# ----------------------------------------------------------------------
# settle state machine (the single source of truth)
# ----------------------------------------------------------------------
class TestSettleStateMachine:
    def _result(self, config):
        return run_trial(config, np.random.SeedSequence(config.seed))

    def test_duplicate_ok_settle_rejected(self, tiny_config):
        broker = Broker(_grid(tiny_config, 1), cache=False)
        result = self._result(tiny_config)
        broker._queue.lease("w1", None)
        assert broker._settle(0, "ok", result, 0.01, "w1") is True
        assert broker._settle(0, "ok", result, 0.01, "w2") is False
        assert broker._queue.state[0].attempts == 1

    def test_late_ok_settle_after_expiry_is_accepted(self, tiny_config):
        """An expired worker's result is still *the* answer — trials are
        pure functions of (config, seed path)."""
        broker = Broker(
            _grid(tiny_config, 1), cache=False, lease_timeout=0.01
        )
        result = self._result(tiny_config)
        with broker._lock:
            broker._queue.lease("w1", deadline=0.0)
            broker._expire_leases_locked(now=1.0)  # w1 declared dead
        assert broker._queue.state[0].status == QUEUED
        assert broker._settle(0, "ok", result, 0.01, "w1") is True
        assert broker._queue.state[0].status == DONE

    def test_stale_err_settle_from_old_owner_rejected(self, tiny_config):
        """After a lease expires and the unit is released, the old
        owner's error report must not double-penalize the attempt count."""
        broker = Broker(_grid(tiny_config, 1), cache=False, retries=5)
        with broker._lock:
            broker._queue.lease("w1", deadline=0.0)
            broker._expire_leases_locked(now=1.0)  # attempt 1 spent
        assert broker._queue.state[0].attempts == 1
        assert broker._settle(0, "err", "late crash report", 0.0, "w1") is False
        assert broker._queue.state[0].attempts == 1

    def test_remote_settle_via_protocol_handler(self, tiny_config):
        broker = Broker(_grid(tiny_config, 1), cache=False)
        lease = broker._handle_request({"op": OP_LEASE, "worker": "w1"})
        wire_unit = lease["value"]["unit"]
        assert wire_unit["uid"] == 0
        result = self._result(tiny_config)
        reply = broker._handle_request(
            {
                "op": OP_SETTLE,
                "worker": "w1",
                "uid": 0,
                "status": "ok",
                "seconds": 0.01,
                "result": result_to_wire(result),
            }
        )
        assert reply["value"] == {"accepted": True, "shutdown": True}
        dup = broker._handle_request(
            {
                "op": OP_SETTLE,
                "worker": "w2",
                "uid": 0,
                "status": "ok",
                "seconds": 0.01,
                "result": result_to_wire(result),
            }
        )
        assert dup["value"]["accepted"] is False

    def test_bad_settle_uid_is_an_app_error(self, tiny_config):
        broker = Broker(_grid(tiny_config, 1), cache=False)
        reply = broker._handle_request(
            {"op": OP_SETTLE, "worker": "w", "uid": 99, "status": "err",
             "error": "x"}
        )
        assert reply["ok"] is False
        unknown = broker._handle_request({"op": "bogus"})
        assert unknown["ok"] is False


# ----------------------------------------------------------------------
# regression: the dispatch-loop races this PR fixes
# ----------------------------------------------------------------------
class TestDispatchRaces:
    def test_empty_wait_rechecks_done_futures(self, tiny_config, monkeypatch):
        """RACE FIX 1: wait() can time out in the same instant a future
        completes.  With a pathological wait that never reports
        completions, the done() re-check must still consume every result
        — the timeout window is never wrongly declared progress-free."""
        from repro.fabric import broker as broker_mod

        monkeypatch.setattr(
            broker_mod, "wait", lambda fs, timeout, return_when: (set(), fs)
        )
        expired = []
        monkeypatch.setattr(
            Broker,
            "_expire_window",
            lambda self, executor, futures: expired.append(True),
        )
        serial = run_trials(tiny_config, 3, n_jobs=1, cache=False)
        broker = Broker(
            _grid(tiny_config, 3), n_jobs=2, cache=False, timeout=30.0
        )
        sets = broker.run()
        assert expired == []  # completions were seen in time
        assert broker.metrics.counter("fabric.retries") == 0
        assert np.array_equal(sets[0].factors, serial.factors)

    def test_expire_window_rescues_completed_future(self, tiny_config):
        """RACE FIX 2: a future that completes between the timeout check
        and its cancel() carries a real result; the old dispatcher threw
        it away and re-ran the trial."""
        broker = Broker(
            _grid(tiny_config, 2), n_jobs=2, cache=False, timeout=0.1
        )
        result = run_trial(
            tiny_config, np.random.SeedSequence(tiny_config.seed)
        )
        with broker._lock:
            broker._queue.lease("pool", None)
            broker._queue.lease("pool", None)
        raced = Future()  # completed just before the window expired
        raced.set_result((0, "ok", result, 0.02))
        hung = Future()  # genuinely stuck: cancel() will take it
        futures = {raced: 0, hung: 1}
        executor = broker._new_executor()
        try:
            replacement = broker._expire_window(executor, futures)
            replacement.shutdown(wait=False, cancel_futures=True)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        assert broker._queue.state[0].status == DONE  # rescued, not re-run
        assert broker._queue.state[0].result is result
        assert broker._queue.state[1].status == QUEUED  # requeued for retry
        assert broker.metrics.counter("fabric.done") == 1
        assert broker.metrics.counter("fabric.retries") == 1

    def test_run_stats_accumulator_is_thread_safe(self, tiny_config):
        """RACE FIX 3: settles arrive concurrently from the pool waiter
        and the listener thread; the module stats accumulator must not
        lose updates."""
        result = run_trial(
            tiny_config, np.random.SeedSequence(tiny_config.seed)
        )
        reset_run_stats()
        n_threads, per_thread = 8, 200

        def hammer():
            for _ in range(per_thread):
                record_trial_run(result, 0.001)
                record_trial_cached(result)
                record_retries()
                record_trials_failed()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = run_stats()
        expect = n_threads * per_thread
        assert stats.trials_run == expect
        assert stats.trials_cached == expect
        assert stats.retries == expect
        assert stats.trials_failed == expect
        assert stats.trial_seconds == pytest.approx(expect * 0.001)


# ----------------------------------------------------------------------
# sweep_grid (the seed-derivation seam run_trials/sweep now share)
# ----------------------------------------------------------------------
class TestSweepGrid:
    def test_points_get_derived_seeds(self, tiny_config):
        grid = sweep_grid(tiny_config, "churn_rate", [0.0, 0.01], 2)
        assert [p.config.churn_rate for p in grid] == [0.0, 0.01]
        assert grid[0].config.seed != grid[1].config.seed
        again = sweep_grid(tiny_config, "churn_rate", [0.0, 0.01], 2)
        assert [p.config.seed for p in grid] == [p.config.seed for p in again]

    def test_crn_and_seed_field_keep_seeds(self, tiny_config):
        crn = sweep_grid(
            tiny_config, "max_ticks", [10, 20], 1, common_random_numbers=True
        )
        assert all(p.config.seed == tiny_config.seed for p in crn)
        by_seed = sweep_grid(tiny_config, "seed", [1, 2], 1)
        assert [p.config.seed for p in by_seed] == [1, 2]
