"""Tests for the content-addressed trial cache and resume behavior."""

import json

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim import cache as cache_mod
from repro.sim.cache import TrialCache, cache_enabled, get_cache, trial_key
from repro.sim.persistence import save_sweep
from repro.sim.trials import run_trial, run_trials, sweep


def seed_children(config, n):
    return np.random.SeedSequence(config.seed).spawn(n)


class TestTrialKey:
    def test_deterministic(self, tiny_config):
        a, b = seed_children(tiny_config, 1)[0], seed_children(tiny_config, 1)[0]
        assert trial_key(tiny_config, a) == trial_key(tiny_config, b)

    def test_sensitive_to_config(self, tiny_config):
        child = seed_children(tiny_config, 1)[0]
        other = tiny_config.with_updates(n_tasks=tiny_config.n_tasks + 1)
        assert trial_key(tiny_config, child) != trial_key(other, child)

    def test_sensitive_to_seed_path(self, tiny_config):
        c0, c1 = seed_children(tiny_config, 2)
        assert trial_key(tiny_config, c0) != trial_key(tiny_config, c1)

    def test_sensitive_to_schema_version(self, tiny_config, monkeypatch):
        child = seed_children(tiny_config, 1)[0]
        before = trial_key(tiny_config, child)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 999)
        assert trial_key(tiny_config, child) != before


class TestTrialCache:
    def test_roundtrip_bit_identical(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        child = seed_children(tiny_config, 1)[0]
        result = run_trial(tiny_config, child)
        key = trial_key(tiny_config, child)
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.runtime_ticks == result.runtime_ticks
        assert loaded.ideal_ticks == result.ideal_ticks
        assert loaded.counters == result.counters
        assert np.array_equal(loaded.final_loads, result.final_loads)
        assert loaded.config == result.config

    def test_miss_returns_none(self, tmp_path):
        cache = TrialCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.misses == 1

    def test_corrupted_entry_is_removed(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        key = trial_key(tiny_config, seed_children(tiny_config, 1)[0])
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"format": "truncated')
        assert cache.load(key) is None
        assert not path.exists()

    def test_clear(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        child = seed_children(tiny_config, 1)[0]
        cache.store(trial_key(tiny_config, child), run_trial(tiny_config, child))
        assert len(cache.entries()) == 1
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled()
        assert get_cache() is None


class TestRunTrialsCaching:
    def test_second_run_is_all_hits(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        first = run_trials(tiny_config, 4, cache=cache)
        assert cache.stores == 4
        second = run_trials(tiny_config, 4, cache=cache)
        assert cache.hits == 4
        assert np.array_equal(first.factors, second.factors)

    def test_cached_equals_uncached(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        run_trials(tiny_config, 3, cache=cache)
        cached = run_trials(tiny_config, 3, cache=cache)
        fresh = run_trials(tiny_config, 3, cache=False)
        assert np.array_equal(cached.factors, fresh.factors)
        for a, b in zip(cached.results, fresh.results):
            assert a.runtime_ticks == b.runtime_ticks
            assert a.counters == b.counters
            assert np.array_equal(a.final_loads, b.final_loads)

    def test_partial_run_resumes(self, tiny_config, tmp_path):
        """A smaller run's trials are reused by a larger one (the i-th
        child seed does not depend on the trial count)."""
        cache = TrialCache(tmp_path)
        run_trials(tiny_config, 2, cache=cache)
        assert cache.stores == 2
        full = run_trials(tiny_config, 5, cache=cache)
        assert cache.hits == 2 and cache.stores == 5
        fresh = run_trials(tiny_config, 5, cache=False)
        assert np.array_equal(full.factors, fresh.factors)

    def test_seedless_config_not_cached(self, tmp_path):
        config = SimulationConfig(n_nodes=20, n_tasks=200, seed=None)
        cache = TrialCache(tmp_path)
        run_trials(config, 2, cache=cache)
        assert cache.stores == 0 and cache.hits == 0


class TestSweepResume:
    def test_interrupted_sweep_resumes_bit_identical(
        self, tiny_config, tmp_path
    ):
        """In-process version of `make sweep-resume-check`: a sweep that
        lost part of its work resumes from the cache and serializes
        byte-identically to an uninterrupted run."""
        values = [0.0, 0.01]
        baseline = sweep(
            tiny_config, "churn_rate", values, 3, cache=False
        )
        cache = TrialCache(tmp_path)
        # "interruption": only the first point's first trials completed
        run_trials(
            tiny_config.with_updates(
                churn_rate=0.0,
                seed=baseline[0].config.seed,
            ),
            2,
            cache=cache,
        )
        assert cache.stores == 2
        resumed = sweep(tiny_config, "churn_rate", values, 3, cache=cache)
        assert cache.hits == 2
        base_path = tmp_path / "base.json"
        res_path = tmp_path / "resumed.json"
        save_sweep(baseline, base_path)
        save_sweep(resumed, res_path)
        assert base_path.read_bytes() == res_path.read_bytes()

    def test_sweep_points_share_nothing(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        sweep(tiny_config, "churn_rate", [0.0, 0.01], 2, cache=cache)
        keys = {p.name for p in cache.entries()}
        assert len(keys) == 4  # 2 points x 2 trials, no collisions


class TestCacheCLI:
    def test_cache_info_and_clear(self, tiny_config, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = TrialCache()
        child = seed_children(tiny_config, 1)[0]
        cache.store(trial_key(tiny_config, child), run_trial(tiny_config, child))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "cached trials" in out and "1" in out
        assert main(["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert cache.entries() == []

    def test_run_prints_trial_accounting(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        manifest = tmp_path / "manifest.json"
        assert main(["run", "fig01", "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "cached" in out and "run" in out
        data = json.loads(manifest.read_text())
        assert data["runs"][0]["experiment_id"] == "fig01"
        assert "run_stats" in data["runs"][0]


class TestTempFileHygiene:
    """Regressions for the orphaned-``.tmp-*`` bugs: staging files used
    to be counted as entries, deleted out from under concurrent stores
    by clear(), and accumulated forever after a SIGKILL mid-store."""

    def _store_one(self, cache, config):
        child = seed_children(config, 1)[0]
        cache.store(trial_key(config, child), run_trial(config, child))

    def test_entries_exclude_staging_files(self, tiny_config, tmp_path):
        cache = TrialCache(tmp_path)
        self._store_one(cache, tiny_config)
        bucket = next(p for p in cache.trials_dir.iterdir() if p.is_dir())
        (bucket / ".tmp-abc123.json").write_text("{half a write")
        assert len(cache.entries()) == 1
        assert not any(p.name.startswith(".tmp-") for p in cache.entries())
        # clear() must not delete the in-flight temp either
        assert cache.clear() == 1
        assert (bucket / ".tmp-abc123.json").exists()

    def test_init_sweeps_stale_tmp_only(self, tiny_config, tmp_path):
        import os

        cache = TrialCache(tmp_path)
        self._store_one(cache, tiny_config)
        bucket = next(p for p in cache.trials_dir.iterdir() if p.is_dir())
        stale = bucket / ".tmp-stale.json"
        fresh = bucket / ".tmp-fresh.json"
        stale.write_text("{")
        fresh.write_text("{")
        old = stale.stat().st_mtime - (cache_mod.STALE_TMP_SECONDS + 60)
        os.utime(stale, (old, old))
        TrialCache(tmp_path)  # construction runs the sweep
        assert not stale.exists()  # orphan reclaimed
        assert fresh.exists()  # possibly another process's live write
        assert len(TrialCache(tmp_path).entries()) == 1

    def test_size_bytes_tolerates_vanishing_entry(
        self, tiny_config, tmp_path, monkeypatch
    ):
        cache = TrialCache(tmp_path)
        self._store_one(cache, tiny_config)
        real = cache.entries()
        ghost = cache.trials_dir / "ff" / f"{'f' * 64}.json"
        monkeypatch.setattr(
            TrialCache, "entries", lambda self: real + [ghost]
        )
        # the ghost was unlinked between glob and stat; no crash, and the
        # surviving entry is still counted
        assert cache.size_bytes() == real[0].stat().st_size
