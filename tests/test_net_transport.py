"""Tests of the live wire transport (frames, codec, retry policy).

The timeout/backoff tests inject a fake dialer and a recording sleep,
so no test here ever sleeps for real.
"""

import asyncio
import socket

import pytest

from repro.errors import ProtocolError, TransientNetworkError
from repro.net.transport import (
    MAX_FRAME_BYTES,
    RetryPolicy,
    async_request,
    decode_payload,
    encode_frame,
    encode_payload,
    format_address,
    parse_address,
    read_frame,
    remote_error,
    request,
    write_frame,
)


class TestAddresses:
    def test_roundtrip(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert format_address(("localhost", 80)) == "localhost:80"

    @pytest.mark.parametrize("bad", ["", "nohost", ":123", "h:port"])
    def test_bad_addresses(self, bad):
        with pytest.raises(ProtocolError):
            parse_address(bad)


class TestPayloadCodec:
    def test_int_dict_keys_survive(self):
        original = {1065: {"load": 3}, 2**70: [1, 2], -1: None}
        assert decode_payload(encode_payload(original)) == original

    def test_nested_and_tuples(self):
        original = {"a": [(1, 2), {"b": {7: "x"}}], "c": True}
        decoded = decode_payload(encode_payload(original))
        # tuples become lists over JSON; everything else is unchanged
        assert decoded == {"a": [[1, 2], {"b": {7: "x"}}], "c": True}

    def test_scalars_passthrough(self):
        for value in (None, True, 3, 2.5, "s"):
            assert decode_payload(encode_payload(value)) == value

    def test_numpy_scalars_coerced(self):
        import numpy as np

        encoded = encode_payload({np.int64(4): np.uint64(9)})
        assert decode_payload(encoded) == {4: 9}


class TestFrames:
    def _read(self, data: bytes):
        async def go():
            reader = asyncio.StreamReader()
            if data:
                reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_roundtrip(self):
        payload = {"op": "hello", "n": 3}
        assert self._read(encode_frame(payload)) == payload

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError):
            self._read(b"\x00\x00")

    def test_truncated_body_raises(self):
        frame = encode_frame({"op": "x"})
        with pytest.raises(ProtocolError):
            self._read(frame[:-2])

    def test_oversized_announcement_rejected(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            self._read(header)


class TestRetryPolicy:
    def test_defaults_validate(self):
        policy = RetryPolicy()
        assert policy.retries >= 0 and policy.timeout > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0},
            {"retries": -1},
            {"backoff": -0.1},
            {"backoff_factor": 0.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ProtocolError):
            RetryPolicy(**kwargs)

    def test_exponential_delay(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0)
        assert [policy.delay(i) for i in range(3)] == [0.1, 0.2, 0.4]

    def test_single_shot_strips_budget(self):
        policy = RetryPolicy(timeout=0.5, retries=3)
        solo = policy.single_shot()
        assert solo.retries == 0 and solo.timeout == 0.5
        assert solo.single_shot() is solo


class TestRemoteErrorMapping:
    def test_app_error(self):
        err = remote_error({"kind": "app", "error": "no such key"})
        assert isinstance(err, ProtocolError)
        assert not getattr(err, "transport_failure", False)

    def test_transport_error(self):
        err = remote_error({"kind": "transport", "error": "dead id"})
        assert err.transport_failure is True
        assert not isinstance(err, TransientNetworkError)

    def test_transient_error(self):
        err = remote_error({"kind": "transient", "error": "dropped"})
        assert isinstance(err, TransientNetworkError)


class _FakeSocket:
    """Answers one exchange from a canned response frame."""

    def __init__(self, response: bytes):
        self._buf = response
        self.sent = b""

    def sendall(self, data: bytes) -> None:
        self.sent += data

    def recv(self, n: int) -> bytes:
        chunk, self._buf = self._buf[:n], self._buf[n:]
        return chunk

    def close(self) -> None:
        pass


class TestSyncRequestFakeClock:
    """Timeout/retry/backoff behaviour without any real sleeping."""

    def test_timeout_retries_then_transient(self):
        dials = []
        slept = []

        def dial(addr, timeout):
            dials.append((addr, timeout))
            raise socket.timeout("fake timeout")

        policy = RetryPolicy(timeout=0.25, retries=2, backoff=0.1)
        with pytest.raises(TransientNetworkError):
            request(
                ("10.0.0.1", 1),
                {"op": "stats"},
                policy=policy,
                dial=dial,
                sleep=slept.append,
            )
        # 1 first attempt + 2 resends, each dialed with the per-message
        # timeout; backoff grows exponentially between attempts
        assert dials == [(("10.0.0.1", 1), 0.25)] * 3
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_connection_refused_retries(self):
        attempts = []

        def dial(addr, timeout):
            attempts.append(1)
            raise ConnectionRefusedError("fake refusal")

        with pytest.raises(TransientNetworkError):
            request(
                ("h", 1),
                {"op": "stats"},
                policy=RetryPolicy(retries=1),
                dial=dial,
                sleep=lambda _s: None,
            )
        assert len(attempts) == 2

    def test_zero_budget_fails_fast(self):
        slept = []
        with pytest.raises(TransientNetworkError):
            request(
                ("h", 1),
                {"op": "stats"},
                policy=RetryPolicy(retries=0),
                dial=lambda a, t: (_ for _ in ()).throw(socket.timeout()),
                sleep=slept.append,
            )
        assert slept == []

    def test_remote_error_not_retried(self):
        """The peer answered: retrying would duplicate the message."""
        dials = []
        frame = encode_frame(
            {"ok": False, "kind": "app", "error": "no such key"}
        )

        def dial(addr, timeout):
            dials.append(1)
            return _FakeSocket(frame)

        with pytest.raises(ProtocolError) as info:
            request(
                ("h", 1),
                {"op": "client_get", "key": 7},
                policy=RetryPolicy(retries=3),
                dial=dial,
                sleep=lambda _s: None,
            )
        assert len(dials) == 1
        assert not isinstance(info.value, TransientNetworkError)

    def test_success_decodes_value(self):
        frame = encode_frame(
            {"ok": True, "value": encode_payload({"r": {5: "x"}})}
        )
        value = request(
            ("h", 1),
            {"op": "rpc"},
            policy=RetryPolicy(retries=0),
            dial=lambda a, t: _FakeSocket(frame),
            sleep=lambda _s: None,
        )
        assert value == {"r": {5: "x"}}


class TestAsyncLoopback:
    """One real (loopback) exchange through the asyncio client."""

    def test_roundtrip_and_error(self):
        async def serve(reader, writer):
            while (payload := await read_frame(reader)) is not None:
                if payload["op"] == "boom":
                    await write_frame(
                        writer,
                        {"ok": False, "kind": "transport", "error": "dead"},
                    )
                else:
                    await write_frame(
                        writer,
                        {"ok": True, "value": encode_payload(payload)},
                    )
            writer.close()

        async def main():
            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            addr = server.sockets[0].getsockname()[:2]
            policy = RetryPolicy(timeout=5.0, retries=0)
            echoed = await async_request(
                addr, {"op": "hello", "n": 1}, policy=policy
            )
            assert echoed == {"op": "hello", "n": 1}
            with pytest.raises(ProtocolError) as info:
                await async_request(addr, {"op": "boom"}, policy=policy)
            assert info.value.transport_failure is True
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_unreachable_is_transient(self):
        async def main():
            # bind-then-close guarantees an unused port
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            addr = server.sockets[0].getsockname()[:2]
            server.close()
            await server.wait_closed()
            slept = []

            async def sleep(seconds):
                slept.append(seconds)

            with pytest.raises(TransientNetworkError):
                await async_request(
                    addr,
                    {"op": "stats"},
                    policy=RetryPolicy(timeout=0.5, retries=1, backoff=0.01),
                    sleep=sleep,
                )
            assert len(slept) == 1

        asyncio.run(main())
