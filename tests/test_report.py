"""Tests for the reproduction-report generator."""

import json

import pytest

from repro.experiments.report import generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("report")
        path = generate_report(
            out,
            experiment_ids=["fig02_03", "fig01"],
            seed=0,
            echo=lambda *_: None,
        )
        return out, path

    def test_report_markdown(self, bundle):
        out, path = bundle
        assert path.name == "REPORT.md"
        text = path.read_text()
        assert "# Reproduction report" in text
        assert "fig02_03" in text and "fig01" in text
        assert "Figure files" in text

    def test_csv_artifacts(self, bundle):
        out, _ = bundle
        for exp_id in ("fig02_03", "fig01"):
            csv = out / "csv" / f"{exp_id}.csv"
            assert csv.exists()
            assert len(csv.read_text().splitlines()) >= 2

    def test_figure_artifacts(self, bundle):
        out, _ = bundle
        figures = out / "figures"
        assert (figures / "fig2_hashed_ring.svg").exists()
        assert (figures / "fig3_even_ring.svg").exists()
        density = figures / "fig1_distribution.csv"
        lines = density.read_text().splitlines()
        assert lines[0] == "bin_left,bin_right,probability"
        probs = [float(line.split(",")[2]) for line in lines[1:]]
        assert sum(probs) == pytest.approx(1.0, abs=0.01)

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "report",
                "--out",
                str(tmp_path / "r"),
                "--only",
                "fig02_03",
            ]
        )
        assert code == 0
        assert (tmp_path / "r" / "REPORT.md").exists()
