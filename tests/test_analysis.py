"""Tests for the theory module and convergence profiling."""

import math

import numpy as np
import pytest

from repro.analysis.convergence import profile_run
from repro.analysis.theory import (
    expected_baseline_factor,
    expected_idle_fraction,
    expected_max_workload,
    expected_median_workload,
    expected_workload_std,
    harmonic,
    predicted_histogram,
    workload_ccdf,
)
from repro.config import SimulationConfig
from repro.metrics.balance import load_stats
from repro.sim.engine import TickEngine, run_simulation


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_large_asymptotic(self):
        n = 1_000_000
        g = 0.5772156649015329
        assert harmonic(n) == pytest.approx(math.log(n) + g, abs=1e-5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic(0)


class TestPaperPredictions:
    """The theory reproduces the paper's numbers with no simulation."""

    def test_baseline_factor_matches_table2_row0(self):
        # paper churn-0 row: 7.476 (1000 nodes), ~5.02-5.04 (100 nodes)
        assert expected_baseline_factor(1000) == pytest.approx(7.485, abs=0.01)
        assert expected_baseline_factor(100) == pytest.approx(5.187, abs=0.01)

    def test_median_matches_table1(self):
        assert expected_median_workload(1000, 1_000_000) == pytest.approx(
            692.3, abs=1.0
        )
        assert expected_median_workload(10000, 100_000) == pytest.approx(
            6.93, abs=0.05
        )

    def test_sigma_matches_table1(self):
        # paper: (1000n, 1e6t) sigma = 996.982
        assert expected_workload_std(1000, 1_000_000) == pytest.approx(
            1000.5, abs=1.0
        )
        # paper: (5000n, 5e5t) sigma = 100.344
        assert expected_workload_std(5000, 500_000) == pytest.approx(
            100.5, abs=0.5
        )


class TestTheoryVsSimulation:
    @pytest.fixture(scope="class")
    def loads(self):
        engine = TickEngine(
            SimulationConfig(n_nodes=2000, n_tasks=400_000, seed=0)
        )
        return engine.network_loads()

    def test_median(self, loads):
        stats = load_stats(loads)
        assert stats.median == pytest.approx(
            expected_median_workload(2000, 400_000), rel=0.08
        )

    def test_std(self, loads):
        stats = load_stats(loads)
        assert stats.std == pytest.approx(
            expected_workload_std(2000, 400_000), rel=0.10
        )

    def test_max(self, loads):
        stats = load_stats(loads)
        assert stats.max == pytest.approx(
            expected_max_workload(2000, 400_000), rel=0.35
        )

    def test_ccdf(self, loads):
        mean = 200.0
        for x in (0.5 * mean, mean, 2 * mean):
            empirical = float((loads > x).mean())
            predicted = float(workload_ccdf(np.array([x]), 2000, 400_000)[0])
            assert empirical == pytest.approx(predicted, abs=0.03)

    def test_predicted_histogram_sums_to_n(self):
        edges = np.linspace(0, 5000, 40)
        pred = predicted_histogram(edges, 2000, 400_000)
        # bins up to 25x the mean capture almost every node
        assert pred.sum() == pytest.approx(2000, rel=0.01)

    def test_baseline_factor(self):
        factors = [
            run_simulation(
                SimulationConfig(n_nodes=300, n_tasks=60_000, seed=seed)
            ).runtime_factor
            for seed in range(5)
        ]
        assert np.mean(factors) == pytest.approx(
            expected_baseline_factor(300), rel=0.12
        )

    def test_idle_fraction_trajectory(self):
        config = SimulationConfig(
            n_nodes=500, n_tasks=50_000, seed=3, snapshot_ticks=(35,)
        )
        engine = TickEngine(config)
        engine.run()
        loads35 = engine.snapshot_loads()[35]
        empirical = float((loads35 == 0).mean())
        predicted = expected_idle_fraction(500, 50_000, 35)
        assert empirical == pytest.approx(predicted, abs=0.05)


class TestConvergenceProfile:
    def test_profile_fields_consistent(self):
        profile = profile_run(
            SimulationConfig(n_nodes=100, n_tasks=5000, seed=1)
        )
        assert profile.runtime_ticks > 0
        assert 0 < profile.utilization_auc <= 1.0
        # utilization AUC is the reciprocal of the factor for fixed size
        assert profile.utilization_auc == pytest.approx(
            1.0 / profile.runtime_factor, rel=0.02
        )
        assert profile.peak_network_size == 100

    def test_balancing_improves_auc(self):
        base = SimulationConfig(n_nodes=100, n_tasks=10_000, seed=2)
        plain = profile_run(base)
        balanced = profile_run(
            base.with_updates(strategy="random_injection")
        )
        assert balanced.utilization_auc > plain.utilization_auc
        assert balanced.wasted_node_ticks < plain.wasted_node_ticks
        assert balanced.ticks_to_half_idle >= plain.ticks_to_half_idle
        assert balanced.peak_network_size > 100  # sybils counted

    def test_as_dict(self):
        profile = profile_run(
            SimulationConfig(n_nodes=50, n_tasks=1000, seed=3)
        )
        d = profile.as_dict()
        assert set(d) == {
            "runtime_ticks",
            "runtime_factor",
            "utilization_auc",
            "ticks_to_half_idle",
            "wasted_node_ticks",
            "peak_network_size",
        }
