"""Tests for the unit-circle projection (paper Figures 2-3 mapping)."""

import math

import numpy as np

from repro.hashspace.idspace import SPACE_160, IdSpace
from repro.hashspace.projection import (
    angular_position,
    project_many,
    to_unit_circle,
)


class TestToUnitCircle:
    def test_zero_at_top(self):
        x, y = to_unit_circle(0, SPACE_160)
        assert abs(x) < 1e-12 and abs(y - 1.0) < 1e-12

    def test_quarter_turn(self, space8):
        # id = size/4 → 90° clockwise → (1, 0)
        x, y = to_unit_circle(64, space8)
        assert abs(x - 1.0) < 1e-12 and abs(y) < 1e-12

    def test_half_turn(self, space8):
        x, y = to_unit_circle(128, space8)
        assert abs(x) < 1e-12 and abs(y + 1.0) < 1e-12

    def test_on_unit_circle(self, space8, rng):
        for _ in range(50):
            ident = space8.random_id(rng)
            x, y = to_unit_circle(ident, space8)
            assert abs(math.hypot(x, y) - 1.0) < 1e-12


class TestAngularPosition:
    def test_monotone_in_id(self, space8):
        angles = [angular_position(i, space8) for i in range(0, 256, 16)]
        assert all(a < b for a, b in zip(angles, angles[1:]))

    def test_range(self, space8):
        assert angular_position(0, space8) == 0.0
        assert angular_position(255, space8) < 2 * math.pi


class TestProjectMany:
    def test_shape_and_consistency(self, rng):
        ids = [SPACE_160.random_id(rng) for _ in range(10)]
        xy = project_many(ids, SPACE_160)
        assert xy.shape == (10, 2)
        for i, ident in enumerate(ids):
            x, y = to_unit_circle(ident, SPACE_160)
            assert abs(xy[i, 0] - x) < 1e-9
            assert abs(xy[i, 1] - y) < 1e-9

    def test_norms(self):
        space = IdSpace(16)
        xy = project_many(range(0, 2**16, 997), space)
        norms = np.hypot(xy[:, 0], xy[:, 1])
        assert np.allclose(norms, 1.0)
