"""Tests for the sharded tick engine (repro.sim.shard).

The headline property is the issue's non-negotiable: seeded results are
**bit-identical** across ``shards`` ∈ {1, 2, 4} and identical to the
plain single-process engine, under Sybil strategies, churn, crashes,
and streaming arrivals.  ``min_parallel_slots`` is forced low so the
tiny test rings actually exercise the worker-pool path.
"""

import numpy as np
import pytest

from repro.config import AdversaryModel, FailureModel, SimulationConfig
from repro.errors import ConfigError
from repro.obs.metrics import result_fingerprint
from repro.sim.engine import TickEngine
from repro.sim.shard import (
    ShardedTickEngine,
    plan_shards,
    shard_seed_streams,
)
from repro.sim.trials import run_trial

I64 = np.int64


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestPlanShards:
    def _csr(self, sizes):
        sizes = np.asarray(sizes, dtype=I64)
        starts = np.concatenate(([0], np.cumsum(sizes[:-1]))).astype(I64)
        return starts, int(sizes.sum())

    def test_covers_all_groups_without_splitting(self):
        starts, n = self._csr([3, 1, 4, 2, 2, 5, 1, 6])
        plan = plan_shards(starts, n, 3)
        chunks = plan.chunks()
        assert chunks[0][0] == 0
        assert chunks[-1][1] == starts.size
        for (_, g_hi, _, el_hi), (g_lo, _, el_lo, _) in zip(
            chunks, chunks[1:]
        ):
            assert g_hi == g_lo  # contiguous: no gap, no overlap
            assert el_hi == el_lo
        # element bounds always land on group boundaries
        ends = np.append(starts, n)
        for g_lo, g_hi, el_lo, el_hi in chunks:
            assert el_lo == int(ends[g_lo]) if g_lo < starts.size else n
            assert el_hi == int(ends[g_hi]) if g_hi < starts.size else n

    def test_balances_by_slot_count(self):
        # 100 groups of 10 slots: 4 shards should get ~250 slots each
        starts, n = self._csr([10] * 100)
        plan = plan_shards(starts, n, 4)
        sizes = [el_hi - el_lo for _, _, el_lo, el_hi in plan.chunks()]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 10  # within one group

    def test_more_shards_than_groups(self):
        starts, n = self._csr([2, 3])
        plan = plan_shards(starts, n, 8)
        chunks = plan.chunks()
        assert len(chunks) == 8
        covered = [
            (g_lo, g_hi) for g_lo, g_hi, _, _ in chunks if g_hi > g_lo
        ]
        assert sum(hi - lo for lo, hi in covered) == 2

    def test_single_shard(self):
        starts, n = self._csr([1, 2, 3])
        plan = plan_shards(starts, n, 1)
        assert plan.chunks() == [(0, 3, 0, n)]

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigError):
            plan_shards(np.zeros(1, dtype=I64), 1, 0)


class TestSeedStreams:
    def test_deterministic_and_independent(self):
        a = shard_seed_streams(123, 4)
        b = shard_seed_streams(123, 4)
        assert len(a) == 4
        for sa, sb in zip(a, b):
            assert sa.spawn_key == sb.spawn_key
            assert (
                sa.generate_state(2).tolist()
                == sb.generate_state(2).tolist()
            )
        states = {tuple(s.generate_state(2).tolist()) for s in a}
        assert len(states) == 4

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(9)
        assert len(shard_seed_streams(seq, 2)) == 2

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            shard_seed_streams(0, 0)


# ----------------------------------------------------------------------
# engine equivalence (the bit-identity gate)
# ----------------------------------------------------------------------
SYBIL_CONFIG = SimulationConfig(
    strategy="invitation",
    n_nodes=50,
    n_tasks=3000,
    churn_rate=0.02,
    heterogeneous=True,
    work_measurement="strength",
    max_sybils=5,
    seed=424242,
)

#: Same ring under active attack + both defenses: the adversary phase
#: (eclipse joins, budget refills, density evictions, targeted crashes)
#: runs entirely in the coordinator, so shard counts must not change a
#: single byte of the trajectory.
ADVERSARIAL_CONFIG = SimulationConfig(
    strategy="invitation",
    n_nodes=50,
    n_tasks=3000,
    churn_rate=0.02,
    max_sybils=5,
    seed=424242,
    adversary=AdversaryModel(
        eclipse_sybils=12,
        eclipse_arc_fraction=0.01,
        free_riders=2,
        churn_amplification=0.05,
        attack_tick=5,
        join_cost=2,
        detection_interval=10,
    ),
    max_ticks=1500,
)


def sharded_result(config, shards, **kwargs):
    with ShardedTickEngine(
        config, shards=shards, min_parallel_slots=1, **kwargs
    ) as engine:
        return engine.run()


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "config",
        [SYBIL_CONFIG, ADVERSARIAL_CONFIG],
        ids=["benevolent", "adversarial"],
    )
    def test_matches_plain_engine(self, config, shards):
        base = TickEngine(config).run()
        sharded = sharded_result(config, shards)
        assert result_fingerprint(sharded) == result_fingerprint(base)
        assert sharded.runtime_ticks == base.runtime_ticks
        assert sharded.counters == base.counters
        assert sharded.adversary == base.adversary
        np.testing.assert_array_equal(sharded.final_loads, base.final_loads)

    def test_shards_with_arrivals_and_crashes(self):
        config = SimulationConfig(
            strategy="random_injection",
            n_nodes=40,
            n_tasks=1500,
            churn_rate=0.05,
            arrival_rate=30.0,
            arrival_until=20,
            max_sybils=4,
            failures=FailureModel(
                crash_fraction=0.3, replication_factor=1
            ),
            seed=77,
        )
        base = TickEngine(config).run()
        fingerprints = {
            result_fingerprint(sharded_result(config, s)) for s in (1, 2, 4)
        }
        assert fingerprints == {result_fingerprint(base)}

    def test_run_trial_shards_parameter(self):
        seq = np.random.SeedSequence(5)
        base = run_trial(SYBIL_CONFIG, seq)
        sharded = run_trial(
            SYBIL_CONFIG, np.random.SeedSequence(5),
            shards=3, min_parallel_slots=1,
        )
        assert result_fingerprint(sharded) == result_fingerprint(base)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_shards_one_never_builds_a_pool(self):
        with ShardedTickEngine(
            SYBIL_CONFIG, shards=1, min_parallel_slots=1
        ) as engine:
            engine.run()
            assert engine._pool is None

    def test_parallel_path_actually_engaged(self):
        with ShardedTickEngine(
            SYBIL_CONFIG, shards=2, min_parallel_slots=1
        ) as engine:
            engine.run()
            # the pool (and shm mirrors) only exist if workers consumed
            assert engine._pool is not None
            assert engine._counts_shm.shm is not None

    def test_below_threshold_stays_sequential(self):
        with ShardedTickEngine(
            SYBIL_CONFIG, shards=2, min_parallel_slots=10**9
        ) as engine:
            result = engine.run()
            assert engine._pool is None
        assert result_fingerprint(result) == result_fingerprint(
            TickEngine(SYBIL_CONFIG).run()
        )

    def test_close_is_idempotent(self):
        engine = ShardedTickEngine(
            SYBIL_CONFIG, shards=2, min_parallel_slots=1
        )
        for _ in range(12):
            engine.step()
        engine.close()
        engine.close()
        assert engine._counts_shm.shm is None

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigError):
            ShardedTickEngine(SYBIL_CONFIG, shards=0)

    def test_backend_forwarded(self):
        with ShardedTickEngine(
            SYBIL_CONFIG, shards=2, backend="numpy"
        ) as engine:
            assert engine.backend == "numpy"
