"""Tests for multi-trial execution and seed management."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.sim.trials import run_trials, sweep


class TestReproducibility:
    def test_same_seed_same_trialset(self, tiny_config):
        a = run_trials(tiny_config, 4)
        b = run_trials(tiny_config, 4)
        assert np.array_equal(a.factors, b.factors)

    def test_trials_are_independent(self, tiny_config):
        trials = run_trials(tiny_config, 6)
        assert len(set(r.runtime_ticks for r in trials.results)) > 1

    def test_different_root_seed(self, tiny_config):
        a = run_trials(tiny_config, 3)
        b = run_trials(tiny_config.with_updates(seed=99), 3)
        assert not np.array_equal(a.factors, b.factors)


class TestParallelism:
    def test_parallel_equals_serial(self, tiny_config):
        serial = run_trials(tiny_config, 4, n_jobs=1)
        parallel = run_trials(tiny_config, 4, n_jobs=2)
        assert np.array_equal(serial.factors, parallel.factors)


class TestAggregation:
    def test_factor_summary(self, tiny_config):
        trials = run_trials(tiny_config, 5)
        summary = trials.factor_summary()
        assert summary.n_trials == 5
        assert summary.min <= summary.mean <= summary.max
        assert trials.mean_factor == pytest.approx(summary.mean)

    def test_counter_means(self, tiny_config):
        config = tiny_config.with_updates(strategy="random_injection")
        trials = run_trials(config, 3)
        means = trials.counter_means()
        assert means["decision_rounds"] > 0

    def test_zero_trials_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            run_trials(tiny_config, 0)


class TestSweep:
    def test_sweep_varies_field(self, tiny_config):
        sets = sweep(tiny_config, "n_tasks", [300, 600], n_trials=2)
        assert sets[0].config.n_tasks == 300
        assert sets[1].config.n_tasks == 600
        assert all(ts.n_trials == 2 for ts in sets)
