"""Tests for multi-trial execution, fault tolerance and seed management."""

import os
import time

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError, TrialError
from repro.sim.trials import (
    default_n_jobs,
    reset_run_stats,
    run_stats,
    run_trial,
    run_trials,
    sweep,
)


# ----------------------------------------------------------------------
# fault-injection trial functions — module level so "spawn" workers can
# unpickle them; failure state crosses processes via environment/files.
# ----------------------------------------------------------------------
def _failing_trial(config, seed_seq):
    """Trial 1 always raises; the others run normally."""
    if seed_seq.spawn_key[-1] == 1:
        raise RuntimeError("injected failure")
    return run_trial(config, seed_seq)


def _flaky_trial(config, seed_seq):
    """Trial 1 fails on its first attempt only (marker file = retried)."""
    index = seed_seq.spawn_key[-1]
    marker = os.path.join(os.environ["REPRO_TEST_FLAKY_DIR"], f"t{index}")
    if index == 1 and not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("transient failure")
    return run_trial(config, seed_seq)


def _crashing_trial(config, seed_seq):
    """Trial 2 hard-kills its worker on the first attempt (no traceback,
    no cleanup — the way a segfault or OOM kill looks to the pool)."""
    index = seed_seq.spawn_key[-1]
    marker = os.path.join(os.environ["REPRO_TEST_FLAKY_DIR"], f"c{index}")
    if index == 2 and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(17)
    return run_trial(config, seed_seq)


def _hanging_trial(config, seed_seq):
    time.sleep(600)
    return run_trial(config, seed_seq)  # pragma: no cover


class TestReproducibility:
    def test_same_seed_same_trialset(self, tiny_config):
        a = run_trials(tiny_config, 4)
        b = run_trials(tiny_config, 4)
        assert np.array_equal(a.factors, b.factors)

    def test_trials_are_independent(self, tiny_config):
        trials = run_trials(tiny_config, 6)
        assert len(set(r.runtime_ticks for r in trials.results)) > 1

    def test_different_root_seed(self, tiny_config):
        a = run_trials(tiny_config, 3)
        b = run_trials(tiny_config.with_updates(seed=99), 3)
        assert not np.array_equal(a.factors, b.factors)


class TestParallelism:
    def test_parallel_equals_serial(self, tiny_config):
        serial = run_trials(tiny_config, 4, n_jobs=1, cache=False)
        parallel = run_trials(tiny_config, 4, n_jobs=2, cache=False)
        assert np.array_equal(serial.factors, parallel.factors)

    def test_default_n_jobs_counts_logical_cpus(self):
        assert 1 <= default_n_jobs() <= 8

    def test_repro_n_jobs_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "3")
        assert default_n_jobs() == 3

    def test_repro_n_jobs_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "zero")
        with pytest.raises(ConfigError):
            default_n_jobs()
        monkeypatch.setenv("REPRO_N_JOBS", "0")
        with pytest.raises(ConfigError):
            default_n_jobs()


class TestFaultTolerance:
    def test_failure_is_structured(self, tiny_config):
        with pytest.raises(TrialError) as excinfo:
            run_trials(
                tiny_config, 3, trial_fn=_failing_trial, retries=0,
                cache=False,
            )
        err = excinfo.value
        assert len(err.failures) == 1
        failure = err.failures[0]
        assert failure.trial_index == 1
        assert failure.spawn_key == (1,)
        assert failure.seed_entropy == tiny_config.seed
        assert failure.attempts == 1
        assert "injected failure" in failure.error
        assert err.n_completed == 2  # siblings were not thrown away
        assert "trial 1" in str(err)

    def test_completed_siblings_are_cached(self, tiny_config, tmp_path):
        from repro.sim.cache import TrialCache

        cache = TrialCache(tmp_path)
        with pytest.raises(TrialError):
            run_trials(
                tiny_config, 4, trial_fn=_failing_trial, retries=1,
                cache=cache,
            )
        assert cache.stores == 3  # all non-failing trials preserved

    def test_retry_recovers_transient_failure(
        self, tiny_config, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        reset_run_stats()
        recovered = run_trials(
            tiny_config, 3, trial_fn=_flaky_trial, retries=1, cache=False
        )
        plain = run_trials(tiny_config, 3, cache=False)
        assert np.array_equal(recovered.factors, plain.factors)
        assert run_stats().retries == 1

    def test_retries_exhausted(self, tiny_config):
        with pytest.raises(TrialError) as excinfo:
            run_trials(
                tiny_config, 3, trial_fn=_failing_trial, retries=2,
                cache=False,
            )
        assert excinfo.value.failures[0].attempts == 3

    def test_progress_callback(self, tiny_config):
        events = []
        run_trials(tiny_config, 3, cache=False, progress=events.append)
        assert [e["trial"] for e in events] == [0, 1, 2]
        assert all(e["status"] == "ok" for e in events)

    @pytest.mark.slow
    def test_worker_crash_keeps_siblings(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """A hard worker death (os._exit) loses only the in-flight
        trials; one retry in a fresh pool completes the set with results
        bit-identical to a serial run."""
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        recovered = run_trials(
            tiny_config, 4, n_jobs=2, trial_fn=_crashing_trial, retries=2,
            cache=False,
        )
        serial = run_trials(tiny_config, 4, cache=False)
        assert np.array_equal(recovered.factors, serial.factors)

    @pytest.mark.slow
    def test_hung_workers_time_out(self, tiny_config):
        with pytest.raises(TrialError) as excinfo:
            run_trials(
                tiny_config, 2, n_jobs=2, trial_fn=_hanging_trial,
                retries=0, timeout=3.0, cache=False,
            )
        assert all("timed out" in f.error for f in excinfo.value.failures)


class TestAggregation:
    def test_factor_summary(self, tiny_config):
        trials = run_trials(tiny_config, 5)
        summary = trials.factor_summary()
        assert summary.n_trials == 5
        assert summary.min <= summary.mean <= summary.max
        assert trials.mean_factor == pytest.approx(summary.mean)

    def test_counter_means(self, tiny_config):
        config = tiny_config.with_updates(strategy="random_injection")
        trials = run_trials(config, 3)
        means = trials.counter_means()
        assert means["decision_rounds"] > 0

    def test_zero_trials_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            run_trials(tiny_config, 0)

    def test_negative_retries_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            run_trials(tiny_config, 1, retries=-1)

    def test_run_stats_accounting(self, tiny_config, tmp_path):
        from repro.sim.cache import TrialCache

        cache = TrialCache(tmp_path)
        reset_run_stats()
        run_trials(tiny_config, 3, cache=cache)
        run_trials(tiny_config, 3, cache=cache)
        stats = run_stats()
        assert stats.trials_run == 3
        assert stats.trials_cached == 3
        assert stats.trials_total == 6
        assert stats.trial_seconds > 0
        assert "3 cached" in stats.summary_line()


class TestSweep:
    def test_sweep_varies_field(self, tiny_config):
        sets = sweep(tiny_config, "n_tasks", [300, 600], n_trials=2)
        assert sets[0].config.n_tasks == 300
        assert sets[1].config.n_tasks == 600
        assert all(ts.n_trials == 2 for ts in sets)

    def test_sweep_points_are_decorrelated(self, tiny_config):
        """Regression: sweep points used to reuse the identical trial
        seed streams (with_updates preserves `seed`), silently running
        common random numbers at every parameter value.  A field that
        does not affect the dynamics exposes this directly."""
        sets = sweep(tiny_config, "max_ticks", [10**6, 2 * 10**6], 3)
        assert sets[0].config.seed != sets[1].config.seed
        assert not np.array_equal(sets[0].factors, sets[1].factors)

    def test_sweep_crn_opt_in(self, tiny_config):
        sets = sweep(
            tiny_config, "max_ticks", [10**6, 2 * 10**6], 3,
            common_random_numbers=True,
        )
        assert sets[0].config.seed == sets[1].config.seed == tiny_config.seed
        assert np.array_equal(sets[0].factors, sets[1].factors)

    def test_sweep_seeds_reproducible(self, tiny_config):
        a = sweep(tiny_config, "churn_rate", [0.0, 0.01], 2)
        b = sweep(tiny_config, "churn_rate", [0.0, 0.01], 2)
        for x, y in zip(a, b):
            assert x.config.seed == y.config.seed
            assert np.array_equal(x.factors, y.factors)

    def test_sweep_over_seed_field(self, tiny_config):
        sets = sweep(tiny_config, "seed", [1, 2], 2)
        assert [ts.config.seed for ts in sets] == [1, 2]
