"""Tests of the tick engine: termination, accounting, determinism."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim.engine import TickEngine, run_simulation
from repro.sim.trials import run_trial


class TestBaselineRun:
    def test_completes_and_conserves(self, small_config):
        result = run_simulation(small_config)
        assert result.completed
        assert result.total_consumed == small_config.n_tasks
        assert (result.final_loads == 0).all()

    def test_runtime_equals_max_initial_load(self, small_config):
        """With no strategy and one task/tick, the straggler defines the
        runtime exactly."""
        engine = TickEngine(small_config)
        max_load = int(engine.network_loads().max())
        result = engine.run()
        assert result.runtime_ticks == max_load

    def test_ideal_runtime(self, small_config):
        engine = TickEngine(small_config)
        assert engine.ideal_ticks == small_config.n_tasks / small_config.n_nodes

    def test_runtime_factor_above_one(self, small_config):
        result = run_simulation(small_config)
        assert result.runtime_factor > 1.0

    def test_zero_tasks_finishes_immediately(self):
        result = run_simulation(SimulationConfig(n_nodes=10, n_tasks=0, seed=1))
        assert result.completed
        assert result.runtime_ticks == 0


class TestDeterminism:
    def test_same_seed_same_everything(self, small_config):
        a = run_simulation(small_config)
        b = run_simulation(small_config)
        assert a.runtime_ticks == b.runtime_ticks
        assert a.counters == b.counters
        assert np.array_equal(a.final_loads, b.final_loads)

    def test_same_seed_same_sybil_run(self, small_config):
        config = small_config.with_updates(strategy="random_injection")
        a = run_simulation(config)
        b = run_simulation(config)
        assert a.runtime_ticks == b.runtime_ticks
        assert a.counters == b.counters

    def test_different_seeds_differ(self, small_config):
        a = run_simulation(small_config)
        b = run_simulation(small_config.with_updates(seed=123))
        assert a.runtime_ticks != b.runtime_ticks

    def test_trial_seed_override(self, small_config):
        seq = np.random.SeedSequence(5)
        a = run_trial(small_config, seq)
        b = run_trial(small_config, np.random.SeedSequence(5))
        assert a.runtime_ticks == b.runtime_ticks


class TestStepApi:
    def test_step_consumes(self, small_config):
        engine = TickEngine(small_config)
        busy = int((engine.network_loads() > 0).sum())
        consumed = engine.step()
        assert consumed == busy  # every node with work completes one task
        assert engine.tick == 1

    def test_step_after_finished_is_noop(self, tiny_config):
        engine = TickEngine(tiny_config)
        engine.run()
        tick = engine.tick
        assert engine.step() == 0
        assert engine.tick == tick

    def test_remaining_decreases_monotonically(self, tiny_config):
        engine = TickEngine(tiny_config)
        prev = engine.remaining
        while not engine.finished:
            engine.step()
            assert engine.remaining <= prev
            prev = engine.remaining


class TestMaxTicks:
    def test_abort_flagged(self):
        config = SimulationConfig(
            n_nodes=10, n_tasks=10_000, max_ticks=5, seed=1
        )
        result = run_simulation(config)
        assert not result.completed
        assert result.runtime_ticks == 5
        assert result.total_consumed < config.n_tasks


class TestSnapshots:
    def test_requested_ticks_recorded(self, small_config):
        config = small_config.with_updates(snapshot_ticks=(0, 5, 35))
        engine = TickEngine(config)
        result = engine.run()
        assert [h.tick for h in result.snapshots] == [0, 5, 35]
        # tick-0 snapshot holds the full workload
        assert result.snapshots[0].stats.total == config.n_tasks

    def test_snapshot_loads_raw(self, small_config):
        config = small_config.with_updates(snapshot_ticks=(0,))
        engine = TickEngine(config)
        engine.run()
        loads = engine.snapshot_loads()[0]
        assert loads.sum() == config.n_tasks

    def test_missing_snapshot_raises(self, small_config):
        result = run_simulation(
            small_config.with_updates(snapshot_ticks=(0,))
        )
        with pytest.raises(KeyError):
            result.snapshot_at(99)


class TestTimeseries:
    def test_series_collected(self, tiny_config):
        config = tiny_config.with_updates(collect_timeseries=True)
        result = run_simulation(config)
        series = result.timeseries
        assert len(series) == result.runtime_ticks
        arrays = series.as_arrays()
        assert int(arrays["consumed"].sum()) == config.n_tasks
        assert arrays["remaining"][-1] == 0
        # utilization starts near 1 (most nodes busy) and decays
        util = series.utilization()
        assert util[0] > 0.7
        assert util[-1] <= util[0]

    def test_disabled_by_default(self, tiny_config):
        assert run_simulation(tiny_config).timeseries is None


class TestHeterogeneous:
    def test_strength_consumption_uses_capacity(self):
        config = SimulationConfig(
            n_nodes=50,
            n_tasks=5000,
            heterogeneous=True,
            work_measurement="strength",
            seed=3,
        )
        engine = TickEngine(config)
        capacity = engine.owners.initial_capacity()
        assert capacity > 50  # strengths range 1..5
        assert engine.ideal_ticks == config.n_tasks / capacity
        result = engine.run()
        assert result.completed
        assert result.total_consumed == config.n_tasks

    def test_first_tick_consumes_at_most_capacity(self):
        config = SimulationConfig(
            n_nodes=50,
            n_tasks=50_000,
            heterogeneous=True,
            work_measurement="strength",
            seed=3,
        )
        engine = TickEngine(config)
        consumed = engine.step()
        assert consumed <= engine.owners.initial_capacity()
