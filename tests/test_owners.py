"""Tests for the physical-owner registry."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.sim.owners import OwnerRegistry


def registry(**overrides) -> OwnerRegistry:
    config = SimulationConfig(n_nodes=50, n_tasks=1000, **overrides)
    return OwnerRegistry(config, np.random.default_rng(0))


class TestConstruction:
    def test_homogeneous_defaults(self):
        reg = registry()
        assert reg.n_total == 50  # no waiting pool without churn
        assert (reg.strength == 1).all()
        assert (reg.rate == 1).all()
        assert (reg.sybil_cap == 5).all()
        assert reg.n_in_network == 50

    def test_churn_creates_waiting_pool(self):
        reg = registry(churn_rate=0.01)
        assert reg.n_total == 100
        assert reg.pool_size == 50
        assert reg.n_in_network == 50
        assert reg.waiting_indices.size == 50

    def test_heterogeneous_strengths(self):
        reg = registry(heterogeneous=True, max_sybils=5)
        assert reg.strength.min() >= 1
        assert reg.strength.max() <= 5
        assert len(np.unique(reg.strength)) > 1
        # sybil budget equals strength in heterogeneous networks
        assert (reg.sybil_cap == reg.strength).all()

    def test_strength_work_measurement(self):
        reg = registry(heterogeneous=True, work_measurement="strength")
        assert (reg.rate == reg.strength).all()

    def test_one_task_work_measurement_hetero(self):
        reg = registry(heterogeneous=True, work_measurement="one")
        assert (reg.rate == 1).all()


class TestCapacity:
    def test_homogeneous_capacity(self):
        assert registry().network_capacity() == 50
        assert registry().initial_capacity() == 50

    def test_initial_capacity_excludes_pool(self):
        reg = registry(churn_rate=0.5)
        assert reg.initial_capacity() == 50


class TestSybilAccounting:
    def test_register_until_cap(self):
        reg = registry(max_sybils=2)
        assert reg.can_add_sybil(0)
        reg.register_sybil(0)
        reg.register_sybil(0)
        assert not reg.can_add_sybil(0)
        with pytest.raises(SimulationError):
            reg.register_sybil(0)

    def test_unregister(self):
        reg = registry()
        reg.register_sybil(3)
        reg.unregister_sybils(3, 1)
        assert reg.n_sybils[3] == 0
        with pytest.raises(SimulationError):
            reg.unregister_sybils(3, 1)


class TestChurnTransitions:
    def test_leave_and_join(self):
        reg = registry(churn_rate=0.1)
        reg.register_sybil(0)
        reg.leave_network(0)
        assert not reg.in_network[0]
        assert reg.n_sybils[0] == 0
        with pytest.raises(SimulationError):
            reg.leave_network(0)
        reg.join_network(0, main_id=123)
        assert reg.in_network[0]
        assert int(reg.main_id[0]) == 123
        with pytest.raises(SimulationError):
            reg.join_network(0, main_id=5)

    def test_validate_passes_fresh(self):
        registry(churn_rate=0.1).validate()
