"""Neighbor Injection strategies (§IV-C).

**Neighbor Injection** restricts Sybil placement to a node's tracked
successors, trading balance quality for locality (much less join churn,
no long-range traffic).  An under-utilized node estimates which of its
``numSuccessors`` successors has the most work — *without querying* — by
assuming the successor with the **largest responsibility range** received
the most tasks, and injects a Sybil into that range.

**Smart Neighbor Injection** replaces the estimate with actual workload
*queries* to each successor (one message each, counted) and splits the
successor holding the most remaining tasks.  The paper finds this
improves the runtime factor by ≈1.2 on average at the price of messages.

Both variants honour the Sybil budget, create at most one Sybil per node
per round, and retire Sybils of idle nodes (same local rule as random
injection — a node with Sybils but no work pulls them back).

The optional ``avoid_failed_ranges`` config implements the paper's
suggestion to "mark that range as invalid ... to prevent repeated
attempts in the same range": a (owner → arc-start ids) memory of ranges
whose injection acquired nothing.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategy import NetworkView, Strategy

__all__ = ["NeighborInjection", "SmartNeighborInjection"]


class NeighborInjection(Strategy):
    """Inject into the successor with the largest *estimated* workload."""

    name = "neighbor_injection"
    smart = False

    def __init__(self) -> None:
        # owner -> set of arc-start ids where an injection acquired nothing
        self._failed_ranges: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    def decide(self, view: NetworkView) -> None:
        threshold = view.config.sybil_threshold
        loads = view.owner_loads()
        for owner in self.shuffled(view, view.network_owners()):
            owner = int(owner)
            load = int(loads[owner])
            if load == 0 and view.n_sybils(owner) > 0:
                view.retire_sybils(owner)
            if load > threshold or not view.can_add_sybil(owner):
                continue
            target = self._pick_target(view, owner)
            if target is None:
                view.stats.actions_skipped += 1
                continue
            acquired = view.create_sybil_in_slot_arc(owner, target)
            if acquired is None:
                view.stats.actions_skipped += 1
            elif acquired == 0 and view.config.avoid_failed_ranges:
                # remember the arc (by its start id) as a dead end
                pred_slot = view.predecessor_slots(target, 1)[0]
                self._failed_ranges.setdefault(owner, set()).add(
                    view.slot_id(int(pred_slot))
                )

    # ------------------------------------------------------------------
    def _candidate_slots(self, view: NetworkView, owner: int) -> np.ndarray:
        """The owner's tracked successors, minus its own identities and
        any ranges previously marked invalid."""
        base = view.main_slot(owner)
        succ = view.successor_slots(base, view.config.num_successors)
        keep = [s for s in succ.tolist() if view.slot_owner(int(s)) != owner]
        if view.config.avoid_failed_ranges and owner in self._failed_ranges:
            failed = self._failed_ranges[owner]
            keep = [
                s
                for s in keep
                if view.slot_id(int(view.predecessor_slots(int(s), 1)[0]))
                not in failed
            ]
        # dtype=object: slots are ring indices in the tick simulator but
        # full-width node identifiers in the protocol adapter
        return np.asarray(keep, dtype=object)

    def _pick_target(self, view: NetworkView, owner: int) -> int | None:
        candidates = self._candidate_slots(view, owner)
        if candidates.size == 0:
            return None
        if self.smart:
            # one workload query per successor, then split the heaviest
            view.count_messages(int(candidates.size))
            counts = np.array(
                [view.slot_count(int(s)) for s in candidates], dtype=np.int64
            )
            if counts.max() <= 0:
                return None
            return int(candidates[int(np.argmax(counts))])
        # estimate: biggest range <=> most potential tasks; no messages
        gaps = np.array(
            [view.slot_gap(int(s)) for s in candidates], dtype=np.float64
        )
        return int(candidates[int(np.argmax(gaps))])


class SmartNeighborInjection(NeighborInjection):
    """Neighbor injection that *queries* successors' true workloads."""

    name = "smart_neighbor_injection"
    smart = True
