"""Induced Churn strategy (§IV-A).

The strategy relies *solely* on churn to balance load: every tick each
in-network node leaves with probability ``churnRate`` (handing its tasks
to its successor via the active-backup mechanism), and each node in the
waiting pool joins with the same probability, landing at a random
identifier and immediately acquiring the work in its new range.

The churn process itself is a property of the network, so it is executed
by the engine's churn phase (which runs whenever ``churn_rate > 0``,
allowing churn to be layered under other strategies for the §VI-B-1
ablation).  This class exists so "churn" is a first-class strategy in the
registry and so configuration mistakes are caught loudly: selecting the
churn strategy with ``churn_rate == 0`` is the baseline in disguise.
"""

from __future__ import annotations

import warnings

from repro.core.strategy import NetworkView, Strategy

__all__ = ["InducedChurn"]


class InducedChurn(Strategy):
    """Load balancing by (self-)induced churn alone — no Sybils."""

    name = "churn"

    def on_attach(self, view: NetworkView) -> None:
        if view.config.churn_rate <= 0:
            warnings.warn(
                "InducedChurn selected with churn_rate == 0; this is "
                "identical to the no-strategy baseline",
                stacklevel=2,
            )

    def decide(self, view: NetworkView) -> None:
        # All the action happens in the engine's churn phase.
        return None
