"""Invitation strategy (§IV-D) — the reactive counterpart.

Where random/neighbor injection are *proactive* (idle nodes hunt for
work), Invitation is *reactive*: a node that finds itself **overburdened**
announces it needs help to its tracked predecessors — the very nodes that
would be injecting Sybils at it under Neighbor Injection.  Among the
predecessors whose workload is at or below ``sybilThreshold`` (and who
still have Sybil budget), the **least loaded** one creates a Sybil inside
the inviter's range and takes over part of it.  If no predecessor
qualifies, the invitation is refused and nothing happens.

Overburden test: the paper says nodes use the ``sybilThreshold`` parameter
to decide they are overburdened, while also assuming every node knows the
job's task count and the rough network size (§V).  We therefore treat a
node as overburdened when its workload exceeds
``invite_factor × (total_tasks / initial_nodes)`` — i.e. it holds more
than its fair share (``invite_factor`` defaults to 1; see DESIGN.md).

Messages are only spent when someone is actually overloaded — one
announcement per overburdened node per round plus one reply per contacted
predecessor — which is why the paper credits this strategy with the
lowest maintenance cost of the Sybil family.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.strategy import NetworkView, Strategy

__all__ = ["Invitation"]


class Invitation(Strategy):
    """Overburdened nodes invite their least-loaded predecessor to help."""

    name = "invitation"

    def __init__(self) -> None:
        self._overburden_threshold: float = math.inf

    def on_attach(self, view: NetworkView) -> None:
        fair_share = view.total_tasks / max(view.initial_nodes, 1)
        self._overburden_threshold = view.config.invite_factor * fair_share

    # ------------------------------------------------------------------
    def decide(self, view: NetworkView) -> None:
        threshold = view.config.sybil_threshold
        loads = view.owner_loads()
        helped_this_round: set[int] = set()

        overloaded = view.network_owners()
        overloaded = overloaded[
            loads[overloaded] > self._overburden_threshold
        ]
        for inviter in self.shuffled(view, overloaded):
            inviter = int(inviter)
            target = view.heaviest_slot(inviter)
            preds = view.predecessor_slots(
                target, view.config.num_successors
            )
            # the announcement reaches every tracked predecessor
            view.count_messages(int(preds.size))
            view.stats.invitations_sent += 1

            helper = self._pick_helper(
                view, inviter, preds, threshold, helped_this_round
            )
            if helper is None:
                view.stats.invitations_refused += 1
                continue
            acquired = view.create_sybil_in_slot_arc(helper, target)
            if acquired is None:
                view.stats.invitations_refused += 1
                continue
            helped_this_round.add(helper)

    # ------------------------------------------------------------------
    def _pick_helper(
        self,
        view: NetworkView,
        inviter: int,
        pred_slots: np.ndarray,
        threshold: int,
        helped: set[int],
    ) -> int | None:
        """Least-loaded predecessor owner at/below the threshold with
        Sybil budget that has not already helped this round."""
        best_owner: int | None = None
        best_load = math.inf
        seen: set[int] = set()
        for slot in pred_slots.tolist():
            owner = view.slot_owner(int(slot))
            if owner == inviter or owner in seen:
                continue
            seen.add(owner)
            if owner in helped or not view.can_add_sybil(owner):
                continue
            load = view.live_owner_load(owner)
            if load <= threshold and load < best_load:
                best_owner = owner
                best_load = load
        return best_owner
