"""Baseline: no load balancing at all.

The paper compares every strategy against "a baseline network of the same
size and initial configuration of nodes [that] never uses a strategy, nor
experiences any churn" (§VI).  Nodes simply consume the tasks they were
dealt; the runtime is governed by the most overloaded node.
"""

from __future__ import annotations

from repro.core.strategy import NetworkView, Strategy

__all__ = ["NoStrategy"]


class NoStrategy(Strategy):
    """Do nothing every decision round."""

    name = "none"

    def decide(self, view: NetworkView) -> None:
        return None
