"""Strategy registry: name → factory, shared by config, CLI and engine."""

from __future__ import annotations

from typing import Callable

from repro.core.churn import InducedChurn
from repro.core.extensions import (
    Relocation,
    StrengthAwareInvitation,
    StrengthProportionalInjection,
)
from repro.core.invitation import Invitation
from repro.core.neighbor import NeighborInjection, SmartNeighborInjection
from repro.core.none_strategy import NoStrategy
from repro.core.random_injection import RandomInjection
from repro.core.strategy import Strategy
from repro.errors import StrategyError
from repro.config import SimulationConfig

__all__ = ["STRATEGIES", "make_strategy", "strategy_names"]

STRATEGIES: dict[str, Callable[[], Strategy]] = {
    NoStrategy.name: NoStrategy,
    InducedChurn.name: InducedChurn,
    RandomInjection.name: RandomInjection,
    NeighborInjection.name: NeighborInjection,
    SmartNeighborInjection.name: SmartNeighborInjection,
    Invitation.name: Invitation,
    StrengthAwareInvitation.name: StrengthAwareInvitation,
    StrengthProportionalInjection.name: StrengthProportionalInjection,
    Relocation.name: Relocation,
}


def strategy_names() -> tuple[str, ...]:
    return tuple(STRATEGIES)


def make_strategy(name_or_config: str | SimulationConfig) -> Strategy:
    """Instantiate a strategy by name or from a simulation config."""
    name = (
        name_or_config.strategy
        if isinstance(name_or_config, SimulationConfig)
        else name_or_config
    )
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise StrategyError(
            f"unknown strategy {name!r}; known: {sorted(STRATEGIES)}"
        ) from None
    return factory()
