"""The paper's contribution: autonomous load-balancing strategies.

Five concrete strategies plus the no-op baseline, all speaking the
:class:`~repro.core.strategy.NetworkView` local-information interface:

============================  =============================  ==========
Registry name                 Class                          Paper §
============================  =============================  ==========
``none``                      :class:`NoStrategy`            VI baseline
``churn``                     :class:`InducedChurn`          IV-A
``random_injection``          :class:`RandomInjection`       IV-B
``neighbor_injection``        :class:`NeighborInjection`     IV-C
``smart_neighbor_injection``  :class:`SmartNeighborInjection` IV-C
``invitation``                :class:`Invitation`            IV-D
============================  =============================  ==========
"""

from repro.core.churn import InducedChurn
from repro.core.invitation import Invitation
from repro.core.neighbor import NeighborInjection, SmartNeighborInjection
from repro.core.none_strategy import NoStrategy
from repro.core.random_injection import RandomInjection
from repro.core.registry import STRATEGIES, make_strategy, strategy_names
from repro.core.strategy import NetworkView, RoundStats, Strategy

__all__ = [
    "Strategy",
    "NetworkView",
    "RoundStats",
    "NoStrategy",
    "InducedChurn",
    "RandomInjection",
    "NeighborInjection",
    "SmartNeighborInjection",
    "Invitation",
    "STRATEGIES",
    "make_strategy",
    "strategy_names",
]
