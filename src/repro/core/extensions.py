"""Extension strategies implementing the paper's §VII future work.

The conclusion sketches two avenues we implement and evaluate:

1. *"An avenue for future work could consider the node strength as a
   factor."*  Two strength-aware variants:

   * :class:`StrengthAwareInvitation` — the inviter still picks among
     qualifying predecessors, but prefers the **strongest** helper
     (ties broken by least load), so work migrates toward machines that
     can actually chew through it.
   * :class:`StrengthProportionalInjection` — random injection where a
     node volunteers with probability ``strength / maxSybils`` each
     round; weak nodes stop vacuuming up work they will sit on.

2. *"if we removed the assumption that nodes cannot choose their own ID
   ... this presents even more strategies"* — realized as
   :class:`Relocation`: an idle node **moves its main identity** into
   the largest responsibility arc among its tracked successors instead
   of adding a Sybil.  No extra identities, no Sybil budget: the ring
   itself re-spaces toward the work.

The ``ext_future_work`` experiment compares all three against the
paper's strategies.  Honest headline: in this simulation model strength
awareness mainly *stabilizes* heterogeneous runtimes (markedly lower
trial variance) rather than improving the mean — evidence that the
heterogeneity penalty the paper observed is largely structural (the
capacity-weighted ideal is simply harder to hit when per-node rates
differ), not a fixable helper-selection artifact.  Relocation, by
contrast, is an unqualified win homogeneously: within ~0.3x of random
injection with zero Sybil identities.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbor import NeighborInjection
from repro.core.invitation import Invitation
from repro.core.strategy import NetworkView, Strategy

__all__ = [
    "StrengthAwareInvitation",
    "StrengthProportionalInjection",
    "Relocation",
]


class StrengthAwareInvitation(Invitation):
    """Invitation that prefers the strongest qualifying helper."""

    name = "strength_invitation"

    def _pick_helper(
        self,
        view: NetworkView,
        inviter: int,
        pred_slots: np.ndarray,
        threshold: int,
        helped: set[int],
    ) -> int | None:
        best_owner: int | None = None
        best_key: tuple[float, float] | None = None
        seen: set[int] = set()
        for slot in pred_slots.tolist():
            owner = view.slot_owner(int(slot))
            if owner == inviter or owner in seen:
                continue
            seen.add(owner)
            if owner in helped or not view.can_add_sybil(owner):
                continue
            load = view.live_owner_load(owner)
            if load > threshold:
                continue
            # maximize strength, then minimize load
            key = (-float(view.owner_strength(owner)), float(load))
            if best_key is None or key < best_key:
                best_key = key
                best_owner = owner
        return best_owner


class StrengthProportionalInjection(Strategy):
    """Random injection gated by relative strength.

    Each decision round an under-utilized node volunteers a Sybil with
    probability ``strength / maxSybils`` (1.0 for the strongest tier).
    In a homogeneous deployment every node is the "strongest tier", so
    the strategy reduces exactly to RandomInjection.
    """

    name = "proportional_injection"

    def decide(self, view: NetworkView) -> None:
        threshold = view.config.sybil_threshold
        scale = (
            float(max(view.config.max_sybils, 1))
            if view.config.heterogeneous
            else 1.0
        )
        loads = view.owner_loads()
        for owner in self.shuffled(view, view.network_owners()):
            owner = int(owner)
            load = int(loads[owner])
            if load == 0 and view.n_sybils(owner) > 0:
                view.retire_sybils(owner)
            if load > threshold or not view.can_add_sybil(owner):
                continue
            p = view.owner_strength(owner) / scale
            # short-circuit at p >= 1 so the homogeneous case consumes no
            # extra randomness and is bit-identical to RandomInjection
            if p >= 1.0 or view.rng.random() <= p:
                view.create_sybil_random(owner)


class Relocation(NeighborInjection):
    """Idle nodes *move* (choose a new ID) instead of adding Sybils.

    Reuses NeighborInjection's target selection (largest estimated range
    among tracked successors) but relocates the node's main identity
    there.  The node's current tasks are handed to its successor first —
    with a zero ``sybilThreshold`` the mover is idle anyway, so nothing
    transfers in practice.
    """

    name = "relocation"
    smart = False

    def decide(self, view: NetworkView) -> None:
        threshold = view.config.sybil_threshold
        loads = view.owner_loads()
        for owner in self.shuffled(view, view.network_owners()):
            owner = int(owner)
            if int(loads[owner]) > threshold:
                continue
            target = self._pick_target(view, owner)
            if target is None:
                view.stats.actions_skipped += 1
                continue
            moved = view.relocate_main(owner, target)
            if moved is None:
                view.stats.actions_skipped += 1
