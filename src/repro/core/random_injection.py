"""Random Injection strategy (§IV-B) — the paper's best performer.

Every decision round (the paper checks every 5 ticks), each node compares
its total workload (across its main identity and its Sybils) against
``sybilThreshold``:

* a node with **at least one Sybil but no work** has its Sybils quit the
  network — they were not helping where they were;
* a node at or below the threshold that still has Sybil budget
  (``maxSybils`` in a homogeneous network, ``strength`` in a heterogeneous
  one) creates **one** Sybil at a uniformly **random** identifier, taking
  over whatever unfinished work falls between the Sybil and its new
  predecessor.

Creating at most one Sybil per round "avoid[s] overwhelming the network".
A retired-then-idle node immediately probes a fresh random address next
round, which is exactly the roaming behaviour that lets under-utilized
nodes find the remaining hot spots.
"""

from __future__ import annotations

from repro.core.strategy import NetworkView, Strategy

__all__ = ["RandomInjection"]


class RandomInjection(Strategy):
    """Under-utilized nodes inject Sybils at random identifiers."""

    name = "random_injection"

    def decide(self, view: NetworkView) -> None:
        threshold = view.config.sybil_threshold
        loads = view.owner_loads()
        for owner in self.shuffled(view, view.network_owners()):
            owner = int(owner)
            load = int(loads[owner])
            if load == 0 and view.n_sybils(owner) > 0:
                view.retire_sybils(owner)
            if load <= threshold and view.can_add_sybil(owner):
                view.create_sybil_random(owner)
