"""Strategy interface for autonomous DHT load balancing.

A strategy encodes how individual nodes decide — *from local information
only* — when and where to create Sybil identities (or do nothing and let
churn act).  Strategies never see global state directly; they interact
with the network through a :class:`NetworkView`, whose API deliberately
exposes only what the paper's §V assumptions grant a node:

* its own workload and Sybil census,
* the identities/ranges/loads of its tracked successors and predecessors
  (loads only via explicit *queries*, which are counted as messages),
* the ability to search out an unoccupied identifier in a range and join
  there with a Sybil (shown to be cheap in the authors' prior work).

The same interface is implemented by the fast tick simulator
(:class:`repro.sim.view.SimView`); the protocol-level Chord stack uses the
same decision logic through its own adapter.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.config import SimulationConfig

__all__ = ["NetworkView", "Strategy", "RoundStats"]


@dataclass
class RoundStats:
    """Bookkeeping for one decision round (every ``decision_interval`` ticks).

    These feed the maintenance-cost accounting the paper discusses
    qualitatively: proactive strategies spend messages probing; reactive
    ones only talk when overloaded.
    """

    sybils_created: int = 0
    sybils_retired: int = 0
    tasks_acquired: int = 0
    messages: int = 0
    invitations_sent: int = 0
    invitations_refused: int = 0
    actions_skipped: int = 0
    relocations: int = 0

    def merge_into(self, totals: dict[str, int]) -> None:
        for name in (
            "sybils_created",
            "sybils_retired",
            "tasks_acquired",
            "messages",
            "invitations_sent",
            "invitations_refused",
            "actions_skipped",
            "relocations",
        ):
            totals[name] = totals.get(name, 0) + getattr(self, name)


class NetworkView(abc.ABC):
    """What a deciding node may see and do.  See module docstring."""

    # -- static context ------------------------------------------------
    @property
    @abc.abstractmethod
    def config(self) -> SimulationConfig: ...

    @property
    @abc.abstractmethod
    def rng(self) -> np.random.Generator: ...

    @property
    @abc.abstractmethod
    def total_tasks(self) -> int:
        """Job size — §V assumes nodes know the task count for a job."""

    @property
    @abc.abstractmethod
    def initial_nodes(self) -> int:
        """Initial network size (used for the invite-threshold estimate)."""

    # -- owner census ----------------------------------------------------
    @abc.abstractmethod
    def network_owners(self) -> np.ndarray:
        """Indices of physical nodes currently in the network."""

    @abc.abstractmethod
    def owner_loads(self) -> np.ndarray:
        """Per-owner remaining workload snapshot for this decision round."""

    @abc.abstractmethod
    def live_owner_load(self, owner: int) -> int:
        """Current (post-actions) workload of one owner."""

    @abc.abstractmethod
    def n_sybils(self, owner: int) -> int: ...

    @abc.abstractmethod
    def can_add_sybil(self, owner: int) -> bool: ...

    def join_budget_remaining(self, owner: int) -> int | None:
        """Remaining SybilControl-style join budget, or None when the
        join-cost defense is off.  Non-abstract: backends without the
        defense (the protocol Chord adapter) inherit the None default;
        the tick simulator overrides it (see AdversaryModel.join_cost).
        """
        return None

    # -- topology (local only) -------------------------------------------
    @abc.abstractmethod
    def main_slot(self, owner: int) -> int: ...

    @abc.abstractmethod
    def heaviest_slot(self, owner: int) -> int:
        """The owner's slot holding the most remaining tasks."""

    @abc.abstractmethod
    def successor_slots(self, slot: int, k: int) -> np.ndarray: ...

    @abc.abstractmethod
    def predecessor_slots(self, slot: int, k: int) -> np.ndarray: ...

    @abc.abstractmethod
    def slot_owner(self, slot: int) -> int: ...

    @abc.abstractmethod
    def slot_count(self, slot: int) -> int:
        """Remaining tasks held by a slot.  Reading another owner's slot
        count models a workload *query* — call :meth:`count_messages`."""

    @abc.abstractmethod
    def slot_gap(self, slot: int) -> int:
        """Responsibility-arc length of a slot — observable for free from
        the successor list (ids are known locally, no query needed)."""

    @abc.abstractmethod
    def slot_id(self, slot: int) -> int: ...

    # -- actions -----------------------------------------------------------
    @abc.abstractmethod
    def create_sybil_random(self, owner: int) -> int:
        """Inject a Sybil at a uniformly random free identifier.

        Returns the number of tasks acquired.
        """

    @abc.abstractmethod
    def create_sybil_in_slot_arc(self, owner: int, slot: int) -> int | None:
        """Inject a Sybil inside ``slot``'s responsibility arc, placed per
        ``config.placement``.  Returns tasks acquired, or None when the
        arc has no free identifier (action skipped)."""

    @abc.abstractmethod
    def retire_sybils(self, owner: int) -> int:
        """Remove all of the owner's Sybils; returns how many quit."""

    @abc.abstractmethod
    def owner_strength(self, owner: int) -> int:
        """The deciding node's own strength (local information)."""

    @abc.abstractmethod
    def relocate_main(self, owner: int, target_slot: int) -> int | None:
        """Move the owner's *main identity* into ``target_slot``'s arc
        (the §VII "choose your own ID" extension).  Returns tasks
        acquired at the new position, or None when no identifier was
        available."""

    # -- accounting ----------------------------------------------------
    @abc.abstractmethod
    def count_messages(self, n: int = 1) -> None:
        """Record ``n`` strategy-related messages (queries, invitations)."""

    @property
    @abc.abstractmethod
    def stats(self) -> RoundStats: ...


class Strategy(abc.ABC):
    """Base class for the paper's load-balancing strategies.

    Subclasses implement :meth:`decide`, invoked by the engine every
    ``decision_interval`` ticks.  A strategy must only use the
    :class:`NetworkView` API — the engine enforces per-owner Sybil caps
    and the one-new-Sybil-per-round rule is the strategy's duty (all
    shipped strategies honour it).
    """

    #: registry key; subclasses override
    name: ClassVar[str] = "abstract"

    def on_attach(self, view: NetworkView) -> None:
        """One-time hook before the first tick (e.g. precompute thresholds)."""

    @abc.abstractmethod
    def decide(self, view: NetworkView) -> None:
        """Run one decision round: every node checks its local state and acts."""

    # ------------------------------------------------------------------
    @staticmethod
    def shuffled(view: NetworkView, owners: np.ndarray) -> np.ndarray:
        """Randomize actor order — nodes act concurrently in reality, so no
        deterministic priority should leak into the simulation."""
        return view.rng.permutation(owners)


@dataclass
class StrategyInfo:
    """Metadata used by the registry/CLI listing."""

    name: str
    proactive: bool
    uses_sybils: bool
    description: str = field(default="")
