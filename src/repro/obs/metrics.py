"""Counters/gauges registry unifying a run's accounting.

The repo grew three unrelated pockets of run accounting: the engine's
``counters`` dict (sybils created, churn joins/leaves, crashes, tasks
lost...), the trial runner's :class:`~repro.sim.trials.RunStats`
(run/cached/failed, retries, wall-clock), and the failure-model
counters folded into the engine's.  :class:`MetricsRegistry` gives them
one namespaced home so the run manifest can carry a single ``metrics``
block.

Conventions:

* **counters** are monotonically accumulated integers, **gauges** are
  point-in-time floats (timings, averages).
* names are dotted: ``sim.*`` for engine counters, ``trials.*`` for
  runner stats, ``profile.*`` for phase timings.
* ``as_dict()`` sorts keys, so serialized output is deterministic.

Nothing here feeds back into simulation state; the registry is written
after results exist.  ``result_fingerprint`` is the bit-identity probe
used by the fingerprint tests and the observability smoke check.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # avoid an import cycle at runtime
    from repro.obs.profile import PhaseProfiler
    from repro.sim.results import SimulationResult
    from repro.sim.trials import RunStats

__all__ = ["MetricsRegistry", "collect_run_metrics", "result_fingerprint"]


class MetricsRegistry:
    """Flat, namespaced counters and gauges with deterministic export."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    def merge_counters(
        self, mapping: Mapping[str, Any], *, prefix: str = ""
    ) -> None:
        for key, value in mapping.items():
            self.inc(f"{prefix}{key}", int(value))

    def merge_gauges(
        self, mapping: Mapping[str, Any], *, prefix: str = ""
    ) -> None:
        for key, value in mapping.items():
            self.gauge(f"{prefix}{key}", float(value))

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """``{"counters": {...}, "gauges": {...}}`` with sorted keys."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
        }

    def summary_line(self) -> str:
        n = len(self._counters) + len(self._gauges)
        if not n:
            return "metrics: empty"
        return (
            f"metrics: {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges"
        )


def collect_run_metrics(
    *,
    engine_counters: Mapping[str, int] | None = None,
    run_stats: "RunStats | None" = None,
    profiler: "PhaseProfiler | None" = None,
    fabric: "MetricsRegistry | None" = None,
) -> MetricsRegistry:
    """Fold the run's accounting sources into one registry.

    Engine counters land under ``sim.``, trial-runner stats under
    ``trials.`` (integer fields as counters, timings as gauges), and
    profiler phase times under ``profile.`` (``*_calls`` counters,
    ``*_seconds`` gauges).  A fabric broker's registry (already
    ``fabric.``-namespaced: queue depth gauges, done/cached/failed/
    retry counters) merges verbatim.  Every source is optional — pass
    what the run actually had.
    """
    registry = MetricsRegistry()
    if engine_counters is not None:
        registry.merge_counters(engine_counters, prefix="sim.")
    if fabric is not None:
        exported = fabric.as_dict()
        registry.merge_counters(exported["counters"])
        registry.merge_gauges(exported["gauges"])
    if run_stats is not None:
        stats = run_stats.as_dict()
        for key, value in stats.items():
            name = f"trials.{key}"
            if key.endswith("_seconds"):
                registry.gauge(name, float(value))
            else:
                registry.inc(name, int(value))
    if profiler is not None and getattr(profiler, "enabled", False):
        for name, seconds in profiler.seconds.items():
            registry.gauge(f"profile.{name}_seconds", seconds)
            registry.inc(f"profile.{name}_calls", profiler.calls.get(name, 0))
        registry.gauge("profile.total_seconds", profiler.total_seconds())
    return registry


def result_fingerprint(result: "SimulationResult") -> str:
    """16-hex-char digest of the final load vector.

    The canonical bit-identity probe: two runs are "the same result"
    iff their fingerprints match.  Matches the pinned values in
    ``tests/test_failure_model.py``.
    """
    return hashlib.sha256(
        np.ascontiguousarray(result.final_loads).tobytes()
    ).hexdigest()[:16]
