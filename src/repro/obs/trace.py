"""Event tracing: in-memory recorder and streaming JSONL sink.

Both classes speak the same sink protocol the engine emits to —
``record(tick, kind, **fields)`` — so either can be passed as
``TickEngine(..., trace=...)``:

* :class:`TraceRecorder` keeps every event in memory.  Right for tests
  and small diagnostic runs where you want to filter and assert on the
  event list afterwards.
* :class:`JsonlTraceSink` streams events straight to a file, one JSON
  object per line, holding at most ``buffer_events`` encoded lines in
  memory.  Right for production-scale runs where the event stream is
  far larger than RAM.  Supports kind and tick-window filters so a
  trace of a million-tick run can capture only what you care about.

``read_trace_jsonl`` reads a sink's output back into
:class:`TraceEvent` objects, completing the write → read round trip.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Protocol

from repro.obs.serialize import jsonable

__all__ = [
    "JsonlTraceSink",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "read_trace_jsonl",
]


class TraceSink(Protocol):
    """What the engine needs from a trace destination."""

    def record(self, tick: int, kind: str, **fields: Any) -> None: ...


@dataclass(frozen=True)
class TraceEvent:
    """One discrete simulation event."""

    tick: int
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def as_dict(self) -> dict[str, Any]:
        return {"tick": self.tick, "kind": self.kind, **self.fields}


class TraceRecorder:
    """Append-only in-memory event log with filtering and summarization."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------------
    def record(self, tick: int, kind: str, **fields: Any) -> None:
        self.events.append(TraceEvent(tick=tick, kind=kind, fields=fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def at_tick(self, tick: int) -> list[TraceEvent]:
        return [e for e in self.events if e.tick == tick]

    def kinds(self) -> Counter[str]:
        """Event counts by kind."""
        return Counter(e.kind for e in self.events)

    def first(self, kind: str) -> TraceEvent | None:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line (ingestible by any log tooling).

        Numpy scalars and arrays in event fields are coerced via
        :func:`~repro.obs.serialize.jsonable` — emitters hand us
        ``np.int64`` owners all the time and that must not abort an
        export.
        """
        return "\n".join(
            json.dumps(jsonable(e.as_dict())) for e in self.events
        )

    def summary(self) -> str:
        counts = self.kinds()
        if not counts:
            return "trace: no events"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        last = self.events[-1].tick if self.events else 0
        return f"trace: {len(self.events)} events through tick {last} ({parts})"


class JsonlTraceSink:
    """Streaming trace sink: events go to disk, not to a growing list.

    Parameters
    ----------
    path:
        Output file; opened for writing immediately, truncating any
        previous trace.
    kinds:
        If given, only events whose kind is in this set are written.
    tick_range:
        If given, an inclusive ``(first, last)`` tick window; events
        outside it are dropped.
    buffer_events:
        Encoded lines held in memory before a write+flush.  This is the
        sink's entire memory footprint — independent of run length.

    The per-kind counts of *written* events stay available in
    :attr:`by_kind` after closing, so summaries don't require re-reading
    the file.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        kinds: Iterable[str] | None = None,
        tick_range: tuple[int, int] | None = None,
        buffer_events: int = 256,
    ) -> None:
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self.path = Path(path)
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._tick_range = tick_range
        self._buffer_events = buffer_events
        self._buffer: list[str] = []
        self.n_written = 0
        self.by_kind: Counter[str] = Counter()
        self._fh: IO[str] | None = self.path.open("w")

    # ------------------------------------------------------------------
    def record(self, tick: int, kind: str, **fields: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        if self._tick_range is not None:
            first, last = self._tick_range
            if not first <= tick <= last:
                return
        if self._fh is None:
            raise ValueError(f"trace sink {self.path} is closed")
        payload: dict[str, Any] = {"tick": tick, "kind": kind, **fields}
        self._buffer.append(json.dumps(jsonable(payload)))
        self.n_written += 1
        self.by_kind[kind] += 1
        if len(self._buffer) >= self._buffer_events:
            self.flush()

    def flush(self) -> None:
        if self._fh is None or not self._buffer:
            return
        self._fh.write("\n".join(self._buffer) + "\n")
        self._fh.flush()
        self._buffer.clear()

    def close(self) -> None:
        if self._fh is None:
            return
        self.flush()
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    # ------------------------------------------------------------------
    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def summary(self) -> str:
        if not self.n_written:
            return "trace: no events"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return f"trace: {self.n_written} events -> {self.path} ({parts})"


def read_trace_jsonl(path: str | Path) -> Iterator[TraceEvent]:
    """Yield the events of a JSONL trace file, in file order."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            tick = int(payload.pop("tick"))
            kind = str(payload.pop("kind"))
            yield TraceEvent(tick=tick, kind=kind, fields=payload)
