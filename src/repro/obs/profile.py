"""Per-phase wall-clock profiling for the tick loop.

The engine's ``step()`` decomposes into five phases — strategy round,
churn, arrivals, consumption, measurement — and perf work needs to know
which of them the time goes to.  :class:`PhaseProfiler` wraps each
phase in a context manager and accumulates call counts and seconds per
phase name.

Two determinism rules shape the design:

* The clock is injectable.  Production use reads ``time.perf_counter``
  (the one sanctioned wall-clock side channel, see the reprolint
  suppression below); tests inject a fake counter so ``--json`` output
  is byte-stable.
* Timings never touch simulation state or results.  A profiler is an
  observer: attaching one must leave seeded runs bit-identical, which
  the observability smoke test enforces.

:data:`NULL_PROFILER` is the engine's default — a shared no-op whose
``phase()`` returns a reusable empty context, keeping the unprofiled
hot path at two attribute lookups per phase.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Union

__all__ = ["NULL_PROFILER", "NullProfiler", "PhaseProfiler", "PHASES"]

# the engine's phase names, in execution order
PHASES = ("strategy", "churn", "arrivals", "consumption", "measurement")


class _NullContext:
    """Reusable do-nothing context manager."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CTX = _NullContext()


class NullProfiler:
    """No-op stand-in used when profiling is off (the default)."""

    enabled = False

    def phase(self, name: str) -> _NullContext:
        return _NULL_CTX

    def as_dict(self) -> dict[str, Any]:
        return {}


NULL_PROFILER = NullProfiler()


class _PhaseTimer:
    """Context manager accounting one phase entry on exit."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> None:
        self._t0 = self._profiler._clock()

    def __exit__(self, *exc: object) -> bool:
        profiler = self._profiler
        elapsed = profiler._clock() - self._t0
        profiler.seconds[self._name] = (
            profiler.seconds.get(self._name, 0.0) + elapsed
        )
        profiler.calls[self._name] = profiler.calls.get(self._name, 0) + 1
        return False


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase name.

    ``clock`` defaults to ``time.perf_counter``; inject a deterministic
    counter for byte-stable test output.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        if clock is None:
            # the sanctioned wall-clock side channel: timings are
            # observability metadata, never simulation state
            clock = time.perf_counter  # reprolint: disable=R002 (phase timing side channel)
        self._clock = clock
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    def phase(self, name: str) -> _PhaseTimer:
        """Context manager timing one entry of ``name``."""
        return _PhaseTimer(self, name)

    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, Any]:
        """Deterministically ordered phase breakdown.

        Known engine phases come first in execution order, then any
        custom phase names sorted — so equal timings always serialize
        to identical JSON.
        """
        order = [p for p in PHASES if p in self.seconds]
        order += sorted(k for k in self.seconds if k not in PHASES)
        return {
            "phases": {
                name: {
                    "calls": self.calls.get(name, 0),
                    "seconds": self.seconds[name],
                }
                for name in order
            },
            "total_seconds": self.total_seconds(),
        }

    def summary_line(self) -> str:
        if not self.seconds:
            return "profile: no phases recorded"
        total = self.total_seconds()
        parts = []
        for name in self.as_dict()["phases"]:
            sec = self.seconds[name]
            share = 100.0 * sec / total if total > 0 else 0.0
            parts.append(f"{name}={sec:.4f}s ({share:.1f}%)")
        return f"profile: {total:.4f}s total; " + ", ".join(parts)


# Either profiler can be attached to an engine.
Profiler = Union[PhaseProfiler, NullProfiler]
