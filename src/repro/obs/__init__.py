"""Observability layer: tracing, per-phase profiling, run metrics.

Everything in this package is *default-off* and side-channel only: a
:class:`~repro.sim.engine.TickEngine` run produces bit-identical seeded
results whether or not a trace sink or profiler is attached.  Timings
and event streams live next to the results (trace files, manifest
metadata), never inside them — the fingerprint tests pin this.

Modules
-------
``serialize``
    ``jsonable()`` — recursive numpy-safe coercion to JSON-encodable
    values, shared by trace export and the viz layer.
``trace``
    :class:`TraceEvent` / :class:`TraceRecorder` (in-memory, for tests
    and small runs) and :class:`JsonlTraceSink` (streaming file-backed
    sink with bounded memory and kind/tick filters).
``profile``
    :class:`PhaseProfiler` — wall-clock accounting per engine phase
    (strategy / churn / arrivals / consumption / measurement) with an
    injectable clock, plus the :data:`NULL_PROFILER` no-op.
``metrics``
    :class:`MetricsRegistry` — a counters/gauges registry unifying
    engine counters, trial-runner stats, and profiler timings for the
    run manifest; ``result_fingerprint()`` for bit-identity checks.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    collect_run_metrics,
    result_fingerprint,
)
from repro.obs.profile import NULL_PROFILER, NullProfiler, PhaseProfiler
from repro.obs.serialize import jsonable
from repro.obs.trace import (
    JsonlTraceSink,
    TraceEvent,
    TraceRecorder,
    TraceSink,
    read_trace_jsonl,
)

__all__ = [
    "JsonlTraceSink",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "collect_run_metrics",
    "jsonable",
    "read_trace_jsonl",
    "result_fingerprint",
]
