"""Numpy-safe coercion to JSON-encodable values.

Engine emitters and strategy code routinely hand trace fields numpy
scalars (``np.int64`` owners, ``np.float64`` loads) and small arrays;
``json.dumps`` rejects all of them.  ``jsonable`` normalises a value
tree into plain Python containers so every exporter — trace sinks,
manifest writers, the viz layer — serializes identically.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-encodable builtins.

    Numpy integers/floats become ``int``/``float``, arrays become
    (nested) lists, mappings and sequences recurse with keys forced to
    ``str``.  Anything unrecognised falls back to ``repr`` rather than
    raising, so a stray object in a trace field degrades to a readable
    string instead of aborting an export.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
