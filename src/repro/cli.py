"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``repro list``
    Show every reproducible experiment id.
``repro run <id> [--scale quick|full] [--seed N] [--jobs N] [--csv PATH]
[--json PATH]``
    Run one experiment (or ``all``) and print the paper-layout table.
``repro experiments list`` / ``repro experiments run <id> ...``
    Namespaced aliases of ``list`` and ``run`` (same flags).
``repro simulate [--strategy S] [--nodes N] [--tasks T] ...``
    Run a single ad-hoc simulation and print its summary.  Failure
    injection: ``--crash-fraction``, ``--replication`` (``full`` or an
    integer), ``--loss-rate``, ``--crash-detection-ticks``.
``repro figures [--out DIR]``
    Render the Figure 2/3 ring SVGs.
``repro profile [--strategy S] ... [--json]``
    Run one simulation with time series on and print its convergence
    profile (utilization AUC, wasted node-ticks, ...) plus the per-phase
    wall-clock breakdown (strategy / churn / arrivals / consumption /
    measurement).
``repro trace [--strategy S] ... --out trace.jsonl [--kinds a,b] [--json]``
    Run one simulation with a streaming JSONL event trace attached
    (bounded memory; see :mod:`repro.obs`).  ``--kinds`` and ``--ticks``
    filter at the sink, so a long run can capture only what matters.
``repro theory [--nodes N] [--tasks T]``
    Print the closed-form predictions for a network size next to a
    fresh measurement.
``repro sweep --field F --values a,b,c [--out PATH] ...``
    One-dimensional parameter sweep; ``--out`` persists every TrialSet
    to one JSON document.  Interrupted sweeps resume from the trial
    cache — re-running the same command recomputes only missing trials.
``repro cache [--clear]``
    Show (or empty) the content-addressed trial cache.
``repro lint [paths] [--format text|json|sarif] [--select R00x,...]``
    Run the reprolint determinism/correctness rules (R001-R009, see
    docs/static-analysis.md); exits non-zero on any error finding.
    Unchanged trees replay from the content-hash cache (``--no-cache``
    or ``REPRO_LINT_CACHE=0`` bypasses it).
``repro serve [--port P] [--join HOST:PORT] [--ring N] [--strategy S] ...``
    Run one live asyncio DHT node on real TCP sockets (or, with
    ``--ring N``, a local multi-process ring).  Prints a
    ``REPRO-SERVE-READY {...}`` line once the node is addressable; stops
    gracefully on SIGINT/SIGTERM.  See docs/serving.md.
``repro stress TARGET [TARGET ...] [--duration S] [--concurrency N] ...``
    Replay seeded concurrent get/put traffic against live nodes and
    report wall-clock latency percentiles plus rebalance-convergence
    time (``--json`` for the machine-readable summary; exits non-zero
    if not a single request succeeded).

Caching: completed trials persist under ``~/.cache/repro`` (override
with ``REPRO_CACHE_DIR``), so re-running any experiment is a cache hit.
``--no-cache`` (or ``REPRO_CACHE=0``) computes everything fresh.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.config import STRATEGY_NAMES, SimulationConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Autonomous Load Balancing in Distributed "
            "Hash Tables Using Churn and the Sybil Attack'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_run_arguments(run_p: argparse.ArgumentParser) -> None:
        run_p.add_argument("experiment", help="experiment id or 'all'")
        run_p.add_argument("--scale", choices=["quick", "full"], default=None)
        run_p.add_argument("--seed", type=int, default=0)
        run_p.add_argument("--jobs", type=int, default=1)
        run_p.add_argument("--csv", type=Path, default=None)
        run_p.add_argument("--json", type=Path, default=None)
        run_p.add_argument(
            "--no-cache", action="store_true",
            help="recompute every trial (skip the content-addressed cache)",
        )
        run_p.add_argument(
            "--manifest", type=Path, default=None,
            help="write the run manifest(s) to this JSON file",
        )

    sub.add_parser("list", help="list experiment ids")
    _add_run_arguments(sub.add_parser("run", help="run an experiment (or 'all')"))

    # `repro experiments {list,run}`: namespaced aliases of the above.
    exp_p = sub.add_parser(
        "experiments", help="experiment registry commands (list / run)"
    )
    exp_sub = exp_p.add_subparsers(dest="experiments_command", required=True)
    exp_sub.add_parser("list", help="list experiment ids")
    _add_run_arguments(
        exp_sub.add_parser("run", help="run an experiment (or 'all')")
    )

    sim_p = sub.add_parser("simulate", help="one ad-hoc simulation")
    sim_p.add_argument("--strategy", choices=STRATEGY_NAMES, default="none")
    sim_p.add_argument("--nodes", type=int, default=1000)
    sim_p.add_argument("--tasks", type=int, default=100_000)
    sim_p.add_argument("--churn", type=float, default=0.0)
    sim_p.add_argument("--heterogeneous", action="store_true")
    sim_p.add_argument(
        "--work-measurement", choices=["one", "strength"], default="one"
    )
    sim_p.add_argument("--max-sybils", type=int, default=5)
    sim_p.add_argument("--sybil-threshold", type=int, default=0)
    sim_p.add_argument("--successors", type=int, default=5)
    sim_p.add_argument(
        "--crash-fraction", type=float, default=0.0,
        help="fraction of churn departures that crash without handoff",
    )
    sim_p.add_argument(
        "--replication", default="full",
        help="backup copies per task: 'full' (default) or an integer "
        "number of successors (0 = no replication)",
    )
    sim_p.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="protocol-level message loss probability (chord layer)",
    )
    sim_p.add_argument(
        "--crash-detection-ticks", type=int, default=0,
        help="ticks a crashed node still looks alive (chord layer)",
    )
    sim_p.add_argument(
        "--adv-eclipse-sybils", type=int, default=0,
        help="coordinated Sybil identities concentrated in a victim arc",
    )
    sim_p.add_argument(
        "--adv-eclipse-arc", type=float, default=0.05,
        help="ring fraction the eclipse identities squeeze into",
    )
    sim_p.add_argument(
        "--adv-free-riders", type=int, default=0,
        help="adversarial joiners that accept keys and consume nothing",
    )
    sim_p.add_argument(
        "--adv-churn-amplification", type=float, default=0.0,
        help="per-round probability of crashing the heaviest honest owner",
    )
    sim_p.add_argument(
        "--adv-attack-tick", type=int, default=1,
        help="tick at which the planned attack identities start joining",
    )
    sim_p.add_argument(
        "--adv-join-cost", type=int, default=0,
        help="defense: identity-creation cost against a per-node budget "
        "(0 = defense off)",
    )
    sim_p.add_argument(
        "--adv-detection-interval", type=int, default=0,
        help="defense: ticks between per-arc Sybil-density sweeps "
        "(0 = defense off)",
    )
    sim_p.add_argument(
        "--adv-density-threshold", type=int, default=4,
        help="slots one owner may hold in a single detection arc",
    )
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument("--trials", type=int, default=1)
    sim_p.add_argument("--jobs", type=int, default=1)
    sim_p.add_argument("--no-cache", action="store_true")
    sim_p.add_argument(
        "--retries", type=int, default=1,
        help="re-dispatches of a failed trial (fresh worker, same seed)",
    )
    sim_p.add_argument(
        "--timeout", type=float, default=None,
        help="seconds without a trial completion before workers are "
        "considered hung (parallel runs)",
    )
    sim_p.add_argument(
        "--shards", type=int, default=1,
        help="worker processes for the consumption phase (shared-memory "
        "sharding; results are bit-identical for any shard count)",
    )
    sim_p.add_argument(
        "--backend", choices=["numpy", "numba"], default=None,
        help="consumption kernel backend (default: numpy, or "
        "$REPRO_SIM_BACKEND; numba requires the optional numba package)",
    )
    sim_p.add_argument(
        "--sanitize", action="store_true",
        help="enable the runtime determinism sanitizer (REPRO_SANITIZE=1): "
        "raises on RNG aliasing, non-disjoint shard plans, and draws "
        "inside RNG-free phases",
    )

    sweep_p = sub.add_parser(
        "sweep", help="one-dimensional parameter sweep with resume"
    )
    sweep_p.add_argument(
        "--field", required=True, help="SimulationConfig field to vary"
    )
    sweep_p.add_argument(
        "--values", required=True,
        help="comma-separated values (JSON literals: 0.01, 1000, ...)",
    )
    sweep_p.add_argument("--trials", type=int, default=3)
    sweep_p.add_argument("--strategy", choices=STRATEGY_NAMES, default="none")
    sweep_p.add_argument("--nodes", type=int, default=1000)
    sweep_p.add_argument("--tasks", type=int, default=100_000)
    sweep_p.add_argument("--churn", type=float, default=0.0)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument("--jobs", type=int, default=1)
    sweep_p.add_argument("--out", type=Path, default=None,
                         help="persist every TrialSet to this JSON file")
    sweep_p.add_argument(
        "--crn", action="store_true",
        help="common random numbers: reuse identical trial seeds at "
        "every sweep point (variance reduction; off by default)",
    )
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument("--retries", type=int, default=1)
    sweep_p.add_argument("--timeout", type=float, default=None)

    fab_p = sub.add_parser(
        "fabric",
        help="distributed trial fabric: broker, attachable workers, status",
    )
    fab_sub = fab_p.add_subparsers(dest="fabric_command", required=True)

    fab_run = fab_sub.add_parser(
        "run",
        help="run a sweep grid under a fabric broker (resumable; "
        "workers may attach mid-sweep)",
    )
    fab_run.add_argument(
        "--field", required=True, help="SimulationConfig field to vary"
    )
    fab_run.add_argument(
        "--values", required=True,
        help="comma-separated values (JSON literals: 0.01, 1000, ...)",
    )
    fab_run.add_argument("--trials", type=int, default=3)
    fab_run.add_argument("--strategy", choices=STRATEGY_NAMES, default="none")
    fab_run.add_argument("--nodes", type=int, default=1000)
    fab_run.add_argument("--tasks", type=int, default=100_000)
    fab_run.add_argument("--churn", type=float, default=0.0)
    fab_run.add_argument("--seed", type=int, default=0)
    fab_run.add_argument(
        "--jobs", type=int, default=0,
        help="local worker processes (0 = auto, honors REPRO_N_JOBS; "
        "1 = in-process)",
    )
    fab_run.add_argument("--out", type=Path, default=None,
                         help="persist every TrialSet to this JSON file")
    fab_run.add_argument(
        "--crn", action="store_true",
        help="common random numbers: reuse identical trial seeds at "
        "every sweep point (variance reduction; off by default)",
    )
    fab_run.add_argument("--no-cache", action="store_true")
    fab_run.add_argument("--retries", type=int, default=1)
    fab_run.add_argument("--timeout", type=float, default=None)
    fab_run.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="accept remote `repro fabric worker` processes here "
        "(port 0 = ephemeral; the bound address is printed on a "
        "REPRO-FABRIC-READY line)",
    )
    fab_run.add_argument(
        "--lease-timeout", type=float, default=120.0,
        help="seconds before a silent remote worker's unit is requeued",
    )
    fab_run.add_argument(
        "--status-file", type=Path, default=None,
        help="live status JSON path (default: <cache dir>/"
        "fabric-status.json)",
    )

    fab_worker = fab_sub.add_parser(
        "worker", help="attach to a broker and run trials until told to stop"
    )
    fab_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="broker attach address (from its REPRO-FABRIC-READY line)",
    )
    fab_worker.add_argument(
        "--name", default=None, help="worker name (default: worker-<pid>)"
    )
    fab_worker.add_argument(
        "--poll", type=float, default=0.5,
        help="seconds between lease attempts while the queue is empty",
    )
    fab_worker.add_argument(
        "--shards", type=int, default=1,
        help="worker processes per trial (see repro.sim.shard)",
    )
    fab_worker.add_argument(
        "--backend", choices=["numpy", "numba"], default=None,
        help="consumption kernel backend (default: numpy)",
    )
    fab_worker.add_argument(
        "--max-units", type=int, default=None,
        help="exit after settling this many units (testing hook)",
    )

    fab_status = fab_sub.add_parser(
        "status", help="show a broker's live queue/progress counters"
    )
    fab_status.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="query a listening broker directly over its attach socket",
    )
    fab_status.add_argument(
        "--status-file", type=Path, default=None,
        help="read this status JSON (default: <cache dir>/"
        "fabric-status.json)",
    )
    fab_status.add_argument(
        "--json", action="store_true",
        help="emit the raw status document instead of a table",
    )

    cache_p = sub.add_parser(
        "cache", help="show or clear the content-addressed trial cache"
    )
    cache_p.add_argument("--clear", action="store_true")

    fig_p = sub.add_parser("figures", help="render Figure 2/3 ring SVGs")
    fig_p.add_argument("--out", type=Path, default=Path("figures"))
    fig_p.add_argument("--seed", type=int, default=0)

    prof_p = sub.add_parser(
        "profile",
        help="convergence profile and per-phase timing of one run",
    )
    prof_p.add_argument("--strategy", choices=STRATEGY_NAMES, default="none")
    prof_p.add_argument("--nodes", type=int, default=500)
    prof_p.add_argument("--tasks", type=int, default=50_000)
    prof_p.add_argument("--churn", type=float, default=0.0)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON document instead of tables",
    )
    prof_p.add_argument(
        "--shards", type=int, default=1,
        help="worker processes for the consumption phase",
    )
    prof_p.add_argument(
        "--backend", choices=["numpy", "numba"], default=None,
        help="consumption kernel backend (default: numpy)",
    )

    trace_p = sub.add_parser(
        "trace", help="one simulation with a streaming JSONL event trace"
    )
    trace_p.add_argument("--strategy", choices=STRATEGY_NAMES, default="none")
    trace_p.add_argument("--nodes", type=int, default=500)
    trace_p.add_argument("--tasks", type=int, default=50_000)
    trace_p.add_argument("--churn", type=float, default=0.0)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument(
        "--out", type=Path, default=Path("trace.jsonl"),
        help="JSONL file the event stream is written to",
    )
    trace_p.add_argument(
        "--kinds", default=None,
        help="comma-separated event kinds to keep (default: all)",
    )
    trace_p.add_argument(
        "--ticks", default=None,
        help="inclusive FIRST:LAST tick window to keep (default: all)",
    )
    trace_p.add_argument(
        "--buffer", type=int, default=256,
        help="events buffered in memory between writes",
    )
    trace_p.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON summary instead of text",
    )

    theory_p = sub.add_parser(
        "theory", help="closed-form predictions vs one measurement"
    )
    theory_p.add_argument("--nodes", type=int, default=1000)
    theory_p.add_argument("--tasks", type=int, default=100_000)
    theory_p.add_argument("--seed", type=int, default=0)

    lint_p = sub.add_parser(
        "lint", help="run the reprolint determinism/correctness rules"
    )
    lint_p.add_argument(
        "paths", nargs="*", type=Path, default=None,
        help="files/directories to lint (default: src, else the package)",
    )
    lint_p.add_argument(
        "--json", action="store_true",
        help="emit the deterministic JSON report (alias for --format json)",
    )
    lint_p.add_argument(
        "--format", dest="format", default=None,
        choices=["text", "json", "sarif"],
        help="report format: human text (default), the byte-stable JSON "
        "artifact, or SARIF 2.1.0 for code scanning",
    )
    lint_p.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the content-hash lint cache for this run",
    )

    serve_p = sub.add_parser(
        "serve", help="run a live DHT node (or --ring N local ring)"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (0 = ephemeral; the READY line has it)",
    )
    serve_p.add_argument(
        "--id", type=int, default=None,
        help="ring identifier (default: SHA-1 of host:port)",
    )
    serve_p.add_argument(
        "--join", default=None, metavar="HOST:PORT",
        help="bootstrap endpoint of an existing ring (default: create)",
    )
    serve_p.add_argument(
        "--ring", type=int, default=None, metavar="N",
        help="spawn a local N-node multi-process ring instead of one node",
    )
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--bits", type=int, default=64)
    serve_p.add_argument("--successors", type=int, default=5)
    serve_p.add_argument(
        "--strategy", default="none",
        choices=["none", "random_injection", "neighbor_injection", "invitation"],
        help="live balancing strategy driven from the stabilize loop",
    )
    serve_p.add_argument("--sybil-threshold", type=int, default=0)
    serve_p.add_argument("--max-sybils", type=int, default=5)
    serve_p.add_argument(
        "--decision-interval", type=int, default=5,
        help="maintenance cycles between balancer decision rounds",
    )
    serve_p.add_argument(
        "--maintenance-interval", type=float, default=0.2,
        help="seconds between maintenance cycles (seeded jitter applied)",
    )
    serve_p.add_argument("--heartbeat-interval", type=float, default=1.0)
    serve_p.add_argument(
        "--timeout", type=float, default=1.0,
        help="per-message transport timeout in seconds",
    )
    serve_p.add_argument(
        "--retries", type=int, default=2,
        help="transparent resends after transient transport failures",
    )
    serve_p.add_argument(
        "--sanitize", action="store_true",
        help="enable the runtime determinism sanitizer (REPRO_SANITIZE=1): "
        "blocked-loop detection + RNG stream ownership; non-empty "
        "sanitizer reports fail the process on shutdown",
    )

    stress_p = sub.add_parser(
        "stress", help="seeded load generator against live nodes"
    )
    stress_p.add_argument(
        "targets", nargs="+", metavar="HOST:PORT",
        help="live node endpoints to spread requests over",
    )
    stress_p.add_argument("--duration", type=float, default=5.0)
    stress_p.add_argument("--concurrency", type=int, default=8)
    stress_p.add_argument("--seed", type=int, default=0)
    stress_p.add_argument("--bits", type=int, default=64)
    stress_p.add_argument(
        "--key-dist", choices=["uniform", "clustered", "zipf"],
        default="uniform", help="key skew (same models as the simulator)",
    )
    stress_p.add_argument("--n-clusters", type=int, default=8)
    stress_p.add_argument("--cluster-spread", type=float, default=0.01)
    stress_p.add_argument("--zipf-exponent", type=float, default=1.2)
    stress_p.add_argument("--get-fraction", type=float, default=0.5)
    stress_p.add_argument("--key-pool", type=int, default=512)
    stress_p.add_argument("--poll-interval", type=float, default=0.5)
    stress_p.add_argument(
        "--imbalance-threshold", type=float, default=2.0,
        help="max/mean identity load counted as rebalance-converged",
    )
    stress_p.add_argument("--timeout", type=float, default=1.0)
    stress_p.add_argument("--retries", type=int, default=1)
    stress_p.add_argument(
        "--trace", type=Path, default=None,
        help="write a JSONL trace of every request and poll here",
    )
    stress_p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable summary (sorted keys)",
    )
    stress_p.add_argument(
        "--sanitize", action="store_true",
        help="enable the runtime determinism sanitizer (REPRO_SANITIZE=1) "
        "for the load-generator process",
    )

    rep_p = sub.add_parser(
        "report", help="run every experiment and write a report bundle"
    )
    rep_p.add_argument("--out", type=Path, default=Path("report"))
    rep_p.add_argument("--scale", choices=["quick", "full"], default=None)
    rep_p.add_argument("--seed", type=int, default=0)
    rep_p.add_argument("--jobs", type=int, default=1)
    rep_p.add_argument(
        "--only", nargs="*", default=None,
        help="restrict to these experiment ids",
    )

    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for key, (title, _) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS
    from repro.experiments.runner import run_with_manifest, save_manifests
    from repro.viz.export import write_csv, write_json

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    manifests = []
    for exp_id in ids:
        result, manifest = run_with_manifest(
            exp_id, scale=args.scale, seed=args.seed, n_jobs=args.jobs
        )
        manifests.append(manifest)
        print(result.render())
        print(f"  ({manifest.summary_line()})\n")
        if args.csv:
            path = (
                args.csv
                if len(ids) == 1
                else args.csv.with_name(f"{exp_id}_{args.csv.name}")
            )
            write_csv(result, path)
            print(f"  wrote {path}")
        if args.json:
            path = (
                args.json
                if len(ids) == 1
                else args.json.with_name(f"{exp_id}_{args.json.name}")
            )
            write_json(result, path)
            print(f"  wrote {path}")
    if args.manifest:
        path = save_manifests(manifests, args.manifest)
        print(f"  wrote {path}")
    return 0


def _parse_replication(value: str) -> int | None:
    if value == "full":
        return None
    try:
        return int(value)
    except ValueError:
        raise SystemExit(
            f"--replication must be 'full' or an integer, got {value!r}"
        ) from None


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.config import AdversaryModel, FailureModel
    from repro.sim.trials import make_trial_fn, run_trials
    from repro.util.tables import format_kv

    if args.sanitize:
        from repro.sanitize import ENV_FLAG

        os.environ[ENV_FLAG] = "1"
    config = SimulationConfig(
        strategy=args.strategy,
        n_nodes=args.nodes,
        n_tasks=args.tasks,
        churn_rate=args.churn,
        heterogeneous=args.heterogeneous,
        work_measurement=args.work_measurement,
        max_sybils=args.max_sybils,
        sybil_threshold=args.sybil_threshold,
        num_successors=args.successors,
        failures=FailureModel(
            crash_fraction=args.crash_fraction,
            replication_factor=_parse_replication(args.replication),
            message_loss_rate=args.loss_rate,
            crash_detection_ticks=args.crash_detection_ticks,
        ),
        adversary=AdversaryModel(
            eclipse_sybils=args.adv_eclipse_sybils,
            eclipse_arc_fraction=args.adv_eclipse_arc,
            free_riders=args.adv_free_riders,
            churn_amplification=args.adv_churn_amplification,
            attack_tick=args.adv_attack_tick,
            join_cost=args.adv_join_cost,
            detection_interval=args.adv_detection_interval,
            density_threshold=args.adv_density_threshold,
        ),
        seed=args.seed,
    )
    # perf_counter, not time.time: monotonic, so a wall-clock adjustment
    # mid-run cannot report a negative duration (R002 allowlists cli.py)
    t0 = time.perf_counter()
    trials = run_trials(
        config,
        args.trials,
        n_jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
        trial_fn=make_trial_fn(backend=args.backend, shards=args.shards),
    )
    summary = trials.factor_summary()
    payload = {
        "strategy": config.strategy,
        "nodes/tasks": f"{config.n_nodes}/{config.n_tasks}",
        "trials": summary.n_trials,
        "mean runtime factor": summary.mean,
        "std": summary.std,
        "min..max": f"{summary.min:.3f}..{summary.max:.3f}",
        "ideal ticks": trials.results[0].ideal_ticks,
        "wall time (s)": round(time.perf_counter() - t0, 2),
    }
    if config.failures.enabled:
        payload["mean completed-work factor"] = (
            trials.mean_completed_work_factor
        )
    if config.adversary.enabled:
        advs = [r.adversary for r in trials.results if r.adversary]
        if advs:
            def _adv_mean(key: str) -> float | None:
                vals = [a[key] for a in advs if a[key] is not None]
                return sum(vals) / len(vals) if vals else None

            payload["adv captured fraction (peak)"] = _adv_mean(
                "captured_fraction_peak"
            )
            payload["adv stranded tasks"] = _adv_mean("stranded_tasks")
            prec = _adv_mean("detection_precision")
            rec = _adv_mean("detection_recall")
            if prec is not None:
                payload["adv detection precision"] = prec
            if rec is not None:
                payload["adv detection recall"] = rec
    if trials.n_truncated:
        payload["trials truncated"] = trials.n_truncated
    if trials.n_data_loss:
        payload["trials with data loss"] = trials.n_data_loss
    payload.update(
        {
            f"avg {k}": round(v, 1)
            for k, v in trials.counter_means().items()
        }
    )
    print(format_kv(payload))
    return 0


def _parse_sweep_values(spec: str) -> list:
    """Comma-separated JSON literals (bare words fall back to strings)."""
    import json as _json

    values = []
    for item in spec.split(","):
        item = item.strip()
        try:
            values.append(_json.loads(item))
        except _json.JSONDecodeError:
            values.append(item)
    return values


def _sweep_base_config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        strategy=args.strategy,
        n_nodes=args.nodes,
        n_tasks=args.tasks,
        churn_rate=args.churn,
        seed=args.seed,
    )


def _print_sweep_result(args, values, sets, t0) -> int:
    from repro.sim.persistence import save_sweep
    from repro.sim.trials import run_stats
    from repro.util.tables import format_table

    rows = [
        [value, ts.config.seed, ts.n_trials, ts.mean_factor]
        for value, ts in zip(values, sets)
    ]
    print(
        format_table(
            [args.field, "point seed", "trials", "mean factor"],
            rows,
            title=f"sweep over {args.field} "
            f"({'CRN' if args.crn else 'decorrelated'} seeds)",
        )
    )
    print(
        f"  ({run_stats().summary_line()}, "
        f"{time.perf_counter() - t0:.1f}s wall)"
    )
    if args.out:
        path = save_sweep(sets, args.out)
        print(f"  wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.trials import reset_run_stats, sweep

    values = _parse_sweep_values(args.values)
    base = _sweep_base_config(args)
    reset_run_stats()
    t0 = time.perf_counter()
    sets = sweep(
        base,
        args.field,
        values,
        args.trials,
        n_jobs=args.jobs,
        common_random_numbers=args.crn,
        retries=args.retries,
        timeout=args.timeout,
    )
    return _print_sweep_result(args, values, sets, t0)


#: Line prefix `repro fabric run --listen` prints once its attach socket
#: is bound, followed by a JSON object with host/port/status_file —
#: orchestration scripts (scripts/fabric_smoke.py) wait for it exactly
#: like net_smoke waits for REPRO-SERVE-READY.
FABRIC_READY_PREFIX = "REPRO-FABRIC-READY "


def _default_status_file() -> Path:
    from repro.sim.cache import default_cache_dir

    return default_cache_dir() / "fabric-status.json"


def _cmd_fabric_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.fabric.broker import Broker
    from repro.net.transport import parse_address
    from repro.sim.trials import reset_run_stats, sweep_grid

    values = _parse_sweep_values(args.values)
    base = _sweep_base_config(args)
    grid = sweep_grid(
        base, args.field, values, args.trials, common_random_numbers=args.crn
    )
    status_path = args.status_file or _default_status_file()
    listen = parse_address(args.listen) if args.listen else None
    reset_run_stats()
    t0 = time.perf_counter()
    broker = Broker(
        grid,
        n_jobs=args.jobs,
        retries=args.retries,
        timeout=args.timeout,
        listen=listen,
        lease_timeout=args.lease_timeout,
        status_path=status_path,
    )
    if listen is not None:
        bound = broker.open_listener()
        print(
            FABRIC_READY_PREFIX
            + _json.dumps(
                {
                    "host": bound[0],
                    "port": bound[1],
                    "status_file": str(status_path),
                    "units": len(broker.queue),
                },
                sort_keys=True,
            ),
            flush=True,
        )
    sets = broker.run()
    return _print_sweep_result(args, values, sets, t0)


def _cmd_fabric_worker(args: argparse.Namespace) -> int:
    from repro.errors import TransientNetworkError
    from repro.fabric.worker import run_worker
    from repro.net.transport import parse_address
    from repro.sim.trials import make_trial_fn

    addr = parse_address(args.connect)
    trial_fn = make_trial_fn(backend=args.backend, shards=args.shards)
    try:
        summary = run_worker(
            addr,
            name=args.name,
            trial_fn=trial_fn,
            poll_interval=args.poll,
            max_units=args.max_units,
        )
    except TransientNetworkError as exc:
        print(f"fabric worker: broker unreachable: {exc}", file=sys.stderr)
        return 1
    print(f"fabric worker: {summary.summary_line()}")
    return 0


def _cmd_fabric_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ProtocolError, TransientNetworkError
    from repro.util.tables import format_kv

    if args.connect:
        from repro.fabric.protocol import OP_STATUS
        from repro.net.transport import parse_address, request

        try:
            snapshot = request(
                parse_address(args.connect), {"op": OP_STATUS}
            )
        except (TransientNetworkError, ProtocolError) as exc:
            print(f"fabric status: broker unreachable: {exc}", file=sys.stderr)
            return 1
    else:
        path = args.status_file or _default_status_file()
        try:
            snapshot = _json.loads(Path(path).read_text())
        except FileNotFoundError:
            print(f"fabric status: no status file at {path}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"fabric status: unreadable {path}: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    payload = {
        key: snapshot.get(key)
        for key in (
            "total",
            "queued",
            "running",
            "done",
            "cached",
            "failed",
            "avg_trial_seconds",
            "eta_seconds",
            "elapsed_seconds",
            "local_slots",
            "listen",
        )
    }
    payload["remote workers"] = (
        ", ".join(snapshot.get("remote_workers", [])) or "none"
    )
    print(format_kv(payload))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.cache import (
        CACHE_SCHEMA_VERSION,
        TrialCache,
        cache_enabled,
    )
    from repro.util.tables import format_kv

    cache = TrialCache()
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached trial(s) from {cache.root}")
        return 0
    entries = cache.entries()
    print(
        format_kv(
            {
                "cache dir": str(cache.root),
                "enabled": cache_enabled(),
                "schema version": CACHE_SCHEMA_VERSION,
                "cached trials": len(entries),
                "size (MB)": round(cache.size_bytes() / 1e6, 2),
            }
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.fig02_03_ring import build_layout
    from repro.viz.ringplot import render_ring_svg

    args.out.mkdir(parents=True, exist_ok=True)
    hashed = build_layout(10, 100, even_nodes=False, seed=args.seed)
    even = build_layout(10, 100, even_nodes=True, seed=args.seed)
    p2 = render_ring_svg(
        hashed.node_xy,
        hashed.task_xy,
        args.out / "fig2_hashed_ring.svg",
        title="Figure 2: SHA-1 placed nodes (10 nodes, 100 tasks)",
    )
    p3 = render_ring_svg(
        even.node_xy,
        even.task_xy,
        args.out / "fig3_even_ring.svg",
        title="Figure 3: evenly spaced nodes (10 nodes, 100 tasks)",
    )
    print(f"wrote {p2}\nwrote {p3}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.convergence import profile_run
    from repro.obs import PhaseProfiler, jsonable
    from repro.util.tables import format_kv, format_table

    config = SimulationConfig(
        strategy=args.strategy,
        n_nodes=args.nodes,
        n_tasks=args.tasks,
        churn_rate=args.churn,
        seed=args.seed,
    )
    profiler = PhaseProfiler()
    profile = profile_run(
        config, profiler=profiler, backend=args.backend, shards=args.shards
    )
    if args.json:
        # sorted keys + deterministic phase ordering: byte-stable for a
        # fixed clock (tests inject one), structure-stable always
        payload = {
            "convergence": {"strategy": args.strategy, **profile.as_dict()},
            "profile": profiler.as_dict(),
        }
        print(_json.dumps(jsonable(payload), indent=2, sort_keys=True))
        return 0
    print(format_kv({"strategy": args.strategy, **profile.as_dict()}))
    breakdown = profiler.as_dict()
    total = breakdown["total_seconds"]
    rows = [
        [
            name,
            entry["calls"],
            f"{entry['seconds']:.4f}",
            f"{100.0 * entry['seconds'] / total:.1f}%" if total else "-",
        ]
        for name, entry in breakdown["phases"].items()
    ]
    print()
    print(
        format_table(
            ["phase", "calls", "seconds", "share"],
            rows,
            title=f"per-phase wall clock ({total:.4f}s total)",
        )
    )
    return 0


def _parse_tick_window(spec: str) -> tuple[int, int]:
    try:
        first, last = spec.split(":")
        return int(first), int(last)
    except ValueError:
        raise SystemExit(
            f"--ticks must look like FIRST:LAST, got {spec!r}"
        ) from None


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import JsonlTraceSink, result_fingerprint
    from repro.sim.engine import TickEngine
    from repro.util.tables import format_kv

    config = SimulationConfig(
        strategy=args.strategy,
        n_nodes=args.nodes,
        n_tasks=args.tasks,
        churn_rate=args.churn,
        seed=args.seed,
    )
    kinds = (
        [k.strip() for k in args.kinds.split(",") if k.strip()]
        if args.kinds
        else None
    )
    tick_range = _parse_tick_window(args.ticks) if args.ticks else None
    with JsonlTraceSink(
        args.out,
        kinds=kinds,
        tick_range=tick_range,
        buffer_events=args.buffer,
    ) as sink:
        result = TickEngine(config, trace=sink).run()
    payload = {
        "out": str(args.out),
        "runtime_ticks": result.runtime_ticks,
        "completed": result.completed,
        "events_written": sink.n_written,
        "events_by_kind": {k: sink.by_kind[k] for k in sorted(sink.by_kind)},
        "fingerprint": result_fingerprint(result),
    }
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    by_kind = payload.pop("events_by_kind")
    payload.update({f"events[{k}]": v for k, v in by_kind.items()})
    print(format_kv(payload))
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.analysis import theory
    from repro.metrics.balance import load_stats
    from repro.sim.engine import TickEngine
    from repro.util.tables import format_table

    engine = TickEngine(
        SimulationConfig(
            n_nodes=args.nodes, n_tasks=args.tasks, seed=args.seed
        )
    )
    stats = load_stats(engine.network_loads())
    rows = [
        [
            "median workload",
            theory.expected_median_workload(args.nodes, args.tasks),
            stats.median,
        ],
        [
            "workload sigma",
            theory.expected_workload_std(args.nodes, args.tasks),
            stats.std,
        ],
        [
            "max workload",
            theory.expected_max_workload(args.nodes, args.tasks),
            stats.max,
        ],
        [
            "baseline runtime factor",
            theory.expected_baseline_factor(args.nodes),
            "(run `repro simulate` to measure)",
        ],
    ]
    print(
        format_table(
            ["quantity", "theory", "measured (one draw)"],
            rows,
            title=f"Exponential-arc theory, {args.nodes} nodes / "
            f"{args.tasks} tasks",
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        all_rules,
        lint_paths,
        render_human,
        render_json,
        render_sarif,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:<22}  {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        default_src = Path("src")
        if default_src.is_dir():
            paths = [default_src]
        else:
            paths = [Path(__file__).resolve().parent]
    select = args.select.split(",") if args.select else None
    fmt = args.format or ("json" if args.json else "text")
    report = lint_paths(paths, select=select, cache=not args.no_cache)
    if fmt == "json":
        print(render_json(report), end="")
    elif fmt == "sarif":
        print(render_sarif(report), end="")
    else:
        print(render_human(report))
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.sanitize:
        # Set before any node (or ring subprocess) starts: children
        # inherit the environment, so the whole ring is sanitized.
        from repro.sanitize import ENV_FLAG

        os.environ[ENV_FLAG] = "1"
    if args.ring is not None:
        return _serve_ring(args)
    import asyncio
    import json as _json
    import signal

    from repro import sanitize
    from repro.net.cluster import READY_PREFIX
    from repro.net.node import LiveNode, LiveNodeConfig
    from repro.net.transport import RetryPolicy, parse_address

    async def _run() -> int:
        config = LiveNodeConfig(
            seed=args.seed,
            bits=args.bits,
            n_successors=args.successors,
            strategy=args.strategy,
            sybil_threshold=args.sybil_threshold,
            max_sybils=args.max_sybils,
            decision_interval=args.decision_interval,
            maintenance_interval=args.maintenance_interval,
            heartbeat_interval=args.heartbeat_interval,
            policy=RetryPolicy(timeout=args.timeout, retries=args.retries),
        )
        node = LiveNode(args.host, args.port, config, node_id=args.id)
        bootstrap = parse_address(args.join) if args.join else None
        await node.start(bootstrap)
        print(
            READY_PREFIX
            + _json.dumps(
                {
                    "id": node.main.id,
                    "host": node.addr[0],
                    "port": node.addr[1],
                    "strategy": args.strategy,
                },
                sort_keys=True,
            ),
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, node.request_stop)
        await node.run_until_stopped()
        await node.stop()
        if sanitize.enabled() and sanitize.report_count():
            for message in sanitize.reports():
                print(f"SANITIZE: {message}", file=sys.stderr, flush=True)
            return 1
        return 0

    return asyncio.run(_run())


def _serve_ring(args: argparse.Namespace) -> int:
    import signal

    from repro.net.cluster import LocalCluster

    cluster = LocalCluster(
        args.ring,
        seed=args.seed,
        strategy=args.strategy,
        bits=args.bits,
        sybil_threshold=args.sybil_threshold,
        max_sybils=args.max_sybils,
        maintenance_interval=args.maintenance_interval,
        host=args.host,
    )
    cluster.start()
    for node in cluster.nodes:
        print(
            f"ring node {node.index}: id={node.node_id} "
            f"{node.host}:{node.port}",
            flush=True,
        )
    print(f"ring of {args.ring} up; SIGINT/SIGTERM stops it", flush=True)
    stop = {"requested": False}
    signal.signal(signal.SIGTERM, lambda *_: stop.update(requested=True))
    try:
        while not stop["requested"] and all(n.alive() for n in cluster.nodes):
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    return 0 if cluster.stop() else 1


def _cmd_stress(args: argparse.Namespace) -> int:
    import contextlib
    import json as _json

    from repro.net.stress import StressConfig, run_stress_sync
    from repro.net.transport import RetryPolicy, parse_address
    from repro.obs import JsonlTraceSink
    from repro.util.tables import format_kv

    if args.sanitize:
        from repro.sanitize import ENV_FLAG

        os.environ[ENV_FLAG] = "1"
    config = StressConfig(
        targets=tuple(parse_address(t) for t in args.targets),
        duration=args.duration,
        concurrency=args.concurrency,
        seed=args.seed,
        bits=args.bits,
        key_distribution=args.key_dist,
        n_clusters=args.n_clusters,
        cluster_spread=args.cluster_spread,
        zipf_exponent=args.zipf_exponent,
        get_fraction=args.get_fraction,
        key_pool=args.key_pool,
        poll_interval=args.poll_interval,
        imbalance_threshold=args.imbalance_threshold,
        policy=RetryPolicy(timeout=args.timeout, retries=args.retries),
    )
    with contextlib.ExitStack() as stack:
        trace = (
            stack.enter_context(JsonlTraceSink(args.trace))
            if args.trace
            else None
        )
        summary = run_stress_sync(config, trace=trace)
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        flat = {
            "targets": summary["targets"],
            "requests": summary["requests"]["total"],
            "success": summary["requests"]["success"],
            "error rate": summary["requests"]["error_rate"],
            "p50/p95/p99 (ms)": "/".join(
                str(summary["latency_ms"][p]) for p in ("p50", "p95", "p99")
            ),
            "throughput (req/s)": summary["throughput_rps"],
            "rebalance converged": summary["rebalance"]["converged"],
            "rebalance seconds": summary["rebalance"]["seconds"],
        }
        print(format_kv(flat))
    return 0 if summary["requests"]["success"] > 0 else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_cache", False):
        # Every run_trials call below resolves the cache from the
        # environment, so one switch covers arbitrarily nested calls.
        old = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = "0"
        try:
            return _dispatch(args)
        finally:
            if old is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = old
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "experiments":
        if args.experiments_command == "list":
            return _cmd_list()
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "fabric":
        if args.fabric_command == "run":
            return _cmd_fabric_run(args)
        if args.fabric_command == "worker":
            return _cmd_fabric_worker(args)
        return _cmd_fabric_status(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "theory":
        return _cmd_theory(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stress":
        return _cmd_stress(args)
    if args.command == "report":
        from repro.experiments.report import generate_report

        generate_report(
            args.out,
            scale=args.scale,
            seed=args.seed,
            n_jobs=args.jobs,
            experiment_ids=args.only,
        )
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
