"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "IdSpaceError",
    "RingError",
    "ProtocolError",
    "SimulationError",
    "StrategyError",
    "TrialError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""


class IdSpaceError(ReproError, ValueError):
    """An identifier or interval does not fit the identifier space."""


class RingError(ReproError):
    """The ring state is invalid (empty ring, unknown slot, broken order)."""


class ProtocolError(ReproError):
    """A protocol-level Chord operation failed (dead node, bad RPC)."""


class SimulationError(ReproError):
    """The tick simulation reached an invalid state."""


class StrategyError(ReproError):
    """A load-balancing strategy was misused or misconfigured."""


class TrialError(SimulationError):
    """One or more trials of a multi-trial run failed after retries.

    Unlike a bare worker traceback, this names every failed trial: the
    ``failures`` attribute holds :class:`repro.sim.trials.TrialFailure`
    records ``(trial_index, seed_entropy, spawn_key, attempts, error)``,
    and ``n_completed`` counts the sibling trials that did finish (their
    results are preserved in the trial cache, so a re-run only redoes
    the failures).
    """

    def __init__(self, message: str, failures: tuple = (), n_completed: int = 0):
        super().__init__(message)
        self.failures = tuple(failures)
        self.n_completed = n_completed


class ExperimentError(ReproError):
    """An experiment specification cannot be satisfied."""
