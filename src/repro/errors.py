"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "IdSpaceError",
    "RingError",
    "ProtocolError",
    "TransientNetworkError",
    "SimulationError",
    "RingEmptyError",
    "StrategyError",
    "TrialError",
    "ExperimentError",
    "PersistenceError",
    "LintError",
    "SanitizeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""


class IdSpaceError(ReproError, ValueError):
    """An identifier or interval does not fit the identifier space."""


class RingError(ReproError):
    """The ring state is invalid (empty ring, unknown slot, broken order)."""


class ProtocolError(ReproError):
    """A protocol-level Chord operation failed (dead node, bad RPC)."""


class TransientNetworkError(ProtocolError):
    """An RPC was lost in transit (injected drop), not a dead endpoint.

    Raised by :class:`repro.chord.network.SimNetwork` when a message is
    dropped by the fault plane.  Callers may retry: unlike a crash-stop
    failure, the target is still alive and a re-send can succeed.

    ``transport_failure`` marks errors originating in the fabric itself
    (drops and dead endpoints) as opposed to application-level protocol
    errors raised by the callee; node-level fallback logic keys on it.
    """

    transport_failure = True


class SimulationError(ReproError):
    """The tick simulation reached an invalid state."""


class RingEmptyError(SimulationError):
    """Churn removed the last slot from the ring.

    Carries the context needed to understand the collapse without a
    debugger: the tick it happened on, the active strategy, and the
    churn parameters that drove the ring to zero.  The tick engine
    converts this into a structured terminated result (``finished=False``,
    ``termination_reason="ring_empty"``) rather than failing the run.
    """

    def __init__(
        self,
        message: str,
        *,
        tick: int = -1,
        strategy: str = "",
        churn_rate: float = 0.0,
        crash_fraction: float = 0.0,
    ):
        super().__init__(message)
        self.tick = tick
        self.strategy = strategy
        self.churn_rate = churn_rate
        self.crash_fraction = crash_fraction


class StrategyError(ReproError):
    """A load-balancing strategy was misused or misconfigured."""


class TrialError(SimulationError):
    """One or more trials of a multi-trial run failed after retries.

    Unlike a bare worker traceback, this names every failed trial: the
    ``failures`` attribute holds :class:`repro.sim.trials.TrialFailure`
    records ``(trial_index, seed_entropy, spawn_key, attempts, error)``,
    and ``n_completed`` counts the sibling trials that did finish (their
    results are preserved in the trial cache, so a re-run only redoes
    the failures).
    """

    def __init__(self, message: str, failures: tuple = (), n_completed: int = 0):
        super().__init__(message)
        self.failures = tuple(failures)
        self.n_completed = n_completed


class ExperimentError(ReproError):
    """An experiment specification cannot be satisfied."""


class PersistenceError(ReproError, ValueError):
    """A persisted document is malformed or has an unknown format tag.

    Subclasses ``ValueError`` so callers that historically caught
    ``ValueError`` around :mod:`repro.sim.persistence` loads keep
    working.
    """


class LintError(ReproError):
    """The static-analysis subsystem was misused (bad path, unknown rule)."""


class SanitizeError(ReproError):
    """The runtime determinism sanitizer observed a violated invariant.

    Raised only under ``REPRO_SANITIZE=1`` (see :mod:`repro.sanitize`):
    a generator shared across concurrent consumers, a generator
    smuggled into a shard-worker payload, a non-disjoint shard plan, or
    an RNG drawn from inside a phase contracted to be RNG-free.  The
    same condition in an unsanitized run would not crash — it would
    silently break bit-reproducibility, which is worse.
    """
