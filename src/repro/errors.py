"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "IdSpaceError",
    "RingError",
    "ProtocolError",
    "SimulationError",
    "StrategyError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""


class IdSpaceError(ReproError, ValueError):
    """An identifier or interval does not fit the identifier space."""


class RingError(ReproError):
    """The ring state is invalid (empty ring, unknown slot, broken order)."""


class ProtocolError(ReproError):
    """A protocol-level Chord operation failed (dead node, bad RPC)."""


class SimulationError(ReproError):
    """The tick simulation reached an invalid state."""


class StrategyError(ReproError):
    """A load-balancing strategy was misused or misconfigured."""


class ExperimentError(ReproError):
    """An experiment specification cannot be satisfied."""
