"""In-memory RPC fabric for the protocol-level Chord implementation.

Nodes never hold direct references to each other; every interaction goes
through :class:`SimNetwork.rpc`, which

* verifies the callee is alive (dead/unknown targets raise
  :class:`~repro.errors.ProtocolError`, which callers treat as a failure
  detection — exactly how a timeout behaves in a deployed DHT), and
* counts messages per method, giving the maintenance/lookup traffic
  numbers the paper discusses qualitatively ("the estimation based
  neighbor injection requires fewer messages in an actual
  implementation").

The fabric is synchronous and deterministic: latency is modelled by hop
counts, not wall-clock time, matching the paper's tick abstraction where
"a tick is enough time to accomplish at least one maintenance cycle".

Fault plane
-----------
Beyond the original one-shot :meth:`~SimNetwork.drop_next_rpc_to`, the
fabric carries a seeded probabilistic fault model (all default-off):

* a **global loss rate** and **per-link loss rates** — each RPC is
  dropped with the link's rate (falling back to the global one),
  raising :class:`~repro.errors.TransientNetworkError`;
* **crash-stop with delayed detection** — :meth:`crash` kills a node
  abruptly; for ``crash_detection_ticks`` of the network's logical
  clock, :meth:`is_alive` (the cheap oracle peers consult) still
  reports it alive while actual RPCs to it fail, modelling the window
  before timeouts refute a stale view;
* **bounded transparent retries** — :meth:`rpc_retry` re-sends on
  transient drops only (each resend counts as a message and a retry),
  never on dead endpoints.

``drops`` / ``retries`` / ``fallbacks`` counters join the per-method
message accounting (see :meth:`fault_stats`).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any

from repro.errors import ProtocolError, TransientNetworkError
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.chord.node import ChordNode

__all__ = ["SimNetwork"]


class SimNetwork:
    """Registry of protocol nodes plus the message accounting fabric."""

    def __init__(self) -> None:
        self._nodes: dict[int, "ChordNode"] = {}
        self.messages = Counter()
        #: per-id count of pending forced drops: the next N RPCs to the
        #: id fail in transit.  A Counter (not a set) so repeated arming
        #: stacks — forcing a *chain* of drops is how the retry
        #: accounting is pinned by tests.
        self._drop_once: Counter[int] = Counter()
        # -- probabilistic fault plane (inert by default) ---------------
        #: probability that any RPC is dropped in transit
        self.loss_rate = 0.0
        #: per-target loss rates overriding the global one
        self._link_loss: dict[int, float] = {}
        self._fault_rng = None
        #: how long a crashed node still looks alive to :meth:`is_alive`
        self.crash_detection_ticks = 0
        #: successor backups kept by each node (None == full list)
        self.replication_factor: int | None = None
        #: transparent resends :meth:`rpc_retry` may spend per call
        self.transient_retries = 2
        #: logical clock (advanced by the driving simulation's ticks)
        self.clock = 0
        self._crashed_at: dict[int, int] = {}
        self.drops = 0
        self.retries = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, node: "ChordNode") -> None:
        if node.id in self._nodes and self._nodes[node.id].alive:
            raise ProtocolError(f"id {node.id} already registered and alive")
        self._nodes[node.id] = node
        # A fresh node under a reused id must not inherit the previous
        # owner's fault state: crash bookkeeping, per-link loss rate, or
        # one-shot drops armed against the dead node.
        self._purge_fault_state(node.id)

    def deregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)
        self._purge_fault_state(node_id)

    def _purge_fault_state(self, node_id: int) -> None:
        """Forget per-id fault-injection state (id removed or reused)."""
        self._crashed_at.pop(node_id, None)
        self._link_loss.pop(node_id, None)
        self._drop_once.pop(node_id, None)

    def node(self, node_id: int) -> "ChordNode":
        """Direct (non-RPC) access for orchestration and assertions."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ProtocolError(f"no node with id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def is_alive(self, node_id: int) -> bool:
        """Cheap liveness oracle peers consult between probes.

        A crash-stop node keeps *appearing* alive here for
        ``crash_detection_ticks`` after :meth:`crash` — the stale view a
        real peer holds until its timeouts refute it.  Actual RPCs to
        the node fail throughout.
        """
        node = self._nodes.get(node_id)
        if node is None:
            return False
        if node.alive:
            return True
        crashed = self._crashed_at.get(node_id)
        if crashed is not None:
            if self.clock - crashed < self.crash_detection_ticks:
                return True
            del self._crashed_at[node_id]
        return False

    def alive_ids(self) -> list[int]:
        return sorted(i for i, n in self._nodes.items() if n.alive)

    def __len__(self) -> int:
        return len(self.alive_ids())

    def node_count(self) -> int:
        """Registered node count (alive or not) — O(1)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def drop_next_rpc_to(self, node_id: int, count: int = 1) -> None:
        """Make the next ``count`` RPCs to ``node_id`` fail in transit.

        Repeated calls stack (two arms == the next two RPCs drop), which
        is what lets tests force a drop *chain* through
        :meth:`rpc_retry` and assert its exact message/retry accounting.
        """
        if count < 1:
            raise ProtocolError(f"drop count must be >= 1, got {count}")
        self._drop_once[node_id] += count

    def configure_faults(
        self,
        *,
        loss_rate: float = 0.0,
        seed=None,
        crash_detection_ticks: int = 0,
        replication_factor: int | None = None,
        transient_retries: int | None = None,
    ) -> None:
        """Arm the probabilistic fault plane (seeded for determinism)."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ProtocolError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self.loss_rate = loss_rate
        self.crash_detection_ticks = crash_detection_ticks
        self.replication_factor = replication_factor
        if transient_retries is not None:
            if transient_retries < 0:
                raise ProtocolError(
                    f"transient_retries must be >= 0, got {transient_retries}"
                )
            self.transient_retries = transient_retries
        if loss_rate > 0 or self._link_loss:
            self._fault_rng = make_rng(seed)

    def set_link_loss(self, node_id: int, rate: float) -> None:
        """Per-link drop rate for RPCs *to* ``node_id`` (overrides the
        global ``loss_rate``; 0 restores the global behaviour)."""
        if not 0.0 <= rate <= 1.0:
            raise ProtocolError(f"link loss rate must be in [0, 1], got {rate}")
        if rate <= 0.0:
            self._link_loss.pop(node_id, None)
            return
        self._link_loss[node_id] = rate
        if self._fault_rng is None:
            self._fault_rng = make_rng(None)

    def crash(self, node_id: int) -> None:
        """Crash-stop ``node_id``: no goodbye, no hand-off.

        The node stays registered as a corpse so :meth:`is_alive` can
        keep up the pretence for ``crash_detection_ticks``.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise ProtocolError(f"cannot crash unknown id {node_id}")
        node.fail()
        if self.crash_detection_ticks > 0:
            self._crashed_at[node_id] = self.clock

    def tick(self) -> None:
        """Advance the logical clock (drives crash-detection aging)."""
        self.clock += 1

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    def rpc(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``method`` on the node that owns ``target_id``.

        Raises :class:`TransientNetworkError` for an in-transit drop
        (one-shot or probabilistic) and :class:`ProtocolError` when the
        target is missing or dead — callers interpret either as a
        detected failure, but only the former is worth retrying.
        """
        self.messages[method] += 1
        if self._drop_once.get(target_id, 0) > 0:
            self._drop_once[target_id] -= 1
            if self._drop_once[target_id] <= 0:
                del self._drop_once[target_id]
            self.drops += 1
            raise TransientNetworkError(
                f"rpc {method} to {target_id} dropped"
            )
        rate = self._link_loss.get(target_id, self.loss_rate)
        if (
            rate > 0.0
            and self._fault_rng is not None
            and self._fault_rng.random() < rate
        ):
            self.drops += 1
            raise TransientNetworkError(
                f"rpc {method} to {target_id} lost in transit"
            )
        node = self._nodes.get(target_id)
        if node is None or not node.alive:
            err = ProtocolError(
                f"rpc {method} to dead/unknown id {target_id}"
            )
            err.transport_failure = True
            raise err
        return getattr(node, method)(*args, **kwargs)

    def rpc_retry(
        self, target_id: int, method: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Like :meth:`rpc`, but re-send after transient drops.

        Spends at most ``transient_retries`` resends; each one counts a
        message (it is one) and a retry.  Dead/unknown endpoints are
        not retried — a timeout there is a detection, not noise.

        Exact accounting per call (pinned by tests): with ``k`` transit
        drops and budget ``b = transient_retries``,

        * ``k <= b`` (eventually delivered): ``k + 1`` messages,
          ``k`` retries, ``k`` drops;
        * ``k > b`` (budget exhausted, raises): ``b + 1`` messages,
          ``b`` retries, ``b + 1`` drops — the final failed send is a
          message and a drop but not a retry, because nothing is
          re-sent after it.
        """
        attempts = self.transient_retries
        while True:
            try:
                return self.rpc(target_id, method, *args, **kwargs)
            except TransientNetworkError:
                if attempts <= 0:
                    raise
                attempts -= 1
                self.retries += 1

    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def reset_messages(self) -> None:
        """Zero the whole message plane: per-method counts *and* the
        fault counters (``drops``/``retries``/``fallbacks``).

        The fault counters are message accounting too — a drop is a
        message that died in transit, a retry is a resend.  Resetting
        only ``messages`` (the old behaviour) made ``fault_stats()``
        leak counts across trials that reset between phases, silently
        corrupting any per-phase fault measurement.
        """
        self.messages.clear()
        self.reset_fault_stats()

    def reset_fault_stats(self) -> None:
        """Zero ``drops``/``retries``/``fallbacks`` only (keep messages)."""
        self.drops = 0
        self.retries = 0
        self.fallbacks = 0

    def fault_stats(self) -> dict[str, int]:
        """Fault-plane accounting alongside the message counts."""
        return {
            "drops": self.drops,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
        }
