"""In-memory RPC fabric for the protocol-level Chord implementation.

Nodes never hold direct references to each other; every interaction goes
through :class:`SimNetwork.rpc`, which

* verifies the callee is alive (dead/unknown targets raise
  :class:`~repro.errors.ProtocolError`, which callers treat as a failure
  detection — exactly how a timeout behaves in a deployed DHT), and
* counts messages per method, giving the maintenance/lookup traffic
  numbers the paper discusses qualitatively ("the estimation based
  neighbor injection requires fewer messages in an actual
  implementation").

The fabric is synchronous and deterministic: latency is modelled by hop
counts, not wall-clock time, matching the paper's tick abstraction where
"a tick is enough time to accomplish at least one maintenance cycle".
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any

from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.chord.node import ChordNode

__all__ = ["SimNetwork"]


class SimNetwork:
    """Registry of protocol nodes plus the message accounting fabric."""

    def __init__(self) -> None:
        self._nodes: dict[int, "ChordNode"] = {}
        self.messages = Counter()
        #: ids whose next incoming RPC should fail once (fault injection)
        self._drop_once: set[int] = set()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, node: "ChordNode") -> None:
        if node.id in self._nodes and self._nodes[node.id].alive:
            raise ProtocolError(f"id {node.id} already registered and alive")
        self._nodes[node.id] = node

    def deregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    def node(self, node_id: int) -> "ChordNode":
        """Direct (non-RPC) access for orchestration and assertions."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ProtocolError(f"no node with id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def is_alive(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    def alive_ids(self) -> list[int]:
        return sorted(i for i, n in self._nodes.items() if n.alive)

    def __len__(self) -> int:
        return len(self.alive_ids())

    def node_count(self) -> int:
        """Registered node count (alive or not) — O(1)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def drop_next_rpc_to(self, node_id: int) -> None:
        """Make the next RPC to ``node_id`` fail once (transient fault)."""
        self._drop_once.add(node_id)

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    def rpc(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``method`` on the node that owns ``target_id``.

        Raises :class:`ProtocolError` when the target is missing, dead,
        or a transient drop was injected — callers interpret this as a
        detected failure.
        """
        self.messages[method] += 1
        if target_id in self._drop_once:
            self._drop_once.discard(target_id)
            raise ProtocolError(f"rpc {method} to {target_id} dropped")
        node = self._nodes.get(target_id)
        if node is None or not node.alive:
            raise ProtocolError(f"rpc {method} to dead/unknown id {target_id}")
        return getattr(node, method)(*args, **kwargs)

    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def reset_messages(self) -> None:
        self.messages.clear()
