"""Ring orchestration: build, converge, churn and verify Chord networks.

:class:`ChordRing` is the operator's console for the protocol layer —
tests, examples and the protocol-level balancing demo drive whole
networks through it.  It owns no protocol state itself; everything is in
the nodes and the :class:`~repro.chord.network.SimNetwork`.
"""

from __future__ import annotations

import numpy as np

from repro.chord.network import SimNetwork
from repro.chord.node import ChordNode
from repro.errors import RingError
from repro.hashspace.hashing import sha1_ids
from repro.hashspace.idspace import SPACE_160, IdSpace
from repro.util.rng import make_rng

__all__ = ["ChordRing"]


class ChordRing:
    """A convenience wrapper around a whole protocol-level Chord network."""

    def __init__(
        self,
        space: IdSpace = SPACE_160,
        *,
        n_successors: int = 5,
        seed: int | None = 0,
    ):
        self.space = space
        self.n_successors = n_successors
        self.network = SimNetwork()
        self.rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        n_nodes: int,
        *,
        space: IdSpace = SPACE_160,
        n_successors: int = 5,
        seed: int | None = 0,
        converge: bool = True,
    ) -> "ChordRing":
        """Build an ``n_nodes`` ring with SHA-1 node ids and converge it."""
        ring = cls(space, n_successors=n_successors, seed=seed)
        ids = ring._draw_ids(n_nodes)
        first = ChordNode(
            ids[0], space, ring.network, n_successors=n_successors
        )
        first.create()
        for ident in ids[1:]:
            node = ChordNode(
                ident, space, ring.network, n_successors=n_successors
            )
            node.join(first.id)
        if converge:
            ring.converge(max_rounds=max(64, 2 * n_nodes))
        return ring

    def _draw_ids(self, count: int) -> list[int]:
        ids: list[int] = []
        seen: set[int] = set()
        while len(ids) < count:
            for ident in sha1_ids(count - len(ids), self.space, self.rng):
                if ident not in seen and not self.network.has_node(ident):
                    seen.add(ident)
                    ids.append(ident)
        return ids

    # ------------------------------------------------------------------
    # membership operations
    # ------------------------------------------------------------------
    def join_node(self, node_id: int | None = None) -> ChordNode:
        """Add one node (random SHA-1 id unless given) via a random peer."""
        if node_id is None:
            node_id = self._draw_ids(1)[0]
        bootstrap = self.random_alive_id()
        node = ChordNode(
            node_id, self.space, self.network, n_successors=self.n_successors
        )
        node.join(bootstrap)
        return node

    def fail_node(self, node_id: int) -> None:
        self.network.node(node_id).fail()

    def leave_node(self, node_id: int) -> None:
        self.network.node(node_id).leave()

    def random_alive_id(self) -> int:
        ids = self.network.alive_ids()
        if not ids:
            raise RingError("no live nodes")
        return int(ids[self.rng.integers(0, len(ids))])

    # ------------------------------------------------------------------
    # maintenance driving
    # ------------------------------------------------------------------
    def maintenance_round(self) -> None:
        """One cycle on every live node, in random order (as reality would)."""
        ids = self.network.alive_ids()
        for ident in self.rng.permutation(len(ids)):
            node = self.network.node(ids[int(ident)])
            if node.alive:
                node.maintenance_cycle()

    def converge(self, max_rounds: int = 64) -> int:
        """Run maintenance until the ring verifies, then fix all fingers.

        Returns the number of rounds used; raises :class:`RingError` when
        the ring fails to stabilize within ``max_rounds``.
        """
        for round_no in range(1, max_rounds + 1):
            self.maintenance_round()
            if self.is_consistent():
                for ident in self.network.alive_ids():
                    self.network.node(ident).fix_all_fingers()
                return round_no
        raise RingError(f"ring did not converge in {max_rounds} rounds")

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        try:
            self.verify()
            return True
        except RingError:
            return False

    def verify(self) -> None:
        """Check the successor cycle and predecessor agreement.

        * following ``successor`` pointers from any node visits every
          live node exactly once before returning;
        * each node's successor names it as predecessor.
        """
        alive = self.network.alive_ids()
        if not alive:
            raise RingError("no live nodes")
        start = alive[0]
        visited = [start]
        current = start
        for _ in range(len(alive)):
            nxt = self.network.node(current).successor
            if nxt == start:
                break
            if not self.network.is_alive(nxt):
                raise RingError(f"{current} points at dead successor {nxt}")
            visited.append(nxt)
            current = nxt
        else:
            raise RingError("successor walk did not cycle")
        if sorted(visited) != list(alive):
            missing = set(alive) - set(visited)
            raise RingError(f"cycle misses nodes: {sorted(missing)[:5]}...")
        for ident in alive:
            node = self.network.node(ident)
            succ = self.network.node(node.successor)
            if len(alive) > 1 and succ.predecessor != ident:
                raise RingError(
                    f"{node.successor}.predecessor is {succ.predecessor}, "
                    f"expected {ident}"
                )

    def ground_truth_holder(self, key: int) -> int:
        """The id that *should* be responsible for ``key`` (sorted-ids oracle)."""
        alive = self.network.alive_ids()
        if not alive:
            raise RingError("no live nodes")
        for ident in alive:
            if ident >= key:
                return ident
        return alive[0]

    # ------------------------------------------------------------------
    # data and measurement helpers
    # ------------------------------------------------------------------
    def put(self, key: int, value) -> tuple[int, int]:
        node = self.network.node(self.random_alive_id())
        return node.put(key, value)

    def get(self, key: int) -> tuple[object, int]:
        node = self.network.node(self.random_alive_id())
        return node.get(key)

    def primary_loads(self) -> dict[int, int]:
        """Primary item count per live node — the protocol-level workload."""
        return {
            ident: self.network.node(ident).store.primary_count
            for ident in self.network.alive_ids()
        }

    def total_primaries(self) -> int:
        return sum(self.primary_loads().values())

    def lookup_hops_sample(self, n_lookups: int = 100) -> np.ndarray:
        """Hop counts for ``n_lookups`` random-key lookups from random nodes."""
        hops = np.empty(n_lookups, dtype=np.int64)
        for i in range(n_lookups):
            key = self.space.random_id(self.rng)
            node = self.network.node(self.random_alive_id())
            _, h = node.find_successor(key)
            hops[i] = h
        return hops
