"""Protocol-level Chord: the substrate the paper's network model assumes.

This layer implements the actual Chord protocol (successor lists, finger
tables, stabilization, iterative lookup) plus the ChordReduce-style
active-backup replication the paper's simulation abstracts away.  The
tick simulator (:mod:`repro.sim`) encodes the same semantics at a level
where million-task experiments are feasible; this package exists to
validate those semantics and to support protocol-level demos.
"""

from repro.chord.balance import ProtocolSimulation, ProtocolView
from repro.chord.fingers import FingerTable
from repro.chord.latency import LatencyModel, lookup_latency_ms
from repro.chord.network import SimNetwork
from repro.chord.node import ChordNode
from repro.chord.ring import ChordRing
from repro.chord.stats import RingStats, collect_ring_stats, finger_accuracy
from repro.chord.storage import NodeStore

__all__ = [
    "SimNetwork",
    "ChordNode",
    "ChordRing",
    "FingerTable",
    "NodeStore",
    "ProtocolSimulation",
    "ProtocolView",
    "RingStats",
    "collect_ring_stats",
    "finger_accuracy",
    "LatencyModel",
    "lookup_latency_ms",
]
