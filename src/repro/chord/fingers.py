"""Chord finger tables (Stoica et al., SIGCOMM 2001).

Finger ``k`` of a node with identifier ``n`` points at the first node
whose identifier succeeds ``n + 2**k`` on the ring.  Fingers give Chord
its O(log N) lookups; they are repaired lazily by ``fix_fingers``.
"""

from __future__ import annotations

from repro.hashspace.idspace import IdSpace

__all__ = ["FingerTable"]


class FingerTable:
    """Fixed-size table of finger targets and their current entries."""

    def __init__(self, owner_id: int, space: IdSpace):
        self.owner_id = owner_id
        self.space = space
        #: ``starts[k] == owner_id + 2**k`` — the id each finger covers
        self.starts: list[int] = list(space.iter_powers(owner_id))
        #: current best-known successor of each start (None = unknown)
        self.entries: list[int | None] = [None] * space.bits

    def __len__(self) -> int:
        return len(self.entries)

    def set(self, k: int, node_id: int | None) -> None:
        self.entries[k] = node_id

    def get(self, k: int) -> int | None:
        return self.entries[k]

    def clear_entry(self, node_id: int) -> None:
        """Forget a node everywhere (called when it is detected dead)."""
        for k, entry in enumerate(self.entries):
            if entry == node_id:
                self.entries[k] = None

    def closest_preceding(self, key: int) -> int | None:
        """Best known node strictly between the owner and ``key``.

        Scans fingers farthest-first, the core of Chord's O(log N) hop
        bound.  Returns None when no finger helps (caller falls back to
        its successor).
        """
        for entry in reversed(self.entries):
            if entry is None or entry == self.owner_id:
                continue
            if self.space.in_interval(
                entry, self.owner_id, key, closed_right=False
            ):
                return entry
        return None

    def known_ids(self) -> set[int]:
        """Distinct live entries currently in the table."""
        return {e for e in self.entries if e is not None}
