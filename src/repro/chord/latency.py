"""Synthetic latency model for the protocol network.

The tick abstraction hides wire time; this model puts it back for the
questions where it matters — e.g. *iterative vs recursive lookup*: both
visit O(log n) nodes, but iterative pays a full round trip from the
querier per hop while recursive forwards one way and answers once.

Latencies are synthetic but principled: each ordered pair of nodes gets
a stable draw from a lognormal distribution (median ``base_ms``), the
classic heavy-tailed internet RTT shape.  Stability comes from hashing
the node pair — no state per pair, fully deterministic per seed.
"""

from __future__ import annotations

import numpy as np

from repro.chord.node import ChordNode
from repro.errors import ConfigError
from repro.util.rng import make_rng

__all__ = ["LatencyModel", "lookup_latency_ms"]


class LatencyModel:
    """Deterministic pairwise one-way latencies (milliseconds)."""

    def __init__(
        self, *, base_ms: float = 40.0, sigma: float = 0.5, seed: int = 0
    ):
        if base_ms <= 0:
            raise ConfigError(f"base_ms must be positive, got {base_ms}")
        self.base_ms = base_ms
        self.sigma = sigma
        self.seed = seed

    def one_way_ms(self, a: int, b: int) -> float:
        """Stable one-way latency between two node ids (symmetric)."""
        if a == b:
            return 0.0
        lo, hi = (a, b) if a <= b else (b, a)
        # derive a per-pair RNG from the ids; SeedSequence hashes well
        rng = make_rng(
            np.random.SeedSequence([self.seed, lo & (2**63 - 1), hi & (2**63 - 1)])
        )
        return float(
            self.base_ms * np.exp(rng.normal(0.0, self.sigma))
        )

    def rtt_ms(self, a: int, b: int) -> float:
        return 2.0 * self.one_way_ms(a, b)


def lookup_latency_ms(
    node: ChordNode,
    key: int,
    model: LatencyModel,
    *,
    mode: str = "iterative",
) -> tuple[int, float]:
    """Resolve ``key`` from ``node`` and price the lookup in milliseconds.

    ``iterative``: the querier contacts each hop itself — one RTT per
    contacted node plus the final answer.
    ``recursive``: the query forwards one-way hop to hop, and the holder
    answers the querier directly — one-way per hop + one return leg.

    Returns ``(holder_id, total_ms)``.
    """
    if mode == "iterative":
        holder, _, path = node.find_successor_traced(key)
        # the querier pays a full round trip to every node it contacts,
        # then one final RTT to the holder
        total = sum(model.rtt_ms(node.id, contact) for contact in path)
        total += model.rtt_ms(node.id, holder)
        return holder, total
    if mode == "recursive":
        holder, _, path = node.find_successor_traced(key)
        # the query forwards one way along the same contact chain, and
        # the holder answers the querier directly
        chain = [node.id, *path, holder]
        total = sum(
            model.one_way_ms(a, b) for a, b in zip(chain, chain[1:])
        )
        total += model.one_way_ms(holder, node.id)
        return holder, total
    raise ConfigError(f"unknown lookup mode {mode!r}")
