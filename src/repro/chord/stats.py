"""Health and routing statistics for protocol-level Chord networks.

Condenses a live :class:`~repro.chord.ring.ChordRing` into the numbers a
DHT operator watches: routing-table quality, replication coverage, load
spread, and message-cost breakdowns.  Used by the protocol tests, the
``chord_protocol_demo`` example and the protocol benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chord.ring import ChordRing
from repro.metrics.balance import LoadStats, load_stats

__all__ = ["RingStats", "collect_ring_stats", "finger_accuracy"]


@dataclass(frozen=True)
class RingStats:
    """One snapshot of a protocol ring's health."""

    n_alive: int
    finger_fill: float
    finger_accuracy: float
    successor_list_fill: float
    replication_factor: float
    load: LoadStats
    mean_lookup_hops: float
    max_lookup_hops: int
    messages_total: int
    messages_by_method: dict[str, int]

    def as_dict(self) -> dict:
        return {
            "n_alive": self.n_alive,
            "finger_fill": self.finger_fill,
            "finger_accuracy": self.finger_accuracy,
            "successor_list_fill": self.successor_list_fill,
            "replication_factor": self.replication_factor,
            "mean_lookup_hops": self.mean_lookup_hops,
            "max_lookup_hops": self.max_lookup_hops,
            "messages_total": self.messages_total,
            **{f"load_{k}": v for k, v in self.load.as_dict().items()},
        }


def finger_accuracy(ring: ChordRing) -> tuple[float, float]:
    """(fill, accuracy) of all finger tables.

    *fill* = fraction of finger entries that are set;
    *accuracy* = fraction of set entries pointing at the true successor
    of their start (per the sorted-ids oracle).
    """
    alive = ring.network.alive_ids()
    total = set_count = correct = 0
    for ident in alive:
        node = ring.network.node(ident)
        for k, entry in enumerate(node.fingers.entries):
            total += 1
            if entry is None:
                continue
            set_count += 1
            if entry == ring.ground_truth_holder(node.fingers.starts[k]):
                correct += 1
    if total == 0:
        return 0.0, 0.0
    fill = set_count / total
    accuracy = correct / set_count if set_count else 0.0
    return fill, accuracy


def collect_ring_stats(ring: ChordRing, n_lookups: int = 100) -> RingStats:
    """Measure a ring (lookup sampling consumes ring RNG draws)."""
    alive = ring.network.alive_ids()
    fill, accuracy = finger_accuracy(ring)

    succ_fill = 0.0
    replicas = 0
    primaries = 0
    if alive:
        fills = []
        for ident in alive:
            node = ring.network.node(ident)
            fills.append(
                len(node.successor_list)
                / min(node.n_successors, max(len(alive) - 1, 1))
            )
            replicas += node.store.replica_count
            primaries += node.store.primary_count
        succ_fill = float(np.mean(fills))

    loads = np.array(
        [ring.network.node(i).store.primary_count for i in alive]
    )
    hops = ring.lookup_hops_sample(n_lookups) if alive else np.zeros(1)
    return RingStats(
        n_alive=len(alive),
        finger_fill=fill,
        finger_accuracy=accuracy,
        successor_list_fill=min(succ_fill, 1.0),
        replication_factor=(replicas / primaries) if primaries else 0.0,
        load=load_stats(loads),
        mean_lookup_hops=float(hops.mean()),
        max_lookup_hops=int(hops.max()),
        messages_total=ring.network.total_messages(),
        messages_by_method=dict(ring.network.messages),
    )
