"""Run the paper's strategies on the *protocol-level* Chord network.

The tick simulator (:mod:`repro.sim`) is the paper-scale vehicle; this
module closes the loop by executing the exact same
:class:`~repro.core.strategy.Strategy` objects against real protocol
nodes — joins are actual Chord joins, key hand-off rides the
notify/transfer path, queries and announcements are RPCs counted by the
network fabric.  It validates that the simulator's abstractions (instant
acquisition of a range, lossless hand-off) are implementable, and powers
the ``chord_protocol_demo`` example and the cross-layer integration
tests.

Scale guidance: protocol runs are O(messages); keep them at ≲200 hosts /
≲50k tasks.  The measured runtime factors agree with the tick simulator
within trial noise (see ``tests/test_cross_layer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chord.node import ChordNode
from repro.chord.ring import ChordRing
from repro.config import SimulationConfig
from repro.core.registry import make_strategy
from repro.core.strategy import NetworkView, RoundStats
from repro.errors import IdSpaceError, ProtocolError, SimulationError
from repro.hashspace.idspace import IdSpace
from repro.util.rng import make_rng

__all__ = ["ProtocolSimulation", "ProtocolView"]

#: value stored under every task key
_TASK = "task"


@dataclass
class _Host:
    """A physical machine: one main protocol node plus its Sybils."""

    index: int
    main_id: int
    strength: int
    rate: int
    sybil_cap: int
    sybil_ids: list[int] = field(default_factory=list)
    in_network: bool = True

    @property
    def node_ids(self) -> list[int]:
        if not self.in_network:
            return []
        return [self.main_id, *self.sybil_ids]


class ProtocolView(NetworkView):
    """NetworkView over live protocol nodes.

    "Slots" are protocol node *identifiers* (they are plain ints, which
    the strategy code treats opaquely).  Topology queries use only what a
    node knows locally: its successor list, predecessor list, and the
    arcs derivable from them.
    """

    def __init__(self, sim: "ProtocolSimulation"):
        self._sim = sim
        self._stats = RoundStats()
        self._loads: np.ndarray | None = None

    def begin_round(self) -> RoundStats:
        self._loads = self._sim.host_loads()
        self._stats = RoundStats()
        return self._stats

    # -- static context -------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self._sim.config

    @property
    def rng(self) -> np.random.Generator:
        return self._sim.rng

    @property
    def total_tasks(self) -> int:
        return self._sim.config.n_tasks

    @property
    def initial_nodes(self) -> int:
        return self._sim.config.n_nodes

    # -- owner census ------------------------------------------------------
    def network_owners(self) -> np.ndarray:
        return np.array(
            [h.index for h in self._sim.hosts if h.in_network],
            dtype=np.int64,
        )

    def owner_loads(self) -> np.ndarray:
        if self._loads is None:
            self._loads = self._sim.host_loads()
        return self._loads

    def live_owner_load(self, owner: int) -> int:
        return self._sim.host_load(owner)

    def n_sybils(self, owner: int) -> int:
        return len(self._sim.hosts[owner].sybil_ids)

    def can_add_sybil(self, owner: int) -> bool:
        host = self._sim.hosts[owner]
        return len(host.sybil_ids) < host.sybil_cap

    # -- topology (local info only) ------------------------------------
    def main_slot(self, owner: int) -> int:
        return self._sim.hosts[owner].main_id

    def heaviest_slot(self, owner: int) -> int:
        host = self._sim.hosts[owner]
        node_of = self._sim.ring.network.node
        return max(
            host.node_ids, key=lambda nid: node_of(nid).store.primary_count
        )

    def successor_slots(self, slot: int, k: int) -> np.ndarray:
        node = self._sim.ring.network.node(slot)
        alive = self._sim.ring.network.is_alive
        succ = [s for s in node.successor_list if s != slot and alive(s)][:k]
        return np.asarray(succ, dtype=object)

    def predecessor_slots(self, slot: int, k: int) -> np.ndarray:
        node = self._sim.ring.network.node(slot)
        alive = self._sim.ring.network.is_alive
        preds = [
            p for p in node.predecessor_list if p != slot and alive(p)
        ][:k]
        return np.asarray(preds, dtype=object)

    def slot_owner(self, slot: int) -> int:
        return self._sim.owner_of(slot)

    def slot_count(self, slot: int) -> int:
        return self._sim.ring.network.rpc(slot, "rpc_report_load")

    def slot_gap(self, slot: int) -> int:
        node = self._sim.ring.network.node(slot)
        pred = node.predecessor
        if pred is None:
            return 0
        return self._sim.space.distance(pred, slot)

    def slot_id(self, slot: int) -> int:
        return slot

    # -- actions -----------------------------------------------------------
    def create_sybil_random(self, owner: int) -> int:
        ident = self._free_random_id()
        return self._spawn_sybil(owner, ident)

    def create_sybil_in_slot_arc(self, owner: int, slot: int) -> int | None:
        node = self._sim.ring.network.node(slot)
        pred = node.predecessor
        if pred is None:
            return None
        space = self._sim.space
        for _ in range(8):
            try:
                ident = space.random_in_interval(self.rng, pred, slot)
            except IdSpaceError:
                return None
            if not self._sim.ring.network.has_node(ident):
                return self._spawn_sybil(owner, ident)
        return None

    def retire_sybils(self, owner: int) -> int:
        host = self._sim.hosts[owner]
        retired = 0
        for sid in list(host.sybil_ids):
            self._sim.ring.leave_node(sid)
            self._sim.ring.network.deregister(sid)
            host.sybil_ids.remove(sid)
            self._sim.forget_owner(sid)
            retired += 1
        self._stats.sybils_retired += retired
        return retired

    def owner_strength(self, owner: int) -> int:
        return self._sim.hosts[owner].strength

    def relocate_main(self, owner: int, target_slot: int) -> int | None:
        """Protocol-level identity relocation: a real leave + rejoin."""
        host = self._sim.hosts[owner]
        node = self._sim.ring.network.node(target_slot)
        pred = node.predecessor
        if pred is None:
            return None
        space = self._sim.space
        ident = None
        for _ in range(8):
            try:
                candidate = space.random_in_interval(self.rng, pred, target_slot)
            except IdSpaceError:
                return None
            if not self._sim.ring.network.has_node(candidate):
                ident = candidate
                break
        if ident is None:
            return None
        old_id = host.main_id
        new_node = ChordNode(
            ident,
            space,
            self._sim.ring.network,
            n_successors=self._sim.config.num_successors,
        )
        try:
            new_node.join(old_id)
        except ProtocolError:
            self._sim.ring.network.deregister(ident)
            return None
        self._sim.ring.leave_node(old_id)
        self._sim.ring.network.deregister(old_id)
        self._sim.forget_owner(old_id)
        host.main_id = ident
        self._sim.set_owner(ident, owner)
        acquired = new_node.store.primary_count
        self._stats.relocations += 1
        self._stats.tasks_acquired += acquired
        return acquired

    def count_messages(self, n: int = 1) -> None:
        self._stats.messages += n

    @property
    def stats(self) -> RoundStats:
        return self._stats

    # -- internals -------------------------------------------------------
    def _free_random_id(self) -> int:
        space = self._sim.space
        for _ in range(64):
            ident = space.random_id(self.rng)
            if not self._sim.ring.network.has_node(ident):
                return ident
        raise SimulationError("could not find a free protocol identifier")

    def _spawn_sybil(self, owner: int, ident: int) -> int:
        host = self._sim.hosts[owner]
        node = ChordNode(
            ident,
            self._sim.space,
            self._sim.ring.network,
            n_successors=self._sim.config.num_successors,
        )
        try:
            node.join(host.main_id)
        except ProtocolError:
            # Join races a burst of Sybil retirements; one stabilization
            # round repairs the neighbourhood (a real node would simply
            # retry after a timeout).  Skip the action if it still fails.
            self._sim.ring.maintenance_round()
            try:
                node.join(host.main_id)
            except ProtocolError:
                self._sim.ring.network.deregister(ident)
                self._stats.actions_skipped += 1
                return 0
        host.sybil_ids.append(ident)
        self._sim.set_owner(ident, owner)
        acquired = node.store.primary_count
        self._stats.sybils_created += 1
        self._stats.tasks_acquired += acquired
        return acquired


class ProtocolSimulation:
    """Tick loop over a real Chord ring — small-scale twin of TickEngine."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        converge_rounds: int = 32,
        items: dict[int, object] | None = None,
        on_consume=None,
    ):
        """``items`` optionally replaces the anonymous task workload with
        real keyed work units (key → payload); ``on_consume(key, value)``
        is invoked for each completed unit — the hook ChordReduce uses to
        run map/reduce functions."""
        if items is not None and len(items) != config.n_tasks:
            raise SimulationError(
                f"items has {len(items)} entries but config.n_tasks is "
                f"{config.n_tasks}"
            )
        self._items = items
        self.on_consume = on_consume
        self.config = config
        self.rng = make_rng(config.seed)
        self.space = IdSpace(config.bits)
        self.ring = ChordRing(
            self.space, n_successors=config.num_successors, seed=config.seed
        )
        # the replication clamp applies from the first replicate() on;
        # message loss and delayed detection are armed only after the
        # ring is built (a lossy bootstrap is a different experiment)
        failures = config.failures
        self.ring.network.replication_factor = failures.replication_factor
        self._owner_of: dict[int, int] = {}
        self.hosts: list[_Host] = []
        self._build(converge_rounds)
        if failures.message_loss_rate > 0 or failures.crash_detection_ticks > 0:
            self.ring.network.configure_faults(
                loss_rate=failures.message_loss_rate,
                seed=(
                    None
                    if config.seed is None
                    else (int(config.seed) << 8) ^ 0xFA17
                ),
                crash_detection_ticks=failures.crash_detection_ticks,
                replication_factor=failures.replication_factor,
            )

        # churn: the waiting pool starts at network size (§IV-A)
        self._initial_hosts = len(self.hosts)
        self.ideal_ticks = config.n_tasks / sum(h.rate for h in self.hosts)
        if config.churn_rate > 0:
            for offset in range(config.n_nodes):
                index = len(self.hosts)
                if config.heterogeneous:
                    strength = int(self.rng.integers(1, config.max_sybils + 1))
                else:
                    strength = 1
                rate = (
                    strength if config.work_measurement == "strength" else 1
                )
                cap = strength if config.heterogeneous else config.max_sybils
                self.hosts.append(
                    _Host(
                        index=index,
                        main_id=-1,
                        strength=strength,
                        rate=rate,
                        sybil_cap=cap,
                        in_network=False,
                    )
                )

        self.strategy = make_strategy(config)
        self.view = ProtocolView(self)
        self.strategy.on_attach(self.view)
        self.tick = 0
        self.total_consumed = 0
        self.counters: dict[str, int] = {
            "decision_rounds": 0,
            "churn_joins": 0,
            "churn_leaves": 0,
        }
        if failures.crash_fraction > 0:
            self.counters["crashes"] = 0

    # ------------------------------------------------------------------
    def _build(self, converge_rounds: int) -> None:
        cfg = self.config
        ids: list[int] = []
        seen: set[int] = set()
        while len(ids) < cfg.n_nodes:
            ident = self.space.random_id(self.rng)
            if ident not in seen:
                seen.add(ident)
                ids.append(ident)
        first = ChordNode(
            ids[0], self.space, self.ring.network,
            n_successors=cfg.num_successors,
        )
        first.create()
        for ident in ids[1:]:
            ChordNode(
                ident, self.space, self.ring.network,
                n_successors=cfg.num_successors,
            ).join(first.id)
        self.ring.converge(max_rounds=max(converge_rounds, 2 * cfg.n_nodes))

        for index, ident in enumerate(ids):
            if cfg.heterogeneous:
                strength = int(self.rng.integers(1, cfg.max_sybils + 1))
            else:
                strength = 1
            rate = strength if cfg.work_measurement == "strength" else 1
            cap = strength if cfg.heterogeneous else cfg.max_sybils
            self.hosts.append(
                _Host(
                    index=index,
                    main_id=ident,
                    strength=strength,
                    rate=rate,
                    sybil_cap=cap,
                )
            )
            self._owner_of[ident] = index

        # scatter the job's tasks over the ring
        if self._items is not None:
            for key, value in self._items.items():
                self.ring.put(key, value)
        else:
            for _ in range(cfg.n_tasks):
                key = self.space.random_id(self.rng)
                self.ring.put(key, _TASK)

    # ------------------------------------------------------------------
    # host bookkeeping used by the view
    # ------------------------------------------------------------------
    def owner_of(self, node_id: int) -> int:
        return self._owner_of[node_id]

    def set_owner(self, node_id: int, owner: int) -> None:
        self._owner_of[node_id] = owner

    def forget_owner(self, node_id: int) -> None:
        self._owner_of.pop(node_id, None)

    def host_load(self, owner: int) -> int:
        node_of = self.ring.network.node
        return sum(
            node_of(nid).store.primary_count
            for nid in self.hosts[owner].node_ids
        )

    def host_loads(self) -> np.ndarray:
        return np.array(
            [self.host_load(h.index) for h in self.hosts], dtype=np.int64
        )

    def remaining(self) -> int:
        return int(self.host_loads().sum())

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One tick: strategy round, churn, one maintenance round,
        consumption — the same phase order as the tick engine."""
        self.tick += 1
        cfg = self.config
        if cfg.decision_interval and self.tick % cfg.decision_interval == 0:
            stats = self.view.begin_round()
            self.strategy.decide(self.view)
            stats.merge_into(self.counters)
            self.counters["decision_rounds"] += 1
        if cfg.churn_rate > 0:
            self._apply_churn()
        self.ring.network.tick()
        self.ring.maintenance_round()
        consumed = self._consume()
        self.total_consumed += consumed
        return consumed

    def _apply_churn(self) -> None:
        """Protocol churn mirroring the tick engine (§IV-A).

        With ``failures.crash_fraction > 0``, that fraction of
        departures are crash-stop: no replica sync, no hand-off, no
        goodbye — the node simply dies (with delayed detection if
        configured), and its un-replicated primaries die with it.
        """
        rate = self.config.churn_rate
        crash_fraction = self.config.failures.crash_fraction
        in_net = [h for h in self.hosts if h.in_network]
        waiting = [h for h in self.hosts if not h.in_network]
        # departures (keep at least 2 live nodes so the ring survives)
        for host in in_net:
            if len(self.ring.network) <= 2:
                break
            if self.rng.random() >= rate:
                continue
            if crash_fraction > 0 and self.rng.random() < crash_fraction:
                for sid in list(host.sybil_ids):
                    self.ring.network.crash(sid)
                    self.forget_owner(sid)
                host.sybil_ids.clear()
                self.ring.network.crash(host.main_id)
                self.forget_owner(host.main_id)
                host.in_network = False
                host.main_id = -1
                self.counters["churn_leaves"] += 1
                self.counters["crashes"] += 1
                continue
            for sid in list(host.sybil_ids):
                self.ring.leave_node(sid)
                self.ring.network.deregister(sid)
                self.forget_owner(sid)
            host.sybil_ids.clear()
            self.ring.leave_node(host.main_id)
            self.ring.network.deregister(host.main_id)
            self.forget_owner(host.main_id)
            host.in_network = False
            host.main_id = -1
            self.counters["churn_leaves"] += 1
        # arrivals
        for host in waiting:
            if self.rng.random() >= rate:
                continue
            ident = None
            for _ in range(64):
                candidate = self.space.random_id(self.rng)
                if not self.ring.network.has_node(candidate):
                    ident = candidate
                    break
            if ident is None:
                continue
            node = ChordNode(
                ident,
                self.space,
                self.ring.network,
                n_successors=self.config.num_successors,
            )
            try:
                node.join(self.ring.random_alive_id())
            except ProtocolError:
                self.ring.network.deregister(ident)
                continue
            host.in_network = True
            host.main_id = ident
            self.set_owner(ident, host.index)
            self.counters["churn_joins"] += 1

    def _consume(self) -> int:
        consumed = 0
        node_of = self.ring.network.node
        for host in self.hosts:
            if not host.in_network:
                continue
            budget = host.rate
            # heaviest identity first, like the tick engine
            nodes = sorted(
                (node_of(nid) for nid in host.node_ids),
                key=lambda n: -n.store.primary_count,
            )
            for node in nodes:
                while budget > 0 and node.store.primary_count > 0:
                    key = next(iter(node.store.primary_keys))
                    value = node.complete_task(key)
                    if self.on_consume is not None:
                        self.on_consume(key, value)
                    budget -= 1
                    consumed += 1
                if budget == 0:
                    break
        return consumed

    def run(self, max_ticks: int | None = None) -> dict:
        """Run to completion; returns a summary dict.

        With failure injection, a run can end with work destroyed
        (``termination_reason="data_loss"``): crashed nodes took
        un-replicated keys with them, so the visible workload drains
        before every submitted task ran.  Keys that survived as
        replicas get a short grace window of maintenance-only ticks to
        be promoted and counted before the run is declared over.
        """
        cap = max_ticks if max_ticks is not None else self.config.max_ticks
        n_tasks = self.config.n_tasks
        grace = max(6, self.config.num_successors + 2)
        while self.tick < cap:
            if self.remaining() > 0:
                self.step()
                continue
            if self.total_consumed >= n_tasks:
                break
            # tasks are missing: they are either truly lost or sitting
            # as un-promoted replicas on a crashed node's successor
            recovered = False
            for _ in range(grace):
                if self.tick >= cap:
                    break
                self.step()
                if self.remaining() > 0:
                    recovered = True
                    break
            if not recovered:
                break
        remaining = self.remaining()
        lost = max(0, n_tasks - self.total_consumed - remaining)
        if remaining == 0 and lost == 0:
            reason = None
        elif remaining == 0:
            reason = "data_loss"
        else:
            reason = "max_ticks"
        net = self.ring.network
        return {
            **self.counters,
            "runtime_ticks": self.tick,
            "ideal_ticks": self.ideal_ticks,
            "runtime_factor": self.tick / self.ideal_ticks,
            "completed": remaining == 0 and lost == 0,
            "termination_reason": reason,
            "total_consumed": self.total_consumed,
            "tasks_lost": lost,
            "strategy_messages": self.counters.get("messages", 0),
            "network_messages": net.total_messages(),
            **{f"network_{k}": v for k, v in net.fault_stats().items()},
        }
