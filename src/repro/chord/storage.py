"""Key-value storage with active replication (the ChordReduce model).

The paper's simulations assume nodes are "active and aggressive in
creating and monitoring the backups and the data they are responsible
for", so that a node's death loses nothing and a join acquires its range
immediately.  This module implements that model at the protocol level:

* each node holds **primary** items (keys it is responsible for) and
  **replica** items (pushed to it by the ``r`` predecessors whose data it
  backs up);
* every maintenance cycle a node pushes its primary set to its successor
  list, and *promotes* any replica whose key now falls into its own
  responsibility range (that is how the range of a dead predecessor is
  absorbed with zero loss).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.hashspace.idspace import IdSpace

__all__ = ["NodeStore"]


class NodeStore:
    """Primary + replica storage of one protocol node."""

    def __init__(self, space: IdSpace):
        self._space = space
        self._primary: dict[int, Any] = {}
        self._replicas: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # primary set
    # ------------------------------------------------------------------
    def put_primary(self, key: int, value: Any) -> None:
        self._space.validate(key)
        self._primary[key] = value
        self._replicas.pop(key, None)

    def get(self, key: int) -> Any:
        """Read a key — primaries first, replicas as fallback."""
        if key in self._primary:
            return self._primary[key]
        return self._replicas[key]

    def has(self, key: int) -> bool:
        return key in self._primary or key in self._replicas

    def pop_primary_range(self, start: int, end: int) -> dict[int, Any]:
        """Remove and return primaries in the arc ``(start, end]``.

        Used when a new predecessor (joiner or Sybil) takes over part of
        the node's range.  The handed-off items stay as replicas here —
        this node is now their first backup.
        """
        moved = {
            k: v
            for k, v in self._primary.items()
            if self._space.in_interval(k, start, end)
        }
        for k in moved:
            del self._primary[k]
            self._replicas[k] = moved[k]
        return moved

    @property
    def primary_keys(self) -> set[int]:
        return set(self._primary)

    @property
    def primary_count(self) -> int:
        return len(self._primary)

    def primary_items(self) -> dict[int, Any]:
        return dict(self._primary)

    # ------------------------------------------------------------------
    # replica set
    # ------------------------------------------------------------------
    def accept_replicas(self, items: dict[int, Any]) -> None:
        """Store backup copies pushed by a predecessor."""
        for key, value in items.items():
            if key not in self._primary:
                self._replicas[key] = value

    def promote_range(self, start: int, end: int) -> int:
        """Promote replicas in ``(start, end]`` to primaries.

        Called every maintenance cycle with the node's current
        responsibility arc; returns how many items were promoted (>0
        means this node just absorbed a failed predecessor's range).
        """
        promote = [
            k
            for k in self._replicas
            if self._space.in_interval(k, start, end)
        ]
        for k in promote:
            self._primary[k] = self._replicas.pop(k)
        return len(promote)

    def drop_replicas_outside(self, keys: Iterable[int]) -> None:
        """Garbage-collect replicas no longer covered by any predecessor."""
        keep = set(keys)
        for k in list(self._replicas):
            if k not in keep:
                del self._replicas[k]

    def sync_replica_range(
        self, start: int, end: int, items: dict[int, Any]
    ) -> None:
        """Make our replicas of the arc ``(start, end]`` match ``items``.

        This is the push half of active backup with *tombstone* semantics:
        replicas in the origin's responsibility arc that the origin no
        longer holds (completed tasks, deleted keys) are dropped, so a
        later promotion cannot resurrect them.
        """
        for k in list(self._replicas):
            if self._space.in_interval(k, start, end) and k not in items:
                del self._replicas[k]
        self.accept_replicas(items)

    def remove_primary(self, key: int) -> Any:
        """Delete a primary item (task completion); returns its value."""
        return self._primary.pop(key)

    def remove_replica(self, key: int) -> None:
        """Drop one backup copy (completion tombstone); idempotent."""
        self._replicas.pop(key, None)

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def all_keys(self) -> set[int]:
        return set(self._primary) | set(self._replicas)
