"""Protocol-level Chord node (Stoica et al.) with ChordReduce extensions.

Implements the full Chord maintenance protocol — successor lists,
predecessor checks, stabilize/notify, finger repair, iterative lookup —
plus the **active backup** behaviour the paper's simulations assume:
every maintenance cycle a node replicates its primary data to its
successor list and promotes any replicas that have fallen into its own
responsibility range (absorbing dead predecessors losslessly).

All inter-node calls travel through :class:`~repro.chord.network.SimNetwork`
(``rpc_*`` methods are the node's wire surface); a failed RPC is treated
as a detected failure, as a timeout would be.
"""

from __future__ import annotations

from typing import Any

from repro.chord.fingers import FingerTable
from repro.chord.network import SimNetwork
from repro.chord.storage import NodeStore
from repro.errors import ProtocolError
from repro.hashspace.idspace import IdSpace

__all__ = ["ChordNode"]


class ChordNode:
    """One Chord participant.

    Parameters
    ----------
    node_id:
        Identifier on the ring (already hashed).
    space:
        The identifier space shared by the whole network.
    network:
        RPC fabric; the node registers itself on :meth:`create` / :meth:`join`.
    n_successors:
        Length of the successor (and replication) list — the paper's
        ``Successors`` variable, default 5.
    """

    def __init__(
        self,
        node_id: int,
        space: IdSpace,
        network: SimNetwork,
        *,
        n_successors: int = 5,
    ):
        space.validate(node_id)
        self.id = node_id
        self.space = space
        self.network = network
        self.n_successors = n_successors

        self.alive = False
        self.predecessor: int | None = None
        self.successor_list: list[int] = []
        #: §V-B: "Nodes also keep track of the same number of predecessors"
        self.predecessor_list: list[int] = []
        # replica promotion is gated on the predecessor pointer holding
        # still for a couple of cycles (see promote_replicas)
        self._pred_seen: int | None = None
        self._pred_stable = 0
        self.fingers = FingerTable(node_id, space)
        self.store = NodeStore(space)
        self._next_finger = 0
        # lossy-transport aware send: transparently re-sends after
        # injected drops (bounded by the network's transient_retries);
        # identical to network.rpc on a loss-free fabric
        self._rpc = network.rpc_retry

    # ------------------------------------------------------------------
    # dunder / convenience
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChordNode({self.id}, alive={self.alive})"

    @property
    def successor(self) -> int:
        if not self.successor_list:
            raise ProtocolError(f"node {self.id} has no successor")
        return self.successor_list[0]

    def responsibility_arc(self) -> tuple[int, int]:
        """The arc this node currently believes it is responsible for."""
        start = self.predecessor if self.predecessor is not None else self.id
        return start, self.id

    # ------------------------------------------------------------------
    # ring membership
    # ------------------------------------------------------------------
    def create(self) -> None:
        """Bootstrap a brand-new ring containing only this node."""
        self.alive = True
        self.predecessor = None
        self.successor_list = [self.id]
        self.network.register(self)

    def join(self, bootstrap_id: int) -> None:
        """Join an existing ring via any live node.

        The node finds its successor through the bootstrap, registers,
        and immediately runs one stabilize cycle so the successor learns
        about it and hands over its key range — the paper's assumption
        that "when a node joins, it acquires all the work it is
        responsible for".
        """
        succ, _ = self._lookup_via(bootstrap_id, self.id)
        self.alive = True
        self.predecessor = None
        self.successor_list = [succ]
        self.network.register(self)
        # Stabilize to a fixpoint: each cycle walks the successor pointer
        # one node closer (via successor.predecessor), so looping until it
        # stops moving lands us on our true immediate successor even when
        # the lookup resolved against stale pointers mid-churn.
        for _ in range(self.network.node_count() + 1):
            before = self.successor
            self.stabilize()
            if self.successor == before:
                break

    def leave(self) -> None:
        """Graceful departure: hand primaries to the successor and unlink."""
        if not self.alive:
            return
        if self.successor != self.id:
            # Final replica sync: without it, successors may still hold
            # replicas of items this node completed since its last
            # maintenance cycle, and would wrongly resurrect them when
            # they promote our range after we are gone.
            self.replicate()
            items = self.store.primary_items()
            if items:
                # the successor pointer can be stale under crash-stop
                # churn; walk the successor list until one handoff
                # lands.  If every successor is unreachable the items
                # stay behind as replicas — promotion recovers them.
                for sid in self.successor_list:
                    if sid == self.id:
                        continue
                    try:
                        self._rpc(sid, "rpc_receive_primaries", items)
                        break
                    except ProtocolError:
                        continue
            # link predecessor and successor to each other
            if self.predecessor is not None:
                try:
                    self._rpc(
                        self.successor, "rpc_notify", self.predecessor
                    )
                except ProtocolError:
                    pass
                # actively repair the predecessor's successor list so a
                # burst of graceful leaves cannot strand it behind a wall
                # of dead entries before its next stabilize cycle
                try:
                    self._rpc(
                        self.predecessor,
                        "rpc_replace_successor",
                        self.id,
                        self.successor,
                    )
                except ProtocolError:
                    pass
        self.alive = False

    def fail(self) -> None:
        """Abrupt crash: no goodbye, data recovered from replicas."""
        self.alive = False

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def find_successor(self, key: int) -> tuple[int, int]:
        """Iteratively resolve the node responsible for ``key``.

        Returns ``(node_id, hops)``.  Hops count the nodes contacted
        beyond this one, the metric for the O(log N) routing property.
        """
        return self._lookup_via(self.id, key)

    def find_successor_traced(
        self, key: int
    ) -> tuple[int, int, list[int]]:
        """Like :meth:`find_successor`, also returning the sequence of
        nodes contacted (for latency accounting)."""
        path: list[int] = []
        holder, hops = self._lookup_via(self.id, key, path=path)
        return holder, hops, path

    def find_successor_recursive(self, key: int) -> tuple[int, int]:
        """Recursive-style lookup (the Chord paper's alternative mode).

        The query is forwarded node-to-node instead of the originator
        iterating; each forward is one hop.  Same result as the
        iterative lookup, different message pattern — the protocol
        benchmarks compare the two.
        """
        return self.rpc_forward_lookup(key, 0)

    def rpc_forward_lookup(self, key: int, hops: int) -> tuple[int, int]:
        limit = max(4 * self.space.bits, 2 * self.network.node_count() + 16)
        if hops > limit:
            raise ProtocolError(
                f"recursive lookup for {key} exceeded {limit} hops"
            )
        succ = self.successor
        if self.space.in_interval(key, self.id, succ):
            return self._first_live_of(self.successor_list, hops)
        nxt = self.rpc_closest_preceding(key)
        if nxt == self.id:
            return self._first_live_of(self.successor_list, hops)
        try:
            return self._rpc(
                nxt, "rpc_forward_lookup", key, hops + 1
            )
        except ProtocolError:
            self.fingers.clear_entry(nxt)
            if succ != self.id and succ != nxt:
                return self._rpc(
                    succ, "rpc_forward_lookup", key, hops + 1
                )
            raise

    def _first_live_of(
        self, candidates: list[int], hops: int
    ) -> tuple[int, int]:
        """First live id from a successor list, as a lookup answer.

        The true holder may have just died; its live successor holds the
        replicas and will promote them, so it is the correct answer.
        """
        for sid in candidates:
            if sid == self.id:
                return sid, hops
            try:
                self._rpc(sid, "rpc_ping")
                return sid, hops
            except ProtocolError:
                continue
        raise ProtocolError(f"node {self.id}: no live successor to answer")

    def _lookup_via(
        self, start_id: int, key: int, path: list[int] | None = None
    ) -> tuple[int, int]:
        current = start_id
        hops = 0
        avoid: set[int] = set()  # nodes found dead during this lookup
        # Safety valve, not a protocol constant: even a fully linear walk
        # (fingers decayed after heavy churn) must be allowed to finish.
        limit = max(4 * self.space.bits, 2 * self.network.node_count() + 16)
        while hops <= limit:
            try:
                succ = self._live_successor_of(current, avoid)
            except ProtocolError:
                # ``current`` is unusable (dead, or every successor it
                # knows is dead): route around it from a live anchor.
                stuck = current
                avoid.add(current)
                self.fingers.clear_entry(current)
                anchor = self._pick_anchor(start_id, avoid, stuck)
                if anchor is None:
                    raise ProtocolError(
                        f"lookup for {key}: no live anchor left"
                    ) from None
                current = anchor
                hops += 1
                continue
            if self.space.in_interval(key, current, succ):
                return succ, hops
            if current == self.id:
                nxt = self.rpc_closest_preceding(key)
            else:
                nxt = self._rpc(current, "rpc_closest_preceding", key)
            if nxt == current or nxt in avoid:
                nxt = succ  # linear fallback keeps the lookup moving
            if nxt == current:
                return succ, hops
            current = nxt
            if path is not None:
                path.append(current)
            hops += 1
        raise ProtocolError(
            f"lookup for {key} exceeded {limit} hops (broken ring?)"
        )

    def _pick_anchor(
        self, start_id: int, avoid: set[int], stuck: int
    ) -> int | None:
        """Find a live node to resume a lookup from after ``stuck`` proved
        unusable: ourselves, the original start, or — like a real client
        walking its contact list — any live contact ``stuck`` still knows."""
        if self.alive and self.successor_list and self.id not in avoid:
            return self.id
        if start_id not in avoid and start_id != stuck:
            try:
                self._rpc(start_id, "rpc_ping")
                return start_id
            except ProtocolError:
                avoid.add(start_id)
        try:
            contacts = self._rpc(stuck, "rpc_known_contacts")
        except ProtocolError:
            return None
        for cid in contacts:
            if cid in avoid or cid == stuck:
                continue
            try:
                self._rpc(cid, "rpc_ping")
                return cid
            except ProtocolError:
                avoid.add(cid)
        return None

    def _live_successor_of(self, node_id: int, avoid: set[int]) -> int:
        """First live entry of ``node_id``'s successor list (skipping
        nodes already found dead during this lookup)."""
        if node_id == self.id:
            candidates = list(self.successor_list)
        else:
            candidates = self._rpc(node_id, "rpc_get_successor_list")
        for sid in candidates:
            if sid in avoid:
                continue
            if sid == node_id:
                return sid
            try:  # liveness is only knowable by talking to the node
                self._rpc(sid, "rpc_ping")
                return sid
            except ProtocolError:
                avoid.add(sid)
        raise ProtocolError(
            f"node {node_id} has no live successor during lookup"
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> tuple[int, int]:
        """Store ``value`` at the node responsible for ``key``.

        Returns ``(holder_id, hops)``.  If the resolved holder proves
        unreachable (crashed mid-operation, or the send was dropped
        beyond the retry budget), the lookup is re-run — it routes
        around the corpse via the successor list — and the store is
        retried once at the surviving holder.
        """
        holder, hops = self.find_successor(key)
        try:
            if holder == self.id:
                self.rpc_store(key, value)
            else:
                self._rpc(holder, "rpc_store", key, value)
            return holder, hops
        except ProtocolError as exc:
            holder, extra = self._holder_fallback(exc, key, holder)
            if holder == self.id:
                self.rpc_store(key, value)
            else:
                self._rpc(holder, "rpc_store", key, value)
            return holder, hops + extra

    def get(self, key: int) -> tuple[Any, int]:
        """Fetch the value for ``key``; returns ``(value, hops)``.

        Same successor-fallback as :meth:`put`: an unreachable holder
        triggers one re-resolution against the live ring (the crashed
        holder's successor has the replicas and will answer)."""
        holder, hops = self.find_successor(key)
        try:
            if holder == self.id:
                return self.rpc_fetch(key), hops
            return self._rpc(holder, "rpc_fetch", key), hops
        except ProtocolError as exc:
            holder, extra = self._holder_fallback(exc, key, holder)
            if holder == self.id:
                return self.rpc_fetch(key), hops + extra
            return self._rpc(holder, "rpc_fetch", key), hops + extra

    def _holder_fallback(
        self, exc: ProtocolError, key: int, failed: int
    ) -> tuple[int, int]:
        """Resolve a replacement holder after a transport failure.

        Application-level errors (the callee answered, e.g. "key not
        held") and lookups that re-resolve to the same unreachable node
        re-raise the original error — there is nothing to route around.
        """
        if not getattr(exc, "transport_failure", False):
            raise exc
        holder, hops = self.find_successor(key)
        if holder == failed:
            raise exc
        self.network.fallbacks += 1
        return holder, hops

    # ------------------------------------------------------------------
    # maintenance (one cycle == what fits in one paper tick)
    # ------------------------------------------------------------------
    def maintenance_cycle(self) -> None:
        """check-predecessor → stabilize → fix a finger → replicate/promote."""
        if not self.alive:
            return
        self.check_predecessor()
        self.stabilize()
        self.refresh_predecessor_list()
        self.fix_next_finger()
        if self.predecessor == self._pred_seen and self.predecessor is not None:
            self._pred_stable += 1
        else:
            self._pred_seen = self.predecessor
            self._pred_stable = 0
        self.promote_replicas()
        self.replicate()

    def check_predecessor(self) -> None:
        if self.predecessor is None or self.predecessor == self.id:
            return
        try:
            self._rpc(self.predecessor, "rpc_ping")
        except ProtocolError:
            self.predecessor = None

    def stabilize(self) -> None:
        """Repair the successor pointer and refresh the successor list."""
        succ = self._first_live_successor()
        try:
            x = self._rpc(succ, "rpc_get_predecessor")
            if (
                x is not None
                and x != succ
                and self.network.is_alive(x)
                and self.space.in_interval(
                    x, self.id, succ, closed_right=False
                )
            ):
                succ = x
            self._rpc(succ, "rpc_notify", self.id)
            their_list = self._rpc(succ, "rpc_get_successor_list")
        except ProtocolError:
            # successor died mid-cycle; next cycle will repair further
            return
        merged = [succ] + [s for s in their_list if s != self.id]
        self.successor_list = self._dedupe(merged)[: self.n_successors]

    def _first_live_successor(self) -> int:
        """Skip dead entries in the successor list (failure recovery)."""
        for sid in self.successor_list:
            if sid == self.id or self.network.is_alive(sid):
                if sid != self.id:
                    self.successor_list = self.successor_list[
                        self.successor_list.index(sid) :
                    ]
                return sid
            self.fingers.clear_entry(sid)
        # Everyone we knew is gone; point at ourselves and wait for a
        # notify to relink us (single-node ring semantics).
        self.successor_list = [self.id]
        return self.id

    @staticmethod
    def _dedupe(ids: list[int]) -> list[int]:
        seen: set[int] = set()
        out: list[int] = []
        for i in ids:
            if i not in seen:
                seen.add(i)
                out.append(i)
        return out

    def refresh_predecessor_list(self) -> None:
        """Maintain k predecessors by chaining predecessor pointers —
        the counter-clockwise mirror of the successor list (§V-B)."""
        if self.predecessor is None:
            self.predecessor_list = []
            return
        plist = [self.predecessor]
        try:
            theirs = self._rpc(
                self.predecessor, "rpc_get_predecessor_list"
            )
        except ProtocolError:
            theirs = []
        for pid in theirs:
            if pid != self.id and pid not in plist:
                plist.append(pid)
        self.predecessor_list = plist[: self.n_successors]

    def fix_next_finger(self) -> None:
        """Repair one finger per cycle (round-robin), as in the paper."""
        k = self._next_finger
        self._next_finger = (self._next_finger + 1) % len(self.fingers)
        try:
            target, _ = self.find_successor(self.fingers.starts[k])
            self.fingers.set(k, target)
        except ProtocolError:
            self.fingers.set(k, None)

    def fix_all_fingers(self) -> None:
        """Repair the whole table at once (used to converge test rings fast)."""
        for k in range(len(self.fingers)):
            try:
                target, _ = self.find_successor(self.fingers.starts[k])
                self.fingers.set(k, target)
            except ProtocolError:
                self.fingers.set(k, None)

    # ------------------------------------------------------------------
    # replication (active backup model)
    # ------------------------------------------------------------------
    def _replication_targets(self) -> list[int]:
        """Backup recipients: the successor list, clamped to the
        network-wide replication factor (None keeps the paper's
        full-list active-backup idealization; 0 disables backups)."""
        r = self.network.replication_factor
        if r is None:
            return self.successor_list
        return self.successor_list[:r]

    def replicate(self) -> None:
        """Push the primary set to every replication target.

        Uses arc-scoped *sync* semantics: each backup makes its replicas
        of our responsibility arc identical to what we hold, so completed
        or deleted keys cannot be resurrected by a later promotion.
        """
        items = self.store.primary_items()
        if self.predecessor is None:
            # Unknown arc: a full-circle sync would clobber other origins'
            # replicas, so push non-destructively until stabilized.
            if not items:
                return
            for sid in self._replication_targets():
                if sid == self.id:
                    continue
                try:
                    self._rpc(sid, "rpc_accept_replicas", items)
                except ProtocolError:
                    continue
            return
        start, end = self.responsibility_arc()
        for sid in self._replication_targets():
            if sid == self.id:
                continue
            try:
                self._rpc(
                    sid, "rpc_sync_replicas", start, end, items
                )
            except ProtocolError:
                continue

    def promote_replicas(self) -> int:
        """Adopt replicas that now fall in our responsibility range.

        Gated on a *stable* predecessor pointer: right after churn the
        pointer can be transiently wrong (a node with ``predecessor is
        None`` adopts any notifier, per Chord), and promoting against a
        wrong arc would resurrect data another node still owns.  Two
        quiet cycles are enough for stabilization to settle the pointer.
        """
        if self.predecessor is None or self._pred_stable < 2:
            return 0
        start, end = self.responsibility_arc()
        return self.store.promote_range(start, end)

    # ------------------------------------------------------------------
    # RPC surface (what other nodes may invoke through the network)
    # ------------------------------------------------------------------
    def rpc_ping(self) -> bool:
        return True

    def rpc_get_predecessor(self) -> int | None:
        return self.predecessor

    def rpc_get_successor(self) -> int:
        return self.successor

    def rpc_get_successor_list(self) -> list[int]:
        return list(self.successor_list)

    def rpc_closest_preceding(self, key: int) -> int:
        candidate = self.fingers.closest_preceding(key)
        # also consider the successor list (Chord's standard refinement)
        for sid in reversed(self.successor_list):
            if sid != self.id and self.space.in_interval(
                sid, self.id, key, closed_right=False
            ):
                if candidate is None or self.space.in_interval(
                    sid, candidate, key, closed_right=False
                ):
                    candidate = sid
                break
        return candidate if candidate is not None else self.id

    def rpc_notify(self, candidate: int) -> None:
        """A node believes it is our predecessor; adopt it if it improves
        our view, handing over the key range it is now responsible for."""
        if candidate == self.id:
            return
        adopt = (
            self.predecessor is None
            or not self.network.is_alive(self.predecessor)
            or self.space.in_interval(
                candidate, self.predecessor, self.id, closed_right=False
            )
        )
        if not adopt:
            return
        old_pred = self.predecessor
        self.predecessor = candidate
        if self.successor == self.id:
            # We were alone (or lost everyone): the notifier is also our
            # best-known successor.  Without this, a bootstrap node stays
            # self-looped for the whole network build and every later
            # join resolves against a stale full-circle range.  Complete
            # the handshake so the notifier learns we are its predecessor
            # — that seeds the predecessor chain the push-repair below
            # relies on.
            self.successor_list = [candidate]
            try:
                self._rpc(candidate, "rpc_notify", self.id)
            except ProtocolError:
                pass
        if old_pred is not None and old_pred != candidate:
            # Push-based repair (the paper's "active, aggressive"
            # maintenance): the old predecessor's successor pointer is now
            # stale — point it at the newcomer immediately instead of
            # waiting for its next stabilize cycle.  Without this,
            # building an n-node ring needs O(n) stabilization rounds.
            try:
                self._rpc(
                    old_pred, "rpc_replace_successor", self.id, candidate
                )
            except ProtocolError:
                pass
        # Transfer every primary key not in our new responsibility arc
        # (candidate, self] — i.e. keys in (self, candidate] — to the new
        # predecessor.  They remain here as replicas.
        moved = self.store.pop_primary_range(self.id, candidate)
        if moved:
            try:
                self._rpc(candidate, "rpc_receive_primaries", moved)
            except ProtocolError:
                # hand-off failed: take the keys back
                for k, v in moved.items():
                    self.store.put_primary(k, v)

    def rpc_receive_primaries(self, items: dict[int, Any]) -> None:
        for key, value in items.items():
            self.store.put_primary(key, value)

    def rpc_store(self, key: int, value: Any) -> None:
        self.store.put_primary(key, value)

    def complete_task(self, key: int) -> Any:
        """Finish (delete) a primary item and purge its backups now.

        The active/aggressive backup model: completion is propagated to
        the successor list synchronously, so no later promotion can
        resurrect a finished task (exactly-once under graceful churn).
        """
        value = self.store.remove_primary(key)
        # purge the FULL successor list, not just the replication
        # targets: predecessor hand-offs leave demoted replicas behind
        # irrespective of the replication factor, and an unpurged one
        # would be promoted later and run the task twice
        for sid in self.successor_list:
            if sid == self.id:
                continue
            try:
                self._rpc(sid, "rpc_remove_replica", key)
            except ProtocolError:
                continue
        return value

    def rpc_remove_replica(self, key: int) -> None:
        self.store.remove_replica(key)

    def rpc_fetch(self, key: int) -> Any:
        if not self.store.has(key):
            raise ProtocolError(f"node {self.id} does not hold key {key}")
        return self.store.get(key)

    def rpc_accept_replicas(self, items: dict[int, Any]) -> None:
        self.store.accept_replicas(items)

    def rpc_sync_replicas(
        self, start: int, end: int, items: dict[int, Any]
    ) -> None:
        self.store.sync_replica_range(start, end, items)

    def rpc_get_predecessor_list(self) -> list[int]:
        return list(self.predecessor_list)

    def rpc_known_contacts(self) -> list[int]:
        """Every peer this node currently knows about (lookup re-anchoring)."""
        contacts = list(self.successor_list)
        if self.predecessor is not None:
            contacts.append(self.predecessor)
        contacts.extend(self.predecessor_list)
        contacts.extend(self.fingers.known_ids())
        return [c for c in self._dedupe(contacts) if c != self.id]

    def rpc_replace_successor(self, old_id: int, new_id: int) -> None:
        """A departing successor (or one that just adopted a closer
        predecessor) hands us its replacement."""
        changed = old_id in self.successor_list
        self.fingers.clear_entry(old_id)
        replaced = [new_id if s == old_id else s for s in self.successor_list]
        self.successor_list = self._dedupe(
            [s for s in replaced if s != self.id] or [new_id]
        )[: self.n_successors]
        if changed and self.successor == new_id:
            # Introduce ourselves to the new successor right away so its
            # predecessor pointer is never left unset — later joins in
            # its range rely on it for their own push repair.
            try:
                self._rpc(new_id, "rpc_notify", self.id)
            except ProtocolError:
                pass

    def rpc_report_load(self) -> int:
        """Workload query used by smart neighbor injection / invitation."""
        return self.store.primary_count
