"""Workload-distribution histograms (paper Figures 1, 4–14).

The figure experiments compare the workload histograms of two networks at
fixed ticks.  To make such comparisons meaningful the two histograms must
share bin edges; :func:`shared_edges` computes a common binning and
:class:`Histogram` stores a snapshot against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.balance import LoadStats, load_stats

__all__ = ["Histogram", "shared_edges", "log_edges", "histogram"]


def shared_edges(
    loads_list: list[np.ndarray], n_bins: int = 40
) -> np.ndarray:
    """Linear bin edges covering every snapshot in ``loads_list``."""
    top = 1
    for loads in loads_list:
        if np.asarray(loads).size:
            top = max(top, int(np.asarray(loads).max()))
    return np.linspace(0.0, float(top) + 1.0, n_bins + 1)


def log_edges(max_load: int, n_bins: int = 40) -> np.ndarray:
    """Logarithmic bin edges starting at 1 (plus a [0, 1) idle bin).

    Figure 1 plots the workload distribution with a heavy right tail
    (some nodes hold >10,000 tasks while the median is ~692); log-spaced
    bins render that shape faithfully.
    """
    upper = max(2.0, float(max_load) + 1.0)
    body = np.logspace(0.0, np.log10(upper), n_bins)
    return np.concatenate(([0.0], body))


@dataclass(frozen=True)
class Histogram:
    """One workload histogram snapshot.

    Attributes
    ----------
    tick:
        Simulation tick at which the snapshot was taken (0 = initial).
    edges:
        Bin edges (length ``len(counts) + 1``).
    counts:
        Nodes per bin.
    stats:
        Full balance statistics of the underlying loads.
    label:
        Which network/strategy this snapshot belongs to.
    """

    tick: int
    edges: np.ndarray
    counts: np.ndarray
    stats: LoadStats
    label: str = field(default="")

    @property
    def n_nodes(self) -> int:
        return int(self.counts.sum())

    def density(self) -> np.ndarray:
        """Probability mass per bin (sums to 1 for non-empty networks)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total


def histogram(
    loads: np.ndarray,
    edges: np.ndarray,
    *,
    tick: int = 0,
    label: str = "",
) -> Histogram:
    """Bin a workload vector against the provided edges.

    Loads above the last edge are clipped into the final bin so that two
    networks snapshotted against shared edges always account for all
    their nodes.
    """
    x = np.asarray(loads, dtype=np.float64)
    if x.size:
        x = np.minimum(x, edges[-1] - 1e-9)
    counts, _ = np.histogram(x, bins=edges)
    return Histogram(
        tick=tick,
        edges=np.asarray(edges, dtype=float),
        counts=counts.astype(np.int64),
        stats=load_stats(loads),
        label=label,
    )
