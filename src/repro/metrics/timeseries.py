"""Per-tick time series of network activity.

The paper reports "the average work per tick and statistical information
about how the tasks are distributed throughout the network"; this module
accumulates those series cheaply (append-only Python lists converted to
arrays on demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TickSeries"]


@dataclass
class TickSeries:
    """Append-only per-tick records; one entry per completed tick."""

    ticks: list[int] = field(default_factory=list)
    consumed: list[int] = field(default_factory=list)
    remaining: list[int] = field(default_factory=list)
    n_slots: list[int] = field(default_factory=list)
    n_in_network: list[int] = field(default_factory=list)
    idle_owners: list[int] = field(default_factory=list)

    def append(
        self,
        tick: int,
        consumed: int,
        remaining: int,
        n_slots: int,
        n_in_network: int,
        idle_owners: int,
    ) -> None:
        self.ticks.append(tick)
        self.consumed.append(consumed)
        self.remaining.append(remaining)
        self.n_slots.append(n_slots)
        self.n_in_network.append(n_in_network)
        self.idle_owners.append(idle_owners)

    def __len__(self) -> int:
        return len(self.ticks)

    # ------------------------------------------------------------------
    def as_arrays(self) -> dict[str, np.ndarray]:
        """All series as NumPy arrays keyed by field name."""
        return {
            "ticks": np.asarray(self.ticks, dtype=np.int64),
            "consumed": np.asarray(self.consumed, dtype=np.int64),
            "remaining": np.asarray(self.remaining, dtype=np.int64),
            "n_slots": np.asarray(self.n_slots, dtype=np.int64),
            "n_in_network": np.asarray(self.n_in_network, dtype=np.int64),
            "idle_owners": np.asarray(self.idle_owners, dtype=np.int64),
        }

    def mean_work_per_tick(self) -> float:
        """Average tasks consumed per tick — the paper's "work per tick"."""
        if not self.consumed:
            return 0.0
        return float(np.mean(self.consumed))

    def utilization(self) -> np.ndarray:
        """Consumed / active-network-size per tick (1.0 = nobody idled)."""
        consumed = np.asarray(self.consumed, dtype=np.float64)
        active = np.asarray(self.n_in_network, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(active > 0, consumed / active, 0.0)
        return util
