"""Balance metrics, histograms, runtime factors, and distribution fits."""

from repro.metrics.balance import LoadStats, gini, idle_fraction, load_stats
from repro.metrics.distribution import (
    ExponentialFit,
    expected_median_ratio,
    fit_exponential,
    ks_exponential,
    zipf_tail_exponent,
)
from repro.metrics.histograms import Histogram, histogram, log_edges, shared_edges
from repro.metrics.stats_tests import (
    WelchResult,
    compare_factors,
    mean_ci,
    welch_t,
)
from repro.metrics.runtime import (
    FactorSummary,
    runtime_factor,
    summarize_factors,
)
from repro.metrics.timeseries import TickSeries

__all__ = [
    "LoadStats",
    "load_stats",
    "gini",
    "idle_fraction",
    "Histogram",
    "histogram",
    "shared_edges",
    "log_edges",
    "runtime_factor",
    "FactorSummary",
    "summarize_factors",
    "TickSeries",
    "ExponentialFit",
    "fit_exponential",
    "ks_exponential",
    "zipf_tail_exponent",
    "expected_median_ratio",
    "mean_ci",
    "welch_t",
    "WelchResult",
    "compare_factors",
]
