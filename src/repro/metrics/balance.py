"""Load-balance statistics over per-node workloads.

Everything the paper reports about *distribution* comes from these
functions: Table I's median/σ, the histogram figures' summary lines, and
the additional balance indices (Gini, coefficient of variation, idle
fraction) we use to quantify "better balanced" claims.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["LoadStats", "load_stats", "gini", "idle_fraction"]


def gini(loads: np.ndarray) -> float:
    """Gini coefficient of a workload vector (0 = perfectly even).

    Computed via the sorted-rank formula, O(n log n).  Returns 0.0 for
    empty or all-zero inputs (a finished network is trivially "even").
    """
    x = np.asarray(loads, dtype=np.float64)
    if x.size == 0:
        return 0.0
    total = x.sum()
    if total <= 0:
        return 0.0
    xs = np.sort(x)
    n = xs.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * xs).sum()) / (n * total) - (n + 1.0) / n)


def idle_fraction(loads: np.ndarray) -> float:
    """Fraction of nodes with zero remaining work (the paper's "idling")."""
    x = np.asarray(loads)
    if x.size == 0:
        return 0.0
    return float((x == 0).mean())


@dataclass(frozen=True)
class LoadStats:
    """Summary of one workload snapshot."""

    n: int
    total: int
    mean: float
    median: float
    std: float
    min: int
    max: int
    gini: float
    cv: float
    idle_fraction: float

    def as_dict(self) -> dict:
        return asdict(self)


def load_stats(loads: np.ndarray) -> LoadStats:
    """Compute all balance statistics for a per-node workload vector.

    ``std`` is the population standard deviation, matching Table I's σ
    (which the paper notes is "fairly close to the expected mean workload"
    — the signature of exponentially distributed responsibilities).
    """
    x = np.asarray(loads, dtype=np.float64)
    if x.size == 0:
        return LoadStats(0, 0, 0.0, 0.0, 0.0, 0, 0, 0.0, 0.0, 0.0)
    mean = float(x.mean())
    std = float(x.std())
    return LoadStats(
        n=int(x.size),
        total=int(x.sum()),
        mean=mean,
        median=float(np.median(x)),
        std=std,
        min=int(x.min()),
        max=int(x.max()),
        gini=gini(x),
        cv=(std / mean) if mean > 0 else 0.0,
        idle_fraction=idle_fraction(x),
    )
