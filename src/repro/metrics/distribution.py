"""Distribution analysis of DHT workloads (§III of the paper).

The paper observes that node responsibilities in a hash-keyed ring are
"better represented by a Zipfian distribution" than a uniform one.  The
precise mathematical statement is that with n uniformly placed nodes the
arc lengths (hence expected workloads) follow an exponential law with
mean 1/n of the ring — which yields exactly the paper's Table I signature
(median ≈ ln 2 × mean, σ ≈ mean).  This module provides the fits and
goodness tests to verify both characterizations against simulated data.

SciPy is optional: the exponential fit and KS statistic are implemented
directly; when SciPy is present its p-values are used as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - exercised indirectly
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None

__all__ = [
    "ExponentialFit",
    "fit_exponential",
    "ks_exponential",
    "zipf_tail_exponent",
    "expected_median_ratio",
]

#: median / mean of an exponential distribution — the Table I signature
EXPECTED_MEDIAN_RATIO = math.log(2.0)


def expected_median_ratio() -> float:
    """Theoretical median/mean workload ratio for hash-placed nodes.

    Table I's 1000-node / 10⁶-task row reports a median of 692.3 with a
    mean of 1000 — a ratio of 0.6923 ≈ ln 2 = 0.6931, confirming the
    exponential model.
    """
    return EXPECTED_MEDIAN_RATIO


@dataclass(frozen=True)
class ExponentialFit:
    """Maximum-likelihood exponential fit and its KS distance."""

    scale: float  # = fitted mean
    ks_statistic: float
    p_value: float | None  # None when SciPy is unavailable
    n: int


def fit_exponential(samples: np.ndarray) -> ExponentialFit:
    """Fit Exp(scale) to positive samples and measure KS goodness.

    Zero-valued samples (finished nodes) are excluded — the exponential
    model describes *responsibility*, not residual work.
    """
    x = np.asarray(samples, dtype=np.float64)
    x = x[x > 0]
    if x.size == 0:
        return ExponentialFit(scale=0.0, ks_statistic=1.0, p_value=None, n=0)
    scale = float(x.mean())
    stat, p = ks_exponential(x, scale)
    return ExponentialFit(scale=scale, ks_statistic=stat, p_value=p, n=int(x.size))


def ks_exponential(
    samples: np.ndarray, scale: float
) -> tuple[float, float | None]:
    """Kolmogorov–Smirnov distance of samples against Exp(scale)."""
    x = np.sort(np.asarray(samples, dtype=np.float64))
    n = x.size
    if n == 0 or scale <= 0:
        return 1.0, None
    cdf = 1.0 - np.exp(-x / scale)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    stat = float(np.max(np.maximum(ecdf_hi - cdf, cdf - ecdf_lo)))
    if _scipy_stats is not None:
        p = float(_scipy_stats.kstwo.sf(stat, n))
        return stat, p
    return stat, None


def zipf_tail_exponent(samples: np.ndarray, tail_fraction: float = 0.2) -> float:
    """Log–log slope of the rank–size tail (the paper's "Zipfian" view).

    Sorting workloads descending and regressing log(load) on log(rank)
    over the heaviest ``tail_fraction`` of nodes gives the Zipf-like tail
    exponent; an exponential workload produces a *concave* rank–size
    curve, so the local tail slope is how the "few nodes hold the bulk of
    the work" claim is quantified.
    """
    x = np.sort(np.asarray(samples, dtype=np.float64))[::-1]
    x = x[x > 0]
    k = max(2, int(x.size * tail_fraction))
    x = x[:k]
    if x.size < 2:
        return 0.0
    ranks = np.arange(1, x.size + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(x), 1)
    return float(slope)
