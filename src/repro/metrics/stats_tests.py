"""Statistical comparison of strategy runtimes.

The paper reports averages of 100 trials without uncertainty; this
module adds the missing rigor: confidence intervals on mean runtime
factors and Welch's t-test for "strategy A beats strategy B" claims.
SciPy provides exact t quantiles when available; a normal approximation
(adequate at the paper's 100 trials) is used otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - exercised indirectly
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None

__all__ = ["mean_ci", "welch_t", "WelchResult", "compare_factors"]


def _t_quantile(p: float, df: float) -> float:
    """Two-sided t quantile; normal approximation without SciPy."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(p, df))
    # Cornish-Fisher style expansion around the normal quantile
    z = math.sqrt(2) * _erfinv(2 * p - 1)
    g1 = (z**3 + z) / 4
    g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96
    return z + g1 / df + g2 / df**2


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation, |err|<2e-3)."""
    a = 0.147
    ln_term = math.log(1 - y * y)
    first = 2 / (math.pi * a) + ln_term / 2
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y
    )


def mean_ci(
    samples: np.ndarray, confidence: float = 0.95
) -> tuple[float, float, float]:
    """(mean, lower, upper) confidence interval for the mean."""
    x = np.asarray(samples, dtype=float)
    n = x.size
    if n == 0:
        raise ValueError("no samples")
    mean = float(x.mean())
    if n == 1:
        return mean, mean, mean
    sem = float(x.std(ddof=1)) / math.sqrt(n)
    t = _t_quantile(0.5 + confidence / 2, n - 1)
    return mean, mean - t * sem, mean + t * sem


@dataclass(frozen=True)
class WelchResult:
    """Welch's unequal-variance t-test between two samples."""

    t_statistic: float
    df: float
    p_value: float | None  # two-sided; None without SciPy
    mean_difference: float

    @property
    def significant(self) -> bool:
        """|t| past the ~1.96 two-sided 5% threshold (df-adjusted when
        SciPy gives a p-value)."""
        if self.p_value is not None:
            return self.p_value < 0.05
        return abs(self.t_statistic) > 2.0


def welch_t(a: np.ndarray, b: np.ndarray) -> WelchResult:
    """Welch's t-test for mean(a) != mean(b)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least 2 samples per group")
    va = a.var(ddof=1) / a.size
    vb = b.var(ddof=1) / b.size
    denom = math.sqrt(va + vb)
    if denom == 0:
        t_stat = 0.0 if a.mean() == b.mean() else math.inf
        df = float(a.size + b.size - 2)
    else:
        t_stat = float((a.mean() - b.mean()) / denom)
        df = float(
            (va + vb) ** 2
            / (
                va**2 / (a.size - 1)
                + vb**2 / (b.size - 1)
            )
        )
    p = None
    if _scipy_stats is not None and math.isfinite(t_stat):
        p = float(2 * _scipy_stats.t.sf(abs(t_stat), df))
    return WelchResult(
        t_statistic=t_stat,
        df=df,
        p_value=p,
        mean_difference=float(a.mean() - b.mean()),
    )


def compare_factors(
    factors_a: np.ndarray, factors_b: np.ndarray
) -> dict:
    """Full comparison report between two strategies' trial factors."""
    mean_a, lo_a, hi_a = mean_ci(factors_a)
    mean_b, lo_b, hi_b = mean_ci(factors_b)
    test = welch_t(factors_a, factors_b)
    return {
        "mean_a": mean_a,
        "ci_a": (lo_a, hi_a),
        "mean_b": mean_b,
        "ci_b": (lo_b, hi_b),
        "difference": test.mean_difference,
        "t": test.t_statistic,
        "p_value": test.p_value,
        "significant": test.significant,
    }
