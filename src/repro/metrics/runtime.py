"""Runtime-factor arithmetic (§V-C of the paper).

The paper's headline output: a network's *runtime factor* is its measured
runtime in ticks divided by the "ideal runtime" — the time the job would
take if every node of the initial network held an equal share and nothing
churned.  A factor of 1 is the target; the no-strategy baseline lands
around 5–7.5 depending on network size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["runtime_factor", "FactorSummary", "summarize_factors"]


def runtime_factor(runtime_ticks: int, ideal_ticks: float) -> float:
    """Ratio of measured to ideal runtime (the paper's §V-C definition)."""
    if ideal_ticks <= 0:
        raise ConfigError(f"ideal runtime must be positive, got {ideal_ticks}")
    return runtime_ticks / ideal_ticks


@dataclass(frozen=True)
class FactorSummary:
    """Aggregate of runtime factors over repeated trials."""

    n_trials: int
    mean: float
    std: float
    min: float
    max: float
    median: float

    def as_dict(self) -> dict:
        return {
            "n_trials": self.n_trials,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "median": self.median,
        }


def summarize_factors(factors: list[float] | np.ndarray) -> FactorSummary:
    """Mean/std/min/max/median of per-trial runtime factors."""
    x = np.asarray(factors, dtype=np.float64)
    if x.size == 0:
        raise ConfigError("cannot summarize zero trials")
    return FactorSummary(
        n_trials=int(x.size),
        mean=float(x.mean()),
        std=float(x.std(ddof=1)) if x.size > 1 else 0.0,
        min=float(x.min()),
        max=float(x.max()),
        median=float(np.median(x)),
    )
