"""Circular identifier spaces for distributed hash tables.

A Chord-style DHT places nodes and keys on a ring of ``2**bits``
identifiers.  All arithmetic (distance, midpoints, interval membership)
wraps modulo the ring size.  :class:`IdSpace` centralizes that modular
arithmetic so that the rest of the library never hand-rolls wraparound
logic.

The paper uses SHA-1, i.e. a 160-bit space.  The protocol-level Chord
implementation uses the full 160 bits (Python integers); the fast tick
simulator uses a 64-bit space (NumPy ``uint64``), which is statistically
indistinguishable for load-balance purposes (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import IdSpaceError

__all__ = ["IdSpace", "SPACE_160", "SPACE_64", "SPACE_32"]


@dataclass(frozen=True)
class IdSpace:
    """A circular identifier space of ``2**bits`` points.

    Parameters
    ----------
    bits:
        Width of identifiers in bits.  Must be positive.

    Examples
    --------
    >>> space = IdSpace(8)
    >>> space.size
    256
    >>> space.distance(250, 5)   # clockwise distance, wrapping
    11
    >>> space.in_interval(2, 250, 5)
    True
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise IdSpaceError(f"bits must be positive, got {self.bits}")

    @property
    def size(self) -> int:
        """Number of identifiers in the space (``2**bits``)."""
        return 1 << self.bits

    @property
    def max_id(self) -> int:
        """Largest valid identifier (``2**bits - 1``)."""
        return self.size - 1

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def contains(self, ident: int) -> bool:
        """Return True if ``ident`` is a valid identifier in this space."""
        return 0 <= ident < self.size

    def validate(self, ident: int) -> int:
        """Return ``ident`` unchanged, raising :class:`IdSpaceError` if invalid."""
        if not self.contains(ident):
            raise IdSpaceError(
                f"identifier {ident!r} outside [0, 2**{self.bits})"
            )
        return ident

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer into the space (mod ``2**bits``)."""
        return value & self.max_id

    # ------------------------------------------------------------------
    # modular arithmetic
    # ------------------------------------------------------------------
    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end`` (0 when equal)."""
        return (end - start) & self.max_id

    def add(self, ident: int, delta: int) -> int:
        """Move ``delta`` steps clockwise from ``ident`` (delta may be negative)."""
        return (ident + delta) & self.max_id

    def midpoint(self, start: int, end: int) -> int:
        """The identifier halfway along the clockwise arc from start to end.

        For a zero-length arc (``start == end``, i.e. the full circle) this
        is the antipode of ``start``.
        """
        span = self.distance(start, end)
        if span == 0:
            span = self.size
        return self.add(start, span // 2)

    def in_interval(
        self,
        ident: int,
        start: int,
        end: int,
        *,
        closed_left: bool = False,
        closed_right: bool = True,
    ) -> bool:
        """Interval membership on the ring, clockwise from start to end.

        Default bounds are ``(start, end]`` — the Chord convention for the
        range of keys a node with id ``end`` and predecessor ``start`` is
        responsible for.  When ``start == end`` the interval is the whole
        ring (every node is responsible for everything in a 1-node ring).
        """
        if start == end:
            # Full ring, except a fully-open degenerate interval excludes
            # the single boundary point.
            if not closed_left and not closed_right:
                return ident != start
            return True
        d_end = self.distance(start, ident)
        d_span = self.distance(start, end)
        if d_end == 0:  # ident == start
            return closed_left
        if d_end == d_span:  # ident == end
            return closed_right
        return d_end < d_span

    # ------------------------------------------------------------------
    # sampling and iteration helpers
    # ------------------------------------------------------------------
    def random_id(self, rng: np.random.Generator) -> int:
        """Draw a uniformly distributed identifier as a Python int.

        Works for any bit width: identifiers wider than 64 bits are
        assembled from 64-bit words.
        """
        if self.bits <= 63:
            return int(rng.integers(0, self.size))
        if self.bits == 64:
            # 2**64 exceeds the default int64 bound; draw as uint64
            return int(rng.integers(0, 1 << 64, dtype=np.uint64))
        words = (self.bits + 63) // 64
        value = 0
        for _ in range(words):
            value = (value << 64) | int(
                rng.integers(0, 1 << 64, dtype=np.uint64)
            )
        return value & self.max_id

    def random_in_interval(
        self, rng: np.random.Generator, start: int, end: int
    ) -> int:
        """Uniform identifier strictly inside the clockwise arc (start, end).

        Raises :class:`IdSpaceError` when the open arc is empty (adjacent
        identifiers leave no room for a new one).
        """
        span = self.distance(start, end)
        if span == 0:
            span = self.size
        if span <= 1:
            raise IdSpaceError(
                f"open interval ({start}, {end}) contains no identifiers"
            )
        # offsets 1 .. span-1 keep the draw strictly inside the arc
        if span - 1 <= (1 << 63):
            offset = 1 + int(rng.integers(0, span - 1))
        else:  # very wide arcs in >64-bit spaces
            offset = 1 + self.random_id(rng) % (span - 1)
        return self.add(start, offset)

    def evenly_spaced(self, count: int, *, phase: int = 0) -> list[int]:
        """``count`` identifiers spaced as evenly as the space allows.

        Used for the paper's Figure 3 (an idealized, perfectly balanced
        node placement).
        """
        if count <= 0:
            raise IdSpaceError(f"count must be positive, got {count}")
        return [self.wrap(phase + (i * self.size) // count) for i in range(count)]

    def iter_powers(self, ident: int) -> Iterator[int]:
        """Yield ``ident + 2**k`` for k = 0..bits-1 — Chord finger starts."""
        for k in range(self.bits):
            yield self.add(ident, 1 << k)


#: The paper's SHA-1 space.
SPACE_160 = IdSpace(160)
#: Space used by the vectorized tick simulator (fits NumPy uint64).
SPACE_64 = IdSpace(64)
#: A tiny space that makes collisions and wraps easy to exercise in tests.
SPACE_32 = IdSpace(32)
