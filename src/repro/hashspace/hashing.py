"""Identifier generation via cryptographic hashing.

The paper generates node IDs and task keys by "feeding random numbers into
the SHA1 hash function".  This module reproduces that exactly for the
160-bit space, and provides a fast vectorized equivalent for the 64-bit
simulation space.

Two generation styles are offered:

* :func:`sha1_id` / :func:`sha1_ids` — true SHA-1 of a byte string or of
  random 8-byte inputs, truncated (via modular reduction) to the target
  space.  Used by the protocol-level Chord and the ring-visualization
  figures, where faithfulness to the paper matters.
* :func:`uniform_ids` — direct uniform sampling from the space.  Used by
  the tick simulator, where only the distribution matters and SHA-1 of a
  random input *is* a uniform draw.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import IdSpaceError
from repro.hashspace.idspace import IdSpace

__all__ = [
    "sha1_id",
    "sha1_ids",
    "uniform_ids",
    "uniform_ids_array",
    "key_for",
]


def sha1_id(data: bytes | str, space: IdSpace) -> int:
    """SHA-1 digest of ``data`` reduced into ``space``.

    For a 160-bit space this is the raw digest, exactly as the paper (and
    Chord itself) uses it.  Narrower spaces take the digest modulo the
    space size, which preserves uniformity.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = int.from_bytes(hashlib.sha1(data).digest(), "big")
    return digest & space.max_id


def key_for(name: str, space: IdSpace) -> int:
    """Key for a named object (file, task, node address) — SHA-1 of the name."""
    return sha1_id(name, space)


def sha1_ids(count: int, space: IdSpace, rng: np.random.Generator) -> list[int]:
    """``count`` identifiers from SHA-1 of random 8-byte inputs.

    This mirrors the paper's key-generation procedure literally.  It is
    O(count) Python-level hashing, so it is meant for figures and
    protocol-level rings (tens to thousands of ids), not for the
    million-key simulation workloads (use :func:`uniform_ids_array`).
    """
    if count < 0:
        raise IdSpaceError(f"count must be non-negative, got {count}")
    raw = rng.integers(0, 1 << 63, size=count, dtype=np.uint64)
    return [sha1_id(int(v).to_bytes(8, "big"), space) for v in raw]


def uniform_ids(count: int, space: IdSpace, rng: np.random.Generator) -> list[int]:
    """``count`` uniform identifiers as Python ints (any bit width)."""
    if count < 0:
        raise IdSpaceError(f"count must be non-negative, got {count}")
    return [space.random_id(rng) for _ in range(count)]


def uniform_ids_array(
    count: int, space: IdSpace, rng: np.random.Generator
) -> np.ndarray:
    """``count`` uniform identifiers as a NumPy ``uint64`` array.

    Requires ``space.bits <= 64``.  This is the fast path used to generate
    millions of task keys for the tick simulator; a uniform draw is the
    distributional equivalent of hashing random inputs with SHA-1.
    """
    if space.bits > 64:
        raise IdSpaceError(
            f"uniform_ids_array supports at most 64-bit spaces, got {space.bits}"
        )
    if count < 0:
        raise IdSpaceError(f"count must be non-negative, got {count}")
    if space.bits == 64:
        # numpy accepts high=2**64 for uint64 draws
        return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
    return rng.integers(0, space.size, size=count, dtype=np.uint64)
