"""Unit-circle projection of identifiers (paper Figures 2 and 3).

The paper visualizes a Chord ring by mapping each 160-bit identifier
``id`` to the perimeter of the unit circle via::

    x = sin(2*pi * id / 2**160)
    y = cos(2*pi * id / 2**160)

(so id 0 sits at the top and identifiers advance clockwise).  This module
reproduces that mapping for any :class:`~repro.hashspace.idspace.IdSpace`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.hashspace.idspace import IdSpace

__all__ = ["to_unit_circle", "project_many", "angular_position"]


def angular_position(ident: int, space: IdSpace) -> float:
    """Angle in radians (clockwise from the top) for an identifier."""
    return 2.0 * math.pi * (ident / space.size)


def to_unit_circle(ident: int, space: IdSpace) -> tuple[float, float]:
    """Map one identifier to (x, y) on the unit circle, paper convention."""
    theta = angular_position(ident, space)
    return math.sin(theta), math.cos(theta)


def project_many(idents: Iterable[int] | Sequence[int], space: IdSpace) -> np.ndarray:
    """Map identifiers to an (n, 2) float array of unit-circle coordinates.

    Large (e.g. 160-bit) identifiers are converted through ``float`` ring
    fractions, which is exact enough for plotting (53-bit mantissa).
    """
    fractions = np.array([ident / space.size for ident in idents], dtype=float)
    theta = 2.0 * np.pi * fractions
    return np.column_stack((np.sin(theta), np.cos(theta)))
