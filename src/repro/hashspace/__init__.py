"""Circular identifier spaces, hashing, intervals and ring projection.

This subpackage is the geometric foundation of the reproduction: every
other layer (protocol Chord, tick simulator, strategies, figures) builds
on its wrapping arithmetic.
"""

from repro.hashspace.hashing import (
    key_for,
    sha1_id,
    sha1_ids,
    uniform_ids,
    uniform_ids_array,
)
from repro.hashspace.idspace import SPACE_32, SPACE_64, SPACE_160, IdSpace
from repro.hashspace.intervals import Arc
from repro.hashspace.projection import (
    angular_position,
    project_many,
    to_unit_circle,
)

__all__ = [
    "IdSpace",
    "SPACE_160",
    "SPACE_64",
    "SPACE_32",
    "Arc",
    "sha1_id",
    "sha1_ids",
    "uniform_ids",
    "uniform_ids_array",
    "key_for",
    "to_unit_circle",
    "project_many",
    "angular_position",
]
