"""Wrapping intervals on a circular identifier space.

A node in Chord is responsible for the arc ``(predecessor, self]``.  The
:class:`Arc` type models such half-open clockwise arcs, including the
degenerate full-circle arc (``start == end``), with helpers for length,
membership, splitting and sampling.  It is a thin, well-tested layer over
:class:`~repro.hashspace.idspace.IdSpace` arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IdSpaceError
from repro.hashspace.idspace import IdSpace

__all__ = ["Arc"]


@dataclass(frozen=True)
class Arc:
    """Clockwise arc ``(start, end]`` on ``space``.

    ``start == end`` denotes the *full circle* (a single-node ring owns
    everything), matching Chord's responsibility convention.
    """

    space: IdSpace
    start: int
    end: int

    def __post_init__(self) -> None:
        self.space.validate(self.start)
        self.space.validate(self.end)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of identifiers in the arc (full space when start == end)."""
        span = self.space.distance(self.start, self.end)
        return span if span != 0 else self.space.size

    @property
    def is_full_circle(self) -> bool:
        return self.start == self.end

    def fraction(self) -> float:
        """Arc length as a fraction of the whole ring, in (0, 1]."""
        return self.length / self.space.size

    def contains(self, ident: int) -> bool:
        """True when ``ident`` lies in ``(start, end]``."""
        return self.space.in_interval(ident, self.start, self.end)

    # ------------------------------------------------------------------
    def split_at(self, ident: int) -> tuple["Arc", "Arc"]:
        """Split into ``(start, ident]`` and ``(ident, end]``.

        ``ident`` must lie strictly inside the arc (it may equal ``end``
        only for the full circle, where any point splits it).  This is the
        operation a joining node (or Sybil) performs: it takes over the
        first sub-arc, the incumbent keeps the second.
        """
        if self.is_full_circle:
            if ident == self.start:
                raise IdSpaceError("cannot split a full circle at its anchor")
            return (
                Arc(self.space, self.start, ident),
                Arc(self.space, ident, self.end),
            )
        if not self.contains(ident) or ident == self.end:
            raise IdSpaceError(
                f"split point {ident} not strictly inside arc "
                f"({self.start}, {self.end}]"
            )
        return (
            Arc(self.space, self.start, ident),
            Arc(self.space, ident, self.end),
        )

    def midpoint(self) -> int:
        """The identifier halfway along the arc."""
        return self.space.midpoint(self.start, self.end)

    def sample(self, rng: np.random.Generator) -> int:
        """Uniform identifier strictly inside the open arc (start, end).

        Matches the paper's assumption that a node "searches for an
        appropriate ID in between two other nodes" rather than choosing
        an exact location.
        """
        return self.space.random_in_interval(rng, self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Arc({self.start}, {self.end}] /2**{self.space.bits}"
