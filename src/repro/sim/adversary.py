"""Adversarial Sybil plane: seeded attack injection and defenses.

The paper uses Sybils *benevolently* — extra identities a node volunteers
to absorb load.  This module asks what the paper cannot: does Sybil-based
balancing survive a *hostile* Sybil attack?  Three attacker behaviors run
as an engine phase (between churn and arrivals), all default-off and all
drawing from the engine's seeded RNG stream so enabled scenarios stay
bit-identical across shards and kernel backends:

* **eclipse** — one coordinated attacker concentrates
  ``eclipse_sybils`` identities inside a victim arc (the arc holding the
  most remaining keys at ``attack_tick``), capturing its tasks — the
  arc-targeted attack of the IPFS active-Sybil literature;
* **free-rider** — ``free_riders`` adversarial owners join at random
  identifiers, accept keys, and consume at rate 0, stranding whatever
  lands on them;
* **churn-amplifier** — targeted crash pressure: each decision round the
  heaviest honest owner crashes with probability
  ``churn_amplification``.

Two defenses (SybilControl-style), usable by every strategy through
:class:`~repro.core.strategy.NetworkView`:

* **join-cost budget** — creating any identity (benevolent Sybil or
  attack join) draws ``join_cost`` from a per-owner account refilled by
  ``join_budget_refill`` per tick, throttling identity-creation rate for
  honest and hostile nodes alike;
* **per-arc density detection** — every ``detection_interval`` ticks the
  ring is folded into 64 equal arcs; an owner holding
  ``density_threshold`` or more slots inside a single arc (the eclipse
  signature) is evicted wholesale.  Evicted adversaries are quarantined
  (they can never re-enter through the benign waiting pool); evicted
  honest owners are false positives and may rejoin under churn.

Metric definitions (also in docs/adversarial.md): *captured-key
fraction* is the share of remaining tasks held by adversarial slots;
*stranded tasks* are the keys still parked on adversarial slots when the
run ends (lost to free-riding); detection *precision* is tp/(tp+fp) over
evicted owners, *recall* the fraction of adversarial owners that ever
joined and were evicted.

Free-riders hold exactly one slot each, so they are *intentionally*
invisible to density detection — only the join-cost budget slows them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.owners import PROV_ADVERSARIAL
from repro.sim.workload import draw_new_node_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import TickEngine

__all__ = ["AdversaryPlane"]

#: detection folds the id space into 2**_BUCKET_BITS equal arcs
_BUCKET_BITS = 6
_N_BUCKETS = 1 << _BUCKET_BITS


class AdversaryPlane:
    """Per-run attack/defense driver (built only when the model is on).

    Holds no ring state of its own: it mutates the engine's
    ``RingState``/``OwnerRegistry`` through the same batched structural
    operations the churn phase uses, so seeded trajectories stay
    bit-identical across the plain and sharded engines.
    """

    def __init__(self, engine: "TickEngine"):
        self.engine = engine
        self.cfg = engine.config.adversary
        self.owners = engine.owners
        self.state = engine.state
        self.space = engine.space
        self.rng = engine.rng

        start = self.owners.adversary_start
        self._free_rider_owners = list(
            range(start, start + self.cfg.free_riders)
        )
        self._eclipse_owner = (
            start + self.cfg.free_riders
            if self.cfg.eclipse_sybils > 0
            else None
        )
        #: attack identities waiting on the join budget
        self._pending_free: list[int] = []
        self._pending_eclipse: list[int] = []
        #: membership-only sets (never iterated — order must not leak)
        self._joined_adv: set[int] = set()
        self._evicted_adv: set[int] = set()

        self.captured_final = 0
        self.captured_peak = 0
        self.captured_frac_peak = 0.0
        self.crash_recovered = 0

        counters = engine.counters
        counters["adversary.slots_joined"] = 0
        counters["adversary.crashes"] = 0
        counters["adversary.crash_tasks_lost"] = 0
        counters["adversary.evictions"] = 0
        counters["adversary.detection_tp"] = 0
        counters["adversary.detection_fp"] = 0

    # ------------------------------------------------------------------
    def run_tick(self, tick: int) -> None:
        """One adversary phase (engine calls this between churn and
        arrivals; never called when the model is disabled)."""
        cfg = self.cfg
        if cfg.join_cost > 0:
            self.owners.refill_join_budgets()
        if tick == cfg.attack_tick:
            self._plan_attack()
        if self._pending_free or self._pending_eclipse:
            self._drain_joins()
        if (
            cfg.churn_amplification > 0
            and tick % self.engine.config.decision_interval == 0
        ):
            self._amplify_churn()
        if cfg.detection_interval > 0 and tick % cfg.detection_interval == 0:
            self._run_detection()
        self._measure()

    # ------------------------------------------------------------------
    # attacks
    # ------------------------------------------------------------------
    def _plan_attack(self) -> None:
        cfg = self.cfg
        if cfg.free_riders > 0:
            self._pending_free = list(self._free_rider_owners)
        if cfg.eclipse_sybils > 0:
            # victim: the slot holding the most remaining keys right now
            # (deterministic first-max — no RNG)
            victim = int(np.argmax(self.state.counts))
            end = int(self.state.ids[victim])
            size = self.space.size
            k = cfg.eclipse_sybils
            arc_len = max(k + 1, int(cfg.eclipse_arc_fraction * size))
            # k identities evenly spaced inside (end - arc_len, end):
            # the highest sits just below the victim id, leaving it only
            # a sliver of its arc.  Pure-int arithmetic — id math stays
            # out of numpy here on purpose.
            base = (end - arc_len) % size
            step = max(1, arc_len // (k + 1))
            self._pending_eclipse = [
                (base + (j + 1) * step) % size for j in range(k)
            ]

    def _free_ident_near(self, ident: int) -> int | None:
        """Nudge an identifier forward past collisions (bounded)."""
        size = self.space.size
        for _ in range(64):
            if not self.state.id_exists(ident):
                return ident
            ident = (ident + 1) % size
        return None

    def _note_joined(self, owner: int) -> None:
        self.engine.counters["adversary.slots_joined"] += 1
        if owner not in self._joined_adv:
            self._joined_adv.add(owner)

    def _drain_joins(self) -> None:
        """Admit pending attack identities, throttled by the join budget.

        With the defense off every pending identity lands immediately at
        ``attack_tick``; with it on, each owner's account covers at most
        one join per refill period, so the eclipse arc fills as a
        trickle the detection defense can race.
        """
        owners = self.owners
        state = self.state
        while self._pending_free:
            owner = self._pending_free[0]
            if not owners.spend_join_budget(owner):
                break
            ident = draw_new_node_id(self.space, self.rng, state.id_exists)
            _, acquired = state.insert_slot(
                ident, owner, is_main=True, provenance=PROV_ADVERSARIAL
            )
            owners.join_network(owner, ident)
            self._pending_free.pop(0)
            self._note_joined(owner)
        owner = self._eclipse_owner
        while self._pending_eclipse and owner is not None:
            ident = self._free_ident_near(self._pending_eclipse[0])
            if ident is None:
                self._pending_eclipse.pop(0)
                continue
            if not owners.in_network[owner]:
                # first identity in is the attacker's main
                if not owners.spend_join_budget(owner):
                    break
                _, acquired = state.insert_slot(
                    ident, owner, is_main=True, provenance=PROV_ADVERSARIAL
                )
                owners.join_network(owner, ident)
            else:
                # can_add_sybil folds in the budget check
                if not owners.can_add_sybil(owner):
                    break
                owners.register_sybil(owner)
                _, acquired = state.insert_slot(
                    ident, owner, is_main=False, provenance=PROV_ADVERSARIAL
                )
            self._pending_eclipse.pop(0)
            self._note_joined(owner)

    def _amplify_churn(self) -> None:
        """Crash the heaviest honest owner with the configured probability."""
        engine = self.engine
        honest = self.owners.honest_network_indices
        if honest.size <= 1:
            return
        if self.rng.random() >= self.cfg.churn_amplification:
            return
        loads = self.state.owner_loads(self.owners.n_total)
        victim = int(honest[int(np.argmax(loads[honest]))])
        removal = self.state.begin_batch_removal([victim])
        res = removal.crash_owner_guarded(
            victim, engine.failures.replication_factor
        )
        if res is None:
            # removing the victim would empty the ring — attack fizzles
            return
        recovered, lost = res
        removal.commit()
        self.owners.leave_network(victim)
        self.crash_recovered += recovered
        engine.counters["adversary.crashes"] += 1
        engine.counters["adversary.crash_tasks_lost"] += lost
        engine.tasks_lost += lost

    # ------------------------------------------------------------------
    # defense: per-arc Sybil-density detection
    # ------------------------------------------------------------------
    def _run_detection(self) -> None:
        state = self.state
        owners = self.owners
        if state.n_slots == 0:
            return
        shift = np.uint64(self.space.bits - _BUCKET_BITS)
        buckets = (state.ids >> shift).astype(np.int64)
        cell = state.owner * _N_BUCKETS + buckets
        per_cell = np.bincount(cell)
        hot = np.flatnonzero(per_cell >= self.cfg.density_threshold)
        if hot.size == 0:
            return
        flagged = np.unique(hot // _N_BUCKETS)
        counters = self.engine.counters
        removal = state.begin_batch_removal(flagged)
        evicted: list[int] = []
        for owner in flagged.tolist():
            owner = int(owner)
            if not owners.in_network[owner]:
                continue
            moved = removal.remove_owner_guarded(owner)
            if moved is None:
                continue  # never empty the ring
            evicted.append(owner)
            counters["adversary.evictions"] += 1
            if owners.provenance[owner] == PROV_ADVERSARIAL:
                counters["adversary.detection_tp"] += 1
                if owner not in self._evicted_adv:
                    self._evicted_adv.add(owner)
            else:
                counters["adversary.detection_fp"] += 1
        removal.commit()
        for owner in evicted:
            # adversaries land in the waiting pool but are excluded from
            # the honest waiting view — quarantined for good; honest
            # false positives may rejoin under churn
            owners.leave_network(owner)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _measure(self) -> None:
        counts = self.state.counts
        captured = int(counts[self.state.provenance == PROV_ADVERSARIAL].sum())
        self.captured_final = captured
        if captured > self.captured_peak:
            self.captured_peak = captured
        if captured:
            remaining = int(counts.sum())
            frac = captured / remaining if remaining else 0.0
            if frac > self.captured_frac_peak:
                self.captured_frac_peak = frac

    def summary(self) -> dict:
        """The result's ``adversary`` block (JSON-safe scalars only)."""
        counters = self.engine.counters
        tp = counters["adversary.detection_tp"]
        fp = counters["adversary.detection_fp"]
        joined = len(self._joined_adv)
        detection_on = self.cfg.detection_interval > 0
        precision: float | None = None
        recall: float | None = None
        if detection_on:
            if tp + fp:
                precision = tp / (tp + fp)
            if joined:
                recall = len(self._evicted_adv) / joined
        return {
            "captured_keys_final": self.captured_final,
            "captured_keys_peak": self.captured_peak,
            "captured_fraction_peak": self.captured_frac_peak,
            "stranded_tasks": self.captured_final,
            "slots_joined": counters["adversary.slots_joined"],
            "owners_joined": joined,
            "owners_evicted": len(self._evicted_adv),
            "crashes": counters["adversary.crashes"],
            "crash_tasks_lost": counters["adversary.crash_tasks_lost"],
            "crash_tasks_recovered": self.crash_recovered,
            "evictions": counters["adversary.evictions"],
            "detection_tp": tp,
            "detection_fp": fp,
            "detection_precision": precision,
            "detection_recall": recall,
        }
