"""The vectorized tick simulator — the paper's evaluation vehicle."""

from repro.config import STRATEGY_NAMES, SimulationConfig
from repro.sim.cache import TrialCache, trial_key
from repro.sim.engine import TickEngine, run_simulation
from repro.sim.owners import OwnerRegistry
from repro.sim.persistence import (
    load_result,
    load_sweep,
    load_trialset,
    save_result,
    save_sweep,
    save_trialset,
)
from repro.sim.results import SimulationResult, TrialSet
from repro.sim.state import RingState
from repro.sim.trials import (
    RunStats,
    TrialFailure,
    run_trial,
    run_trials,
    sweep,
)
from repro.obs.trace import TraceEvent, TraceRecorder
from repro.sim.shard import ShardedTickEngine
from repro.sim.view import SimView
from repro.sim.workload import (
    draw_new_node_id,
    draw_task_keys,
    draw_unique_ids,
    ideal_runtime,
)

__all__ = [
    "SimulationConfig",
    "STRATEGY_NAMES",
    "TickEngine",
    "run_simulation",
    "SimulationResult",
    "TrialSet",
    "RingState",
    "OwnerRegistry",
    "SimView",
    "ShardedTickEngine",
    "run_trial",
    "run_trials",
    "sweep",
    "draw_unique_ids",
    "draw_task_keys",
    "draw_new_node_id",
    "ideal_runtime",
    "TraceRecorder",
    "TraceEvent",
    "save_result",
    "load_result",
    "save_trialset",
    "load_trialset",
    "save_sweep",
    "load_sweep",
    "TrialCache",
    "trial_key",
    "TrialFailure",
    "RunStats",
]
