"""Structured event tracing for simulation runs.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.engine.TickEngine`
captures every discrete event (Sybil created/retired, churn join/leave,
relocation, arrivals) with its tick and details — the audit trail behind
the aggregate counters.  Used for debugging strategy behaviour, for the
observability example, and by tests that assert event-level invariants
(e.g. "no owner ever creates two Sybils in one round").
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One discrete simulation event."""

    tick: int
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def as_dict(self) -> dict[str, Any]:
        return {"tick": self.tick, "kind": self.kind, **self.fields}


class TraceRecorder:
    """Append-only event log with filtering and summarization."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------------
    def record(self, tick: int, kind: str, **fields: Any) -> None:
        self.events.append(TraceEvent(tick=tick, kind=kind, fields=fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def at_tick(self, tick: int) -> list[TraceEvent]:
        return [e for e in self.events if e.tick == tick]

    def kinds(self) -> Counter:
        """Event counts by kind."""
        return Counter(e.kind for e in self.events)

    def first(self, kind: str) -> TraceEvent | None:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line (ingestible by any log tooling)."""
        return "\n".join(json.dumps(e.as_dict()) for e in self.events)

    def summary(self) -> str:
        counts = self.kinds()
        if not counts:
            return "trace: no events"
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        last = self.events[-1].tick if self.events else 0
        return f"trace: {len(self.events)} events through tick {last} ({parts})"
