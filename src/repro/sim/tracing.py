"""DEPRECATED compatibility shim — import from :mod:`repro.obs.trace`.

The tracing types moved to :mod:`repro.obs.trace` when observability
grew into its own layer; this module re-exports them so pre-move
imports (``from repro.sim.tracing import TraceRecorder``) keep working
for one more release.  Importing it emits a :class:`DeprecationWarning`
and the shim will be removed once downstream callers have migrated.
:mod:`repro.obs` also has the streaming
:class:`~repro.obs.trace.JsonlTraceSink` for runs whose event streams
don't fit in memory.
"""

import warnings

from repro.obs.trace import TraceEvent, TraceRecorder

__all__ = ["TraceEvent", "TraceRecorder"]

warnings.warn(
    "repro.sim.tracing is deprecated; import TraceEvent/TraceRecorder "
    "from repro.obs.trace (or repro.obs) instead",
    DeprecationWarning,
    stacklevel=2,
)
