"""Structured event tracing for simulation runs (compatibility shim).

The tracing types moved to :mod:`repro.obs.trace` when observability
grew into its own layer — this module re-exports them so existing
imports (``from repro.sim.tracing import TraceRecorder``) keep working.
New code should import from :mod:`repro.obs` directly, which also has
the streaming :class:`~repro.obs.trace.JsonlTraceSink` for runs whose
event streams don't fit in memory.
"""

from repro.obs.trace import TraceEvent, TraceRecorder

__all__ = ["TraceEvent", "TraceRecorder"]
