"""Ring state for the vectorized tick simulator.

The simulator models the DHT as a sorted array of **slots** (virtual node
identities — a physical node's main identity or one of its Sybils).  Each
slot owns the clockwise arc from its predecessor (exclusive) to itself
(inclusive), and holds the *remaining* task keys in that arc.

Key storage is designed for the hot loop (see DESIGN.md §5):

* ``keys[i]`` is a ``uint64`` array whose first ``counts[i]`` entries are
  the slot's remaining task keys, in uniformly random order;
* consuming a task is a decrement of ``counts[i]`` (the tail entry is
  considered consumed) — O(1), no per-task objects;
* structural operations (join/Sybil split, leave merge) first materialize
  the remaining prefix, then partition it exactly by key, preserving the
  random-order invariant (merges are reshuffled).

Because consumption order within a slot is uniformly random and splits
partition by key value, the simulator performs *exact key accounting*: a
Sybil acquires precisely the still-unfinished tasks whose keys fall in
its new arc, as in a real DHT with active backups.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IdSpaceError, RingError
from repro.hashspace.idspace import IdSpace
from repro.sim.arcops import arc_lengths, in_arc_mask, responsible_slots

__all__ = ["RingState"]

_U64 = np.uint64


class RingState:
    """Mutable ring of slots with exact task-key accounting.

    Parameters
    ----------
    space:
        Identifier space (must be at most 64 bits wide).
    ids:
        Strictly increasing ``uint64`` array of slot identifiers.
    owner:
        Physical-owner index per slot.
    is_main:
        True for a physical node's main identity, False for Sybil slots.
    keys:
        Per-slot arrays of task keys (randomly ordered); the whole array
        is "remaining" at construction time.
    rng:
        Generator used for reshuffling merged key arrays.
    """

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        owner: np.ndarray,
        is_main: np.ndarray,
        keys: list[np.ndarray],
        rng: np.random.Generator,
    ):
        if space.bits > 64:
            raise IdSpaceError("RingState requires a <=64-bit id space")
        self.space = space
        self.ids = np.asarray(ids, dtype=_U64)
        self.owner = np.asarray(owner, dtype=np.int64)
        self.is_main = np.asarray(is_main, dtype=bool)
        self.keys: list[np.ndarray] = [np.asarray(k, dtype=_U64) for k in keys]
        self.counts = np.array([k.size for k in self.keys], dtype=np.int64)
        self.rng = rng
        self.n_sybil_slots = int((~self.is_main).sum())
        self._check_shapes()
        if self.ids.size and not (self.ids[:-1] < self.ids[1:]).all():
            raise RingError("slot ids must be strictly increasing")

    def _check_shapes(self) -> None:
        m = self.ids.size
        if not (
            self.owner.size == m
            and self.is_main.size == m
            and len(self.keys) == m
            and self.counts.size == m
        ):
            raise RingError("ring arrays have inconsistent lengths")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        space: IdSpace,
        node_ids: np.ndarray,
        node_owners: np.ndarray,
        task_keys: np.ndarray,
        rng: np.random.Generator,
    ) -> "RingState":
        """Build the initial ring: sort node ids and assign task keys.

        ``node_ids`` must be unique.  ``task_keys`` are assigned to the
        responsible slot by the ``(pred, self]`` rule; within a slot they
        keep their (random) generation order, which realizes the
        uniform-consumption-order invariant for free.
        """
        node_ids = np.asarray(node_ids, dtype=_U64)
        node_owners = np.asarray(node_owners, dtype=np.int64)
        if node_ids.size == 0:
            raise RingError("cannot build an empty ring")
        if np.unique(node_ids).size != node_ids.size:
            raise RingError("node ids must be unique")
        order = np.argsort(node_ids)
        ids = node_ids[order]
        owner = node_owners[order]
        is_main = np.ones(ids.size, dtype=bool)

        task_keys = np.asarray(task_keys, dtype=_U64)
        slot_idx = responsible_slots(ids, task_keys)
        grouping = np.argsort(slot_idx, kind="stable")
        grouped = task_keys[grouping]
        per_slot = np.bincount(slot_idx, minlength=ids.size)
        offsets = np.concatenate(([0], np.cumsum(per_slot)))
        keys = [
            grouped[offsets[i] : offsets[i + 1]].copy()
            for i in range(ids.size)
        ]
        return cls(space, ids, owner, is_main, keys, rng)

    # ------------------------------------------------------------------
    # read-only queries
    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return self.ids.size

    def total_remaining(self) -> int:
        """Unfinished tasks across the whole ring."""
        return int(self.counts.sum())

    def remaining_keys(self, slot: int) -> np.ndarray:
        """View of the slot's remaining task keys (do not mutate)."""
        return self.keys[slot][: self.counts[slot]]

    def pred_id(self, slot: int) -> int:
        """Predecessor identifier (the exclusive start of the slot's arc)."""
        return int(self.ids[slot - 1])  # negative index wraps to the last slot

    def slot_arc(self, slot: int) -> tuple[int, int]:
        """The slot's responsibility arc ``(pred_id, own_id]``."""
        return self.pred_id(slot), int(self.ids[slot])

    def gaps(self) -> np.ndarray:
        """Responsibility-arc length of every slot (uint64)."""
        return arc_lengths(self.ids, self.space.size)

    def slot_gap(self, slot: int) -> int:
        """Arc length of one slot."""
        if self.n_slots == 1:
            return self.space.size - 1  # saturated full circle
        return (int(self.ids[slot]) - self.pred_id(slot)) % self.space.size

    def id_exists(self, ident: int) -> bool:
        pos = int(np.searchsorted(self.ids, _U64(ident)))
        return pos < self.n_slots and int(self.ids[pos]) == ident

    def find_slot(self, key: int) -> int:
        """Index of the slot responsible for ``key``."""
        if self.n_slots == 0:
            raise RingError("empty ring")
        pos = int(np.searchsorted(self.ids, _U64(key), side="left"))
        return pos if pos < self.n_slots else 0

    def slots_of_owner(self, owner: int) -> np.ndarray:
        """All slot indices belonging to a physical owner."""
        return np.flatnonzero(self.owner == owner)

    def main_slot_of(self, owner: int) -> int:
        """Index of the owner's main-identity slot."""
        hits = np.flatnonzero((self.owner == owner) & self.is_main)
        if hits.size != 1:
            raise RingError(
                f"owner {owner} has {hits.size} main slots (expected 1)"
            )
        return int(hits[0])

    def successor_slots(self, slot: int, k: int) -> np.ndarray:
        """Indices of the ``k`` slots clockwise after ``slot``."""
        return (slot + 1 + np.arange(k)) % self.n_slots

    def predecessor_slots(self, slot: int, k: int) -> np.ndarray:
        """Indices of the ``k`` slots counter-clockwise before ``slot``."""
        return (slot - 1 - np.arange(k)) % self.n_slots

    def owner_loads(self, n_owners: int) -> np.ndarray:
        """Remaining tasks per physical owner (int64, length ``n_owners``)."""
        loads = np.bincount(
            self.owner, weights=self.counts, minlength=n_owners
        )
        return loads.astype(np.int64)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_tasks(self, keys: np.ndarray) -> None:
        """Inject newly arrived task keys into their responsible slots.

        Supports the streaming-arrival extension: merged key arrays are
        reshuffled so tail consumption stays uniformly random.
        """
        keys = np.asarray(keys, dtype=_U64)
        if keys.size == 0:
            return
        slot_idx = responsible_slots(self.ids, keys)
        for slot in np.unique(slot_idx):
            fresh = keys[slot_idx == slot]
            merged = np.concatenate((self.remaining_keys(int(slot)), fresh))
            merged = self.rng.permutation(merged)
            self.keys[int(slot)] = merged
            self.counts[int(slot)] = merged.size

    def consume_at(self, slots: np.ndarray, amounts: np.ndarray) -> None:
        """Consume ``amounts[i]`` tasks from ``slots[i]`` (vectorized)."""
        self.counts[slots] -= amounts
        if (self.counts[slots] < 0).any():
            raise RingError("consumed more tasks than a slot holds")

    def insert_slot(
        self, new_id: int, owner: int, *, is_main: bool
    ) -> tuple[int, int]:
        """Insert a new identity and transfer the keys it is responsible for.

        Returns ``(slot_index, acquired_count)``.  Raises
        :class:`IdSpaceError` when ``new_id`` collides with an existing
        slot (callers redraw).
        """
        nid = _U64(self.space.validate(new_id))
        pos = int(np.searchsorted(self.ids, nid, side="left"))
        if pos < self.n_slots and self.ids[pos] == nid:
            raise IdSpaceError(f"identifier {new_id} already on the ring")
        succ = pos if pos < self.n_slots else 0
        pred = self.pred_id(succ)

        remaining = self.remaining_keys(succ)
        mask = in_arc_mask(remaining, pred, int(nid))
        taken = remaining[mask]
        kept = remaining[~mask]

        self.ids = np.insert(self.ids, pos, nid)
        self.owner = np.insert(self.owner, pos, owner)
        self.is_main = np.insert(self.is_main, pos, is_main)
        self.counts = np.insert(self.counts, pos, taken.size)
        self.keys.insert(pos, taken)
        if not is_main:
            self.n_sybil_slots += 1

        succ_new = succ + 1 if pos <= succ else succ
        self.keys[succ_new] = kept
        self.counts[succ_new] = kept.size
        return pos, int(taken.size)

    def remove_slot(self, slot: int) -> int:
        """Remove a slot, merging its remaining keys into its successor.

        Models both a node leaving under churn (active backups make the
        hand-off lossless) and a Sybil quitting.  Returns the number of
        keys transferred.
        """
        if self.n_slots <= 1:
            raise RingError("cannot remove the last slot on the ring")
        succ = (slot + 1) % self.n_slots
        moved = self.remaining_keys(slot)
        if moved.size:
            merged = np.concatenate((moved, self.remaining_keys(succ)))
            # reshuffle so tail-consumption stays uniform over the merge
            merged = self.rng.permutation(merged)
        else:
            merged = self.remaining_keys(succ).copy()

        if not self.is_main[slot]:
            self.n_sybil_slots -= 1
        self.ids = np.delete(self.ids, slot)
        self.owner = np.delete(self.owner, slot)
        self.is_main = np.delete(self.is_main, slot)
        self.counts = np.delete(self.counts, slot)
        self.keys.pop(slot)

        succ_new = succ - 1 if succ > slot else succ
        self.keys[succ_new] = merged
        self.counts[succ_new] = merged.size
        return int(moved.size)

    def remove_owner(self, owner: int) -> int:
        """Remove every slot of a physical owner (main + Sybils).

        Returns the number of keys handed off to successors.
        """
        moved = 0
        while True:
            slots = self.slots_of_owner(owner)
            if slots.size == 0:
                return moved
            moved += self.remove_slot(int(slots[0]))

    def retire_sybils(self, owner: int) -> int:
        """Remove the owner's Sybil slots, keeping its main identity.

        Returns the number of Sybil slots removed.
        """
        removed = 0
        while True:
            slots = np.flatnonzero((self.owner == owner) & ~self.is_main)
            if slots.size == 0:
                return removed
            self.remove_slot(int(slots[0]))
            removed += 1

    def median_key(self, slot: int) -> int | None:
        """Median remaining key of the slot *by ring position within its arc*.

        Used by the ``placement="median"`` ablation: a Sybil placed at the
        median key takes over half the slot's remaining tasks.  Returns
        None when the slot has fewer than 2 remaining keys.
        """
        remaining = self.remaining_keys(slot)
        if remaining.size < 2:
            return None
        pred = self.pred_id(slot)
        # clockwise distance from the arc start: uint64 subtraction wraps
        # mod 2**64; masking reduces it to mod 2**bits (2**64 is a multiple
        # of the space size for any bits <= 64)
        ordered = np.sort((remaining - _U64(pred)) & _U64(self.space.max_id))
        mid = ordered[(ordered.size - 1) // 2]
        return (pred + int(mid)) % self.space.size

    # ------------------------------------------------------------------
    # validation (tests / debugging)
    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        """Raise :class:`RingError` if any structural invariant is broken."""
        self._check_shapes()
        if self.n_slots == 0:
            raise RingError("empty ring")
        if not (self.ids[:-1] < self.ids[1:]).all():
            raise RingError("ids not strictly increasing")
        if (self.counts < 0).any():
            raise RingError("negative remaining count")
        for i in range(self.n_slots):
            if self.counts[i] > self.keys[i].size:
                raise RingError(f"slot {i}: count exceeds stored keys")
            remaining = self.remaining_keys(i)
            if remaining.size:
                pred, own = self.slot_arc(i)
                if not in_arc_mask(remaining, pred, own).all():
                    raise RingError(f"slot {i}: key outside responsibility arc")
        if self.n_sybil_slots != int((~self.is_main).sum()):
            raise RingError("sybil slot counter out of sync")
