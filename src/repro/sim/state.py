"""Ring state for the vectorized tick simulator.

The simulator models the DHT as a sorted array of **slots** (virtual node
identities — a physical node's main identity or one of its Sybils).  Each
slot owns the clockwise arc from its predecessor (exclusive) to itself
(inclusive), and holds the *remaining* task keys in that arc.

Key storage is designed for the hot loop (see DESIGN.md §5):

* ``keys[i]`` is a ``uint64`` array whose first ``counts[i]`` entries are
  the slot's remaining task keys, in uniformly random order;
* consuming a task is a decrement of ``counts[i]`` (the tail entry is
  considered consumed) — O(1), no per-task objects;
* structural operations (join/Sybil split, leave merge) first materialize
  the remaining prefix, then partition it exactly by key, preserving the
  random-order invariant (merges are reshuffled).

Because consumption order within a slot is uniformly random and splits
partition by key value, the simulator performs *exact key accounting*: a
Sybil acquires precisely the still-unfinished tasks whose keys fall in
its new arc, as in a real DHT with active backups.

Storage layout (the slab)
-------------------------

The four parallel slot arrays live in preallocated *slab* buffers with
amortized-doubling capacity; ``ids``/``owner``/``is_main``/``counts`` are
views of the live prefix.  A single join or leave shifts the prefix in
place (one ``memmove`` per array) instead of reallocating four arrays the
way ``np.insert``/``np.delete`` do.  Merged/partitioned key arrays are
drawn from a small power-of-two buffer pool so the churn hot loop does
not hammer the allocator.  Views returned by the array properties (and
by :meth:`remaining_keys`) are invalidated by the next structural
mutation — read, use, and drop them.

Bulk structure changes go through :meth:`begin_batch_removal` /
:meth:`begin_batch_insertion`, which replay the exact per-operation key
movements (and therefore the exact RNG draw sequence) of the equivalent
sequential ``remove_slot``/``insert_slot`` calls, but apply the slot
array restructuring as one compress or merge pass at commit time.
Seeded trajectories are bit-identical to the sequential path; the
structural cost drops from O(events × n) array rebuilds to O(n + events)
per batch.

An incrementally maintained owner → slot-positions inverted index backs
:meth:`slots_of_owner` / :meth:`main_slot_of` (the former full-array
scans), and :meth:`owner_loads` is cached behind a dirty flag so one
bincount per mutation epoch serves consumption, snapshots, and time
series alike.
"""

from __future__ import annotations

import bisect
import itertools
from typing import NamedTuple

import numpy as np

from repro.errors import IdSpaceError, RingError
from repro.hashspace.idspace import IdSpace
from repro.sim.arcops import arc_lengths, in_arc_mask, responsible_slots
from repro.sim.owners import PROV_BENEVOLENT, PROV_HONEST

__all__ = [
    "RingState",
    "BatchRemoval",
    "BatchInsertion",
    "ConsumptionGroups",
]

_U64 = np.uint64
_I64 = np.int64

#: shared zero-length key array (never mutated, never pooled)
_EMPTY_KEYS = np.empty(0, dtype=_U64)

_MIN_CAP = 8


def _pow2_at_least(n: int) -> int:
    return max(_MIN_CAP, 1 << max(0, (n - 1).bit_length()))


class ConsumptionGroups(NamedTuple):
    """CSR grouping of live slots by owner, for the consumption kernels.

    Group ``g`` owns slot indices ``order[starts[g] : starts[g] +
    sizes[g]]`` (ascending ring position) and belongs to physical owner
    ``owners[g]``; owners appear in ascending index order.  Arrays are
    cached by :meth:`RingState.consumption_groups` — treat as read-only.
    """

    order: np.ndarray
    starts: np.ndarray
    sizes: np.ndarray
    owners: np.ndarray


class _KeyPool:
    """Recycler for ``uint64`` key buffers in power-of-two size classes.

    ``take(n)`` hands out a buffer of capacity ``>= n`` (callers use the
    ``[:n]`` prefix); ``give`` accepts retired buffers back.  Only
    buffers the pool could have produced (owning, power-of-two capacity)
    are retained, so views into other arrays are silently dropped and
    can never be handed out for reuse while aliased.
    """

    #: do not retain buffers above this capacity (bytes ≈ 8 × this)
    MAX_POOLED = 1 << 18
    #: retained buffers per size class
    MAX_PER_CLASS = 32

    def __init__(self) -> None:
        self._classes: dict[int, list[np.ndarray]] = {}

    def take(self, size: int) -> np.ndarray:
        cap = _pow2_at_least(size)
        bucket = self._classes.get(cap)
        if bucket:
            return bucket.pop()
        return np.empty(cap, dtype=_U64)

    def give(self, arr: np.ndarray) -> None:
        cap = arr.size
        if (
            arr.base is not None
            or arr.dtype != _U64
            or cap < _MIN_CAP
            or cap > self.MAX_POOLED
            or cap & (cap - 1)
        ):
            return
        bucket = self._classes.setdefault(cap, [])
        if len(bucket) < self.MAX_PER_CLASS:
            bucket.append(arr)


class _OwnerIndex:
    """Inverted index: owner → its slot *identifiers* (+ main identity).

    The index stores slot ids rather than slot positions: ids are stable
    under the prefix shifts every insert/remove performs, so incremental
    maintenance is one tiny in-group ``memmove`` plus a prefix-offset
    slice update — no O(n) position-fixup passes.  Queries translate the
    ids back to positions with one ``searchsorted`` against the (sorted)
    live ``ids`` array.  Rebuilt lazily after batch operations, which
    set ``dirty``.
    """

    def __init__(self) -> None:
        self.dirty = True
        self._n = 0
        self._buf = np.empty(_MIN_CAP, dtype=_U64)
        self._bins = 0
        self._start = np.zeros(1, dtype=_I64)
        self._cnt = np.zeros(0, dtype=_I64)
        self._main_id = np.zeros(0, dtype=_U64)
        self._main_cnt = np.zeros(0, dtype=_I64)

    # -- construction ---------------------------------------------------
    def rebuild(
        self, ids: np.ndarray, owner: np.ndarray, is_main: np.ndarray
    ) -> None:
        n = owner.size
        bins = max(self._bins, int(owner.max()) + 1 if n else 1)
        if self._buf.size < n:
            self._buf = np.empty(_pow2_at_least(n), dtype=_U64)
        # stable sort groups by owner; ids stay ascending within a group
        self._buf[:n] = ids[np.argsort(owner, kind="stable")]
        self._n = n
        self._bins = bins
        self._cnt = np.bincount(owner, minlength=bins).astype(_I64)
        self._start = np.zeros(bins + 1, dtype=_I64)
        np.cumsum(self._cnt, out=self._start[1:])
        self._main_cnt = np.bincount(
            owner[is_main], minlength=bins
        ).astype(_I64)
        self._main_id = np.zeros(bins, dtype=_U64)
        mains = np.flatnonzero(is_main)
        self._main_id[owner[mains]] = ids[mains]
        self.dirty = False

    def _grow_bins(self, bins: int) -> None:
        extra = bins - self._bins
        self._cnt = np.concatenate((self._cnt, np.zeros(extra, dtype=_I64)))
        self._start = np.concatenate(
            (self._start, np.full(extra, self._start[-1], dtype=_I64))
        )
        self._main_cnt = np.concatenate(
            (self._main_cnt, np.zeros(extra, dtype=_I64))
        )
        self._main_id = np.concatenate(
            (self._main_id, np.zeros(extra, dtype=_U64))
        )
        self._bins = bins

    # -- queries (index must be clean) ----------------------------------
    def group_ids(self, owner: int) -> np.ndarray:
        """The owner's slot identifiers, ascending (do not mutate)."""
        if owner >= self._bins or owner < 0:
            return np.empty(0, dtype=_U64)
        s = int(self._start[owner])
        return self._buf[s : s + int(self._cnt[owner])]

    def slots_of(self, ids: np.ndarray, owner: int) -> np.ndarray:
        """The owner's slot positions (ascending) in the live ring."""
        group = self.group_ids(owner)
        if group.size == 0:
            return np.empty(0, dtype=_I64)
        return ids.searchsorted(group).astype(_I64, copy=False)

    def main_count(self, owner: int) -> int:
        if owner >= self._bins or owner < 0:
            return 0
        return int(self._main_cnt[owner])

    def main_slot(self, ids: np.ndarray, owner: int) -> int:
        """Position of the owner's main identity (requires main_count==1)."""
        return int(ids.searchsorted(self._main_id[owner]))

    # -- incremental maintenance ----------------------------------------
    def note_insert(self, ident: int, owner: int, is_main: bool) -> None:
        if self.dirty:
            return
        n = self._n
        if owner >= self._bins:
            self._grow_bins(owner + 1)
        if self._buf.size < n + 1:
            grown = np.empty(_pow2_at_least(n + 1), dtype=_U64)
            grown[:n] = self._buf[:n]
            self._buf = grown
        buf = self._buf
        s = int(self._start[owner])
        c = int(self._cnt[owner])
        loc = s + int(buf[s : s + c].searchsorted(_U64(ident)))
        buf[loc + 1 : n + 1] = buf[loc:n]
        buf[loc] = ident
        self._start[owner + 1 :] += 1
        self._cnt[owner] += 1
        self._n = n + 1
        if is_main:
            self._main_id[owner] = ident
            self._main_cnt[owner] += 1

    def note_remove(self, ident: int, owner: int, is_main: bool) -> None:
        if self.dirty:
            return
        n = self._n
        buf = self._buf
        s = int(self._start[owner])
        c = int(self._cnt[owner])
        loc = s + int(buf[s : s + c].searchsorted(_U64(ident)))
        if loc >= n or buf[loc] != ident:  # desynced — fall back
            self.dirty = True
            return
        buf[loc : n - 1] = buf[loc + 1 : n]
        self._start[owner + 1 :] -= 1
        self._cnt[owner] -= 1
        self._n = n - 1
        if is_main:
            self._main_cnt[owner] -= 1
            if self._main_id[owner] == ident and self._main_cnt[owner]:
                # another main exists whose identity we don't track
                self.dirty = True


class RingState:
    """Mutable ring of slots with exact task-key accounting.

    Parameters
    ----------
    space:
        Identifier space (must be at most 64 bits wide).
    ids:
        Strictly increasing ``uint64`` array of slot identifiers.
    owner:
        Physical-owner index per slot.
    is_main:
        True for a physical node's main identity, False for Sybil slots.
    keys:
        Per-slot arrays of task keys (randomly ordered); the whole array
        is "remaining" at construction time.
    rng:
        Generator used for reshuffling merged key arrays.
    provenance:
        Optional int8 provenance code per slot (see
        :mod:`repro.sim.owners`); defaults to honest for main slots and
        benevolent-Sybil for the rest.
    """

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        owner: np.ndarray,
        is_main: np.ndarray,
        keys: list[np.ndarray],
        rng: np.random.Generator,
        provenance: np.ndarray | None = None,
    ):
        if space.bits > 64:
            raise IdSpaceError("RingState requires a <=64-bit id space")
        self.space = space
        ids = np.asarray(ids, dtype=_U64)
        owner = np.asarray(owner, dtype=_I64)
        is_main = np.asarray(is_main, dtype=bool)
        keys = [np.asarray(k, dtype=_U64) for k in keys]
        if provenance is None:
            provenance = np.where(
                is_main, PROV_HONEST, PROV_BENEVOLENT
            ).astype(np.int8)
        else:
            provenance = np.asarray(provenance, dtype=np.int8)

        n = ids.size
        cap = _pow2_at_least(n)
        self._n = n
        self._ids_buf = np.empty(cap, dtype=_U64)
        self._owner_buf = np.empty(cap, dtype=_I64)
        self._main_buf = np.empty(cap, dtype=bool)
        self._counts_buf = np.empty(cap, dtype=_I64)
        self._prov_buf = np.empty(cap, dtype=np.int8)
        self._ids_buf[:n] = ids
        self._owner_buf[:n] = owner
        self._main_buf[:n] = is_main
        self._counts_buf[:n] = [k.size for k in keys]
        self._prov_buf[:n] = provenance
        self.keys: list[np.ndarray] = keys
        self.rng = rng
        self.n_sybil_slots = int((~is_main).sum()) if n else 0

        self._pool = _KeyPool()
        self._index = _OwnerIndex()
        self._loads_cache: np.ndarray | None = None
        self._loads_dirty = True
        self._groups_cache: ConsumptionGroups | None = None
        self._refresh_views()

        self._check_shapes()
        if n and not (self.ids[:-1] < self.ids[1:]).all():
            raise RingError("slot ids must be strictly increasing")

    # ------------------------------------------------------------------
    # slab plumbing
    # ------------------------------------------------------------------
    def _refresh_views(self) -> None:
        n = self._n
        self._ids_view = self._ids_buf[:n]
        self._owner_view = self._owner_buf[:n]
        self._main_view = self._main_buf[:n]
        self._counts_view = self._counts_buf[:n]
        self._prov_view = self._prov_buf[:n]

    @property
    def ids(self) -> np.ndarray:
        """Slot identifiers (live-prefix view; invalidated by mutations)."""
        return self._ids_view

    @property
    def owner(self) -> np.ndarray:
        """Physical-owner index per slot (live-prefix view)."""
        return self._owner_view

    @property
    def is_main(self) -> np.ndarray:
        """Main-identity flags per slot (live-prefix view)."""
        return self._main_view

    @property
    def counts(self) -> np.ndarray:
        """Remaining-task counts per slot (live-prefix view)."""
        return self._counts_view

    @property
    def provenance(self) -> np.ndarray:
        """Slot provenance codes (live-prefix view; see repro.sim.owners)."""
        return self._prov_view

    def _slab_bufs(self) -> tuple[np.ndarray, ...]:
        return (self._ids_buf, self._owner_buf, self._main_buf,
                self._counts_buf, self._prov_buf)

    def _grow(self, needed: int) -> None:
        cap = _pow2_at_least(max(needed, 2 * self._ids_buf.size))
        n = self._n
        for name in ("_ids_buf", "_owner_buf", "_main_buf", "_counts_buf",
                     "_prov_buf"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)

    def _shift_insert(
        self,
        pos: int,
        nid: np.uint64,
        owner: int,
        is_main: bool,
        count: int,
        prov: int,
    ) -> None:
        n = self._n
        if n + 1 > self._ids_buf.size:
            self._grow(n + 1)
        for buf in self._slab_bufs():
            buf[pos + 1 : n + 1] = buf[pos:n]
        self._ids_buf[pos] = nid
        self._owner_buf[pos] = owner
        self._main_buf[pos] = is_main
        self._counts_buf[pos] = count
        self._prov_buf[pos] = prov
        self._n = n + 1
        self._groups_cache = None
        self._refresh_views()

    def _shift_remove(self, pos: int) -> None:
        n = self._n
        for buf in self._slab_bufs():
            buf[pos : n - 1] = buf[pos + 1 : n]
        self._n = n - 1
        self._groups_cache = None
        self._refresh_views()

    def _compress_alive(
        self, alive: np.ndarray, dead: list[int] | None = None
    ) -> None:
        """Drop all slots with ``alive[i] == False`` in one pass.

        ``dead``, when given, lists the dropped positions (any order) so
        the keys list can be spliced segment-wise instead of filtered
        element-wise.
        """
        keep = np.flatnonzero(alive)
        k = keep.size
        if k == self._n:
            return
        for buf in self._slab_bufs():
            buf[:k] = buf[: self._n][keep]
        if dead is not None:
            keys = self.keys
            new_keys: list[np.ndarray] = []
            prev = 0
            for d in sorted(dead):
                new_keys.extend(keys[prev:d])
                prev = d + 1
            new_keys.extend(keys[prev:])
            self.keys = new_keys
        else:
            self.keys = list(itertools.compress(self.keys, alive.tolist()))
        self._n = k
        self._groups_cache = None
        self._refresh_views()
        self.n_sybil_slots = k - int(np.count_nonzero(self._main_buf[:k]))
        self._index.dirty = True
        self._loads_dirty = True

    def _admit_pending(
        self,
        positions: np.ndarray,
        pend_ids: np.ndarray,
        pend_owner: np.ndarray,
        pend_main: np.ndarray,
        pend_prov: np.ndarray,
        pend_keys: list[np.ndarray],
    ) -> None:
        """Splice ``m`` pre-sorted pending slots into the ring in one pass.

        ``positions[j]`` is the insertion point of ``pend_ids[j]`` in the
        *current* ``ids`` array (``np.searchsorted`` semantics).
        """
        n, m = self._n, pend_ids.size
        new_n = n + m
        targets = positions + np.arange(m, dtype=positions.dtype)
        if new_n <= self._ids_buf.size and m <= 8:
            # shift surviving segments right (descending, no overlap bugs)
            bounds = np.append(positions, n)
            for j in range(m - 1, -1, -1):
                lo, hi = int(bounds[j]), int(bounds[j + 1])
                if hi > lo:
                    for buf in self._slab_bufs():
                        buf[lo + j + 1 : hi + j + 1] = buf[lo:hi]
        elif new_n <= self._ids_buf.size:
            # many pending slots: one gather-scatter per buffer beats
            # m segment shifts
            gap = np.ones(new_n, dtype=bool)
            gap[targets] = False
            dst_idx = np.flatnonzero(gap)
            for buf in self._slab_bufs():
                tmp = buf[:n].copy()
                buf[dst_idx] = tmp
        else:
            old = self._slab_bufs()
            self._grow(new_n)
            gap = np.ones(new_n, dtype=bool)
            gap[targets] = False
            dst_idx = np.flatnonzero(gap)
            for src, dst in zip(old, self._slab_bufs()):
                dst[dst_idx] = src[:n]
        self._ids_buf[targets] = pend_ids
        self._owner_buf[targets] = pend_owner
        self._main_buf[targets] = pend_main
        self._prov_buf[targets] = pend_prov
        self._counts_buf[targets] = [k.size for k in pend_keys]

        new_keys: list[np.ndarray] = []
        prev = 0
        for j in range(m):
            p = int(positions[j])
            new_keys.extend(self.keys[prev:p])
            new_keys.append(pend_keys[j])
            prev = p
        new_keys.extend(self.keys[prev:])
        self.keys = new_keys

        self._n = new_n
        self._groups_cache = None
        self._refresh_views()
        self.n_sybil_slots += m - int(np.count_nonzero(pend_main))
        self._index.dirty = True
        self._loads_dirty = True

    def _ensure_index(self) -> _OwnerIndex:
        if self._index.dirty:
            self._index.rebuild(self._ids_view, self.owner, self.is_main)
        return self._index

    def mark_loads_dirty(self) -> None:
        """Invalidate the cached owner-loads vector.

        Callers that mutate ``counts`` directly (the engine's vectorized
        consumption) must call this; all RingState mutators do it
        automatically.
        """
        self._loads_dirty = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        space: IdSpace,
        node_ids: np.ndarray,
        node_owners: np.ndarray,
        task_keys: np.ndarray,
        rng: np.random.Generator,
    ) -> "RingState":
        """Build the initial ring: sort node ids and assign task keys.

        ``node_ids`` must be unique.  ``task_keys`` are assigned to the
        responsible slot by the ``(pred, self]`` rule; within a slot they
        keep their (random) generation order, which realizes the
        uniform-consumption-order invariant for free.
        """
        node_ids = np.asarray(node_ids, dtype=_U64)
        node_owners = np.asarray(node_owners, dtype=_I64)
        if node_ids.size == 0:
            raise RingError("cannot build an empty ring")
        if np.unique(node_ids).size != node_ids.size:
            raise RingError("node ids must be unique")
        order = np.argsort(node_ids)
        ids = node_ids[order]
        owner = node_owners[order]
        is_main = np.ones(ids.size, dtype=bool)

        task_keys = np.asarray(task_keys, dtype=_U64)
        slot_idx = responsible_slots(ids, task_keys)
        grouping = np.argsort(slot_idx, kind="stable")
        grouped = task_keys[grouping]
        per_slot = np.bincount(slot_idx, minlength=ids.size)
        offsets = np.concatenate(([0], np.cumsum(per_slot)))
        keys = [
            grouped[offsets[i] : offsets[i + 1]].copy()
            for i in range(ids.size)
        ]
        return cls(space, ids, owner, is_main, keys, rng)

    # ------------------------------------------------------------------
    # read-only queries
    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return self._n

    def total_remaining(self) -> int:
        """Unfinished tasks across the whole ring."""
        return int(self.counts.sum())

    def remaining_keys(self, slot: int) -> np.ndarray:
        """View of the slot's remaining task keys (do not mutate)."""
        return self.keys[slot][: self.counts[slot]]

    def pred_id(self, slot: int) -> int:
        """Predecessor identifier (the exclusive start of the slot's arc)."""
        return int(self.ids[slot - 1])  # negative index wraps to the last slot

    def slot_arc(self, slot: int) -> tuple[int, int]:
        """The slot's responsibility arc ``(pred_id, own_id]``."""
        return self.pred_id(slot), int(self.ids[slot])

    def gaps(self) -> np.ndarray:
        """Responsibility-arc length of every slot (uint64)."""
        return arc_lengths(self.ids, self.space.size)

    def slot_gap(self, slot: int) -> int:
        """Arc length of one slot."""
        if self.n_slots == 1:
            return self.space.size - 1  # saturated full circle
        return (int(self.ids[slot]) - self.pred_id(slot)) % self.space.size

    def id_exists(self, ident: int) -> bool:
        ids = self._ids_view
        # _U64 needles matter: a small python int infers int64 and makes
        # searchsorted cast the whole uint64 array per call
        pos = int(ids.searchsorted(_U64(ident)))
        return pos < ids.size and int(ids[pos]) == ident

    def find_slot(self, key: int) -> int:
        """Index of the slot responsible for ``key``."""
        if self.n_slots == 0:
            raise RingError("empty ring")
        pos = int(np.searchsorted(self.ids, _U64(key), side="left"))
        return pos if pos < self.n_slots else 0

    def slots_of_owner(self, owner: int) -> np.ndarray:
        """All slot indices belonging to a physical owner (ascending)."""
        return self._ensure_index().slots_of(self._ids_view, int(owner))

    def owner_load(self, owner: int) -> int:
        """Remaining tasks across one owner's slots (indexed lookup)."""
        slots = self._ensure_index().slots_of(self._ids_view, int(owner))
        return int(self.counts[slots].sum())

    def main_slot_of(self, owner: int) -> int:
        """Index of the owner's main-identity slot."""
        index = self._ensure_index()
        owner = int(owner)
        n_mains = index.main_count(owner)
        if n_mains != 1:
            raise RingError(
                f"owner {owner} has {n_mains} main slots (expected 1)"
            )
        return index.main_slot(self._ids_view, owner)

    def successor_slots(self, slot: int, k: int) -> np.ndarray:
        """Indices of the ``k`` slots clockwise after ``slot``."""
        return (slot + 1 + np.arange(k)) % self.n_slots

    def predecessor_slots(self, slot: int, k: int) -> np.ndarray:
        """Indices of the ``k`` slots counter-clockwise before ``slot``."""
        return (slot - 1 - np.arange(k)) % self.n_slots

    def owner_loads(self, n_owners: int) -> np.ndarray:
        """Remaining tasks per physical owner (int64, length ``n_owners``).

        Cached between mutations; treat the returned array as read-only.
        """
        cached = self._loads_cache
        if (
            cached is not None
            and not self._loads_dirty
            and cached.size == n_owners
        ):
            return cached
        loads = np.bincount(
            self.owner, weights=self.counts, minlength=n_owners
        ).astype(_I64)
        self._loads_cache = loads
        self._loads_dirty = False
        return loads

    def consumption_groups(self) -> ConsumptionGroups:
        """Owner-grouped CSR layout of the live slots (cached).

        One stable argsort per *structural* epoch replaces the per-tick
        ``lexsort`` the consumption phase historically paid: the grouping
        only changes when slots are inserted or removed, not when counts
        are consumed, so between churn events every tick reuses it.  The
        arrays are shared — callers must not mutate them.
        """
        cached = self._groups_cache
        if cached is not None:
            return cached
        owner = self._owner_view
        gorder = np.argsort(owner, kind="stable").astype(_I64)
        owners_sorted = owner[gorder]
        first = np.ones(gorder.size, dtype=bool)
        if gorder.size:
            first[1:] = owners_sorted[1:] != owners_sorted[:-1]
        starts = np.flatnonzero(first).astype(_I64)
        sizes = np.diff(np.append(starts, gorder.size)).astype(_I64)
        groups = ConsumptionGroups(
            order=gorder,
            starts=starts,
            sizes=sizes,
            owners=owners_sorted[starts],
        )
        self._groups_cache = groups
        return groups

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_tasks(self, keys: np.ndarray) -> None:
        """Inject newly arrived task keys into their responsible slots.

        Supports the streaming-arrival extension.  One sort-by-slot pass
        merges and reshuffles every affected slot at once (tail
        consumption stays uniformly random per slot: each group is
        ordered by i.i.d. random ranks).
        """
        keys = np.asarray(keys, dtype=_U64)
        if keys.size == 0:
            return
        slot_idx = responsible_slots(self.ids, keys)
        affected = np.unique(slot_idx)
        counts = self.counts
        old_sizes = counts[affected]
        fresh_sizes = np.bincount(slot_idx, minlength=self.n_slots)[affected]
        group_sizes = old_sizes + fresh_sizes
        total = int(group_sizes.sum())

        # lay out [old | fresh] per affected slot, grouped
        flat = np.empty(total, dtype=_U64)
        fresh_grouped = keys[np.argsort(slot_idx, kind="stable")]
        offsets = np.concatenate(([0], np.cumsum(group_sizes)))
        fresh_off = 0
        for g, slot in enumerate(affected.tolist()):
            lo = int(offsets[g])
            old_n = int(old_sizes[g])
            new_n = int(fresh_sizes[g])
            flat[lo : lo + old_n] = self.remaining_keys(slot)
            flat[lo + old_n : lo + old_n + new_n] = fresh_grouped[
                fresh_off : fresh_off + new_n
            ]
            fresh_off += new_n
        # uniform shuffle within each group: sort by (group, random rank)
        labels = np.repeat(np.arange(affected.size), group_sizes)
        ranks = self.rng.random(total)
        flat = flat[np.lexsort((ranks, labels))]
        for g, slot in enumerate(affected.tolist()):
            merged = flat[int(offsets[g]) : int(offsets[g + 1])]
            self._pool.give(self.keys[slot])
            self.keys[slot] = merged
            counts[slot] = merged.size
        self._loads_dirty = True

    def consume_at(self, slots: np.ndarray, amounts: np.ndarray) -> None:
        """Consume ``amounts[i]`` tasks from ``slots[i]`` (vectorized)."""
        self.counts[slots] -= amounts
        self._loads_dirty = True
        if (self.counts[slots] < 0).any():
            raise RingError("consumed more tasks than a slot holds")

    def insert_slot(
        self,
        new_id: int,
        owner: int,
        *,
        is_main: bool,
        provenance: int | None = None,
    ) -> tuple[int, int]:
        """Insert a new identity and transfer the keys it is responsible for.

        Returns ``(slot_index, acquired_count)``.  Raises
        :class:`IdSpaceError` when ``new_id`` collides with an existing
        slot (callers redraw).  ``provenance`` defaults to honest for
        main identities and benevolent-Sybil otherwise; the adversary
        plane passes an explicit code.
        """
        nid = _U64(self.space.validate(new_id))
        pos = int(np.searchsorted(self.ids, nid, side="left"))
        if pos < self.n_slots and self.ids[pos] == nid:
            raise IdSpaceError(f"identifier {new_id} already on the ring")
        succ = pos if pos < self.n_slots else 0
        pred = self.pred_id(succ)

        remaining = self.remaining_keys(succ)
        mask = in_arc_mask(remaining, pred, int(nid))
        taken_n = int(np.count_nonzero(mask))
        kept_n = remaining.size - taken_n
        if taken_n:
            taken = self._pool.take(taken_n)
            np.compress(mask, remaining, out=taken[:taken_n])
        else:
            taken = _EMPTY_KEYS
        if kept_n:
            kept = self._pool.take(kept_n)
            np.compress(~mask, remaining, out=kept[:kept_n])
        else:
            kept = _EMPTY_KEYS
        old_succ_keys = self.keys[succ]

        if provenance is None:
            provenance = PROV_HONEST if is_main else PROV_BENEVOLENT
        self._shift_insert(pos, nid, owner, is_main, taken_n, provenance)
        self.keys.insert(pos, taken)
        if not is_main:
            self.n_sybil_slots += 1

        succ_new = succ + 1 if pos <= succ else succ
        self.keys[succ_new] = kept
        self._counts_buf[succ_new] = kept_n
        self._pool.give(old_succ_keys)
        self._index.note_insert(int(nid), int(owner), bool(is_main))
        self._loads_dirty = True
        return pos, taken_n

    def remove_slot(self, slot: int) -> int:
        """Remove a slot, merging its remaining keys into its successor.

        Models both a node leaving under churn (active backups make the
        hand-off lossless) and a Sybil quitting.  Returns the number of
        keys transferred.
        """
        if self.n_slots <= 1:
            raise RingError("cannot remove the last slot on the ring")
        succ = (slot + 1) % self.n_slots
        moved = int(self.counts[slot])
        if moved:
            succ_rem = self.remaining_keys(succ)
            total = moved + succ_rem.size
            merged = self._pool.take(total)
            merged[:moved] = self.remaining_keys(slot)
            merged[moved:total] = succ_rem
            # reshuffle so tail-consumption stays uniform over the merge
            # (shuffle of the concatenation == the old rng.permutation)
            self.rng.shuffle(merged[:total])
            self._pool.give(self.keys[succ])
            self.keys[succ] = merged
            self._counts_buf[succ] = total
        removed_id = int(self._ids_view[slot])
        removed_owner = int(self.owner[slot])
        removed_main = bool(self.is_main[slot])
        if not removed_main:
            self.n_sybil_slots -= 1
        self._pool.give(self.keys[slot])
        self.keys.pop(slot)
        self._shift_remove(slot)
        self._index.note_remove(removed_id, removed_owner, removed_main)
        self._loads_dirty = True
        return moved

    def remove_owner(self, owner: int) -> int:
        """Remove every slot of a physical owner (main + Sybils).

        Returns the number of keys handed off to successors.  One index
        lookup replaces the historical rescan-after-every-removal loop;
        slots are removed in ascending order (each removal shifts the
        later positions down by one), which replays the sequential RNG
        draw order exactly.
        """
        slots = self._ensure_index().slots_of(self._ids_view, int(owner))
        moved = 0
        for j, slot in enumerate(slots.tolist()):
            moved += self.remove_slot(int(slot) - j)
        return moved

    def retire_sybils(self, owner: int) -> int:
        """Remove the owner's Sybil slots, keeping its main identity.

        Returns the number of Sybil slots removed.  One-pass like
        :meth:`remove_owner`.  Never empties the ring: when churn has
        already taken the owner's main identity, its last Sybil may be
        the last slot alive — that identity stays put (the same guard
        the engine applies to churn departures).
        """
        slots = self._ensure_index().slots_of(self._ids_view, int(owner))
        is_main = self.is_main
        targets = [int(s) for s in slots.tolist() if not is_main[s]]
        removed = 0
        for slot in targets:
            if self.n_slots <= 1:
                break
            # ascending targets: each prior removal shifted this slot
            # down by one, exactly as the sequential loop would see it
            self.remove_slot(slot - removed)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # batch structure changes (used by the engine's churn phase)
    # ------------------------------------------------------------------
    def begin_batch_removal(self, owners=None) -> "BatchRemoval":
        """Start a batched removal; call :meth:`BatchRemoval.commit`.

        Pass ``owners`` (the owner indices that may be removed) when the
        set is known up front — the batch then locates their slots with
        one selective scan instead of consulting the full owner index.
        """
        return BatchRemoval(self, owners)

    def begin_batch_insertion(self) -> "BatchInsertion":
        """Start a batched insertion; call :meth:`BatchInsertion.commit`."""
        return BatchInsertion(self)

    def median_key(self, slot: int) -> int | None:
        """Median remaining key of the slot *by ring position within its arc*.

        Used by the ``placement="median"`` ablation: a Sybil placed at the
        median key takes over half the slot's remaining tasks.  Returns
        None when the slot has fewer than 2 remaining keys.
        """
        remaining = self.remaining_keys(slot)
        if remaining.size < 2:
            return None
        pred = self.pred_id(slot)
        # clockwise distance from the arc start: uint64 subtraction wraps
        # mod 2**64; masking reduces it to mod 2**bits (2**64 is a multiple
        # of the space size for any bits <= 64)
        ordered = np.sort((remaining - _U64(pred)) & _U64(self.space.max_id))
        mid = ordered[(ordered.size - 1) // 2]
        return (pred + int(mid)) % self.space.size

    # ------------------------------------------------------------------
    # validation (tests / debugging)
    # ------------------------------------------------------------------
    def _check_shapes(self) -> None:
        m = self._n
        if not (
            self.owner.size == m
            and self.is_main.size == m
            and len(self.keys) == m
            and self.counts.size == m
        ):
            raise RingError("ring arrays have inconsistent lengths")

    def verify_invariants(self) -> None:
        """Raise :class:`RingError` if any structural invariant is broken."""
        self._check_shapes()
        if self.n_slots == 0:
            raise RingError("empty ring")
        if not (self.ids[:-1] < self.ids[1:]).all():
            raise RingError("ids not strictly increasing")
        if (self.counts < 0).any():
            raise RingError("negative remaining count")
        for i in range(self.n_slots):
            if self.counts[i] > self.keys[i].size:
                raise RingError(f"slot {i}: count exceeds stored keys")
            remaining = self.remaining_keys(i)
            if remaining.size:
                pred, own = self.slot_arc(i)
                if not in_arc_mask(remaining, pred, own).all():
                    raise RingError(f"slot {i}: key outside responsibility arc")
        if self.n_sybil_slots != int((~self.is_main).sum()):
            raise RingError("sybil slot counter out of sync")
        if self.provenance.size != self.n_slots or (
            (self.provenance < 0) | (self.provenance > 2)
        ).any():
            raise RingError("slot provenance out of sync")
        self._verify_index()
        self._verify_loads_cache()

    def _verify_index(self) -> None:
        index = self._index
        if index.dirty:
            return
        owner = self.owner
        ids = self._ids_view
        for o in np.unique(owner).tolist():
            expected = np.flatnonzero(owner == o)
            group = index.group_ids(int(o))
            if (
                group.size != expected.size
                or (group != ids[expected]).any()
            ):
                raise RingError(f"owner index out of sync for owner {o}")
            mains = np.flatnonzero((owner == o) & self.is_main)
            if index.main_count(int(o)) != mains.size:
                raise RingError(f"main count out of sync for owner {o}")
            if mains.size == 1 and index.main_slot(ids, int(o)) != int(
                mains[0]
            ):
                raise RingError(f"main identity out of sync for owner {o}")

    def _verify_loads_cache(self) -> None:
        cached = self._loads_cache
        if cached is None or self._loads_dirty:
            return
        fresh = np.bincount(
            self.owner, weights=self.counts, minlength=cached.size
        ).astype(_I64)
        if fresh.size != cached.size or (fresh != cached).any():
            raise RingError("owner loads cache out of sync")


class BatchRemoval:
    """Batched slot removal with sequential-equivalent key movement.

    ``remove_owner``/``retire_sybils`` replay the exact merge-and-shuffle
    sequence of repeated :meth:`RingState.remove_slot` calls (ascending
    slot order, as the sequential loop produced) against *stable* slot
    positions; :meth:`commit` compresses the slab once.  RNG consumption
    is bit-identical to the sequential path.
    """

    def __init__(self, state: RingState, owners=None):
        self._state = state
        n = state.n_slots
        # bytearray, not a bool ndarray: per-event scalar indexing is the
        # hottest operation in a churn batch and python-level bytearray
        # access is several times cheaper than numpy scalar access
        self._alive = bytearray(b"\x01") * n
        self._n = n
        self._skip: dict[int, int] = {}
        self._dead: list[int] = []
        self._live = n
        self._committed = False
        if owners is None:
            # owner queries against pre-batch positions via the index
            state._ensure_index()
            self._slots_by_owner: dict[int, list[int]] | None = None
        else:
            # the caller knows the owner set up front (the engine's
            # churn phase does): one flag-gather scan beats rebuilding
            # the full owner index for a handful of departures
            arr = np.asarray(owners, dtype=_I64)
            grouped: dict[int, list[int]] = {}
            if arr.size:
                ow = state.owner
                hi = int(ow.max()) + 1 if ow.size else 1
                flags = np.zeros(hi, dtype=bool)
                flags[arr[(arr >= 0) & (arr < hi)]] = True
                sel = np.flatnonzero(flags[ow])
                for p in sel.tolist():
                    o = int(ow[p])
                    if o in grouped:
                        grouped[o].append(p)
                    else:
                        grouped[o] = [p]
            self._slots_by_owner = grouped
        # hot references — stable for the lifetime of the batch, since
        # no structural op rebinds the prefix views until commit()
        self._counts = state.counts
        self._keys = state.keys
        self._pool = state._pool
        self._pool_classes = state._pool._classes
        self._shuffle = state.rng.shuffle

    @property
    def live_slots(self) -> int:
        """Slots still on the ring, counting pending removals."""
        return self._live

    def _owner_slots(self, owner: int) -> list[int]:
        """Pre-batch slot positions of ``owner``, ascending."""
        if self._slots_by_owner is not None:
            slots = self._slots_by_owner.get(int(owner))
            if slots is not None:
                return slots
        state = self._state
        return state._ensure_index().slots_of(state.ids, int(owner)).tolist()

    def owner_live_count(self, owner: int) -> int:
        slots = self._owner_slots(owner)
        if self._live == self._n:
            return len(slots)
        alive = self._alive
        return sum(1 for s in slots if alive[s])

    def remove_owner(self, owner: int) -> int:
        """Queue removal of all the owner's slots; returns keys moved."""
        moved = 0
        alive = self._alive
        for slot in self._owner_slots(owner):
            if alive[slot]:
                moved += self._remove_one(slot)
        return moved

    def remove_owner_guarded(self, owner: int) -> int | None:
        """Queue removal of all the owner's slots unless that would
        empty the ring; returns keys moved, or None if guarded.

        Fuses the :meth:`owner_live_count` check with the removal so the
        engine's churn loop touches the owner's slot list once.
        """
        alive = self._alive
        slots = self._owner_slots(owner)
        if self._live != self._n:
            slots = [s for s in slots if alive[s]]
        if self._live - len(slots) < 1:
            return None
        moved = 0
        for slot in slots:
            moved += self._remove_one(slot)
        return moved

    def crash_owner_guarded(
        self, owner: int, replication: int | None
    ) -> tuple[int, int] | None:
        """Queue a crash-stop removal of all the owner's slots.

        Unlike :meth:`remove_owner_guarded` (a graceful leave, where the
        departing node hands every key to its successor), a crash loses
        any key that is not replicated: a slot's keys survive only if
        one of its ``replication`` immediate successors on the pre-batch
        ring is still alive *within this batch* to serve the backup.
        ``replication=None`` models the paper's perfect-backup
        idealization (the next live successor always has a copy).

        All the owner's slots are marked dead before any recovery is
        resolved, so a backup can never land on another identity of the
        crashed owner.  Returns ``(recovered, lost)`` key counts, or
        None if removing the owner would empty the ring (the engine
        treats that as ring death).
        """
        alive = self._alive
        slots = self._owner_slots(owner)
        if self._live != self._n:
            slots = [s for s in slots if alive[s]]
        if self._live - len(slots) < 1:
            return None
        n = self._n
        counts = self._counts
        keys = self._keys
        classes = self._pool_classes
        # phase 1: mark every slot dead, capturing its key buffer
        captured: list[tuple[int, np.ndarray, int]] = []
        for slot in slots:
            captured.append((slot, keys[slot], int(counts[slot])))
            keys[slot] = _EMPTY_KEYS
            counts[slot] = 0
            alive[slot] = 0
            self._skip[slot] = (slot + 1) % n
            self._dead.append(slot)
            self._live -= 1
        # phase 2: resolve each slot's keys against the backup holders
        recovered = 0
        lost = 0
        for slot, buf, moved in captured:
            if moved:
                if replication is None:
                    succ = self._next_alive(slot)
                else:
                    succ = -1
                    j = slot
                    for _ in range(replication):
                        j += 1
                        if j == n:
                            j = 0
                        if alive[j]:
                            succ = j
                            break
                if succ < 0:
                    lost += moved
                else:
                    recovered += moved
                    n_succ = int(counts[succ])
                    total = moved + n_succ
                    cap = 8 if total <= 8 else 1 << (total - 1).bit_length()
                    bucket = classes.get(cap)
                    merged = (
                        bucket.pop() if bucket else np.empty(cap, dtype=_U64)
                    )
                    merged[:moved] = buf[:moved]
                    merged[moved:total] = keys[succ][:n_succ]
                    self._shuffle(merged[:total])
                    old = keys[succ]
                    cap = old.size
                    if (
                        old.base is None
                        and 8 <= cap <= 262144
                        and not cap & (cap - 1)
                    ):
                        bucket = classes.setdefault(cap, [])
                        if len(bucket) < 32:
                            bucket.append(old)
                    keys[succ] = merged
                    counts[succ] = total
            cap = buf.size
            if buf.base is None and 8 <= cap <= 262144 and not cap & (cap - 1):
                bucket = classes.setdefault(cap, [])
                if len(bucket) < 32:
                    bucket.append(buf)
        return recovered, lost

    def retire_sybils(self, owner: int) -> int:
        """Queue removal of the owner's Sybil slots; returns how many.

        Mirrors :meth:`RingState.retire_sybils`: the last live slot is
        never queued, so a batch can't empty the ring either.
        """
        is_main = self._state.is_main
        alive = self._alive
        removed = 0
        for slot in self._owner_slots(owner):
            if alive[slot] and not is_main[slot]:
                if self._live <= 1:
                    break
                self._remove_one(slot)
                removed += 1
        return removed

    def _next_alive(self, slot: int) -> int:
        n = self._n
        j = (slot + 1) % n
        path = []
        while not self._alive[j]:
            path.append(j)
            j = self._skip.get(j, (j + 1) % n)
        for p in path:  # path compression
            self._skip[p] = j
        return j

    def _remove_one(self, slot: int) -> int:
        if self._live <= 1:
            raise RingError("cannot remove the last slot on the ring")
        alive = self._alive
        if not alive[slot]:
            raise RingError(f"slot {slot} already removed in this batch")
        succ = slot + 1
        if succ == self._n:
            succ = 0
        if not alive[succ]:
            succ = self._next_alive(slot)
        counts = self._counts
        keys = self._keys
        classes = self._pool_classes
        moved = int(counts[slot])
        if moved:
            n_succ = int(counts[succ])
            total = moved + n_succ
            # pool take/give inlined: these three calls are the hottest
            # allocator traffic in a churn batch
            cap = 8 if total <= 8 else 1 << (total - 1).bit_length()
            bucket = classes.get(cap)
            merged = bucket.pop() if bucket else np.empty(cap, dtype=_U64)
            merged[:moved] = keys[slot][:moved]
            merged[moved:total] = keys[succ][:n_succ]
            self._shuffle(merged[:total])
            old = keys[succ]
            cap = old.size
            if (
                old.base is None
                and 8 <= cap <= 262144
                and not cap & (cap - 1)
            ):
                bucket = classes.setdefault(cap, [])
                if len(bucket) < 32:
                    bucket.append(old)
            keys[succ] = merged
            counts[succ] = total
        old = keys[slot]
        cap = old.size
        if old.base is None and 8 <= cap <= 262144 and not cap & (cap - 1):
            bucket = classes.setdefault(cap, [])
            if len(bucket) < 32:
                bucket.append(old)
        keys[slot] = _EMPTY_KEYS
        counts[slot] = 0
        alive[slot] = 0
        self._skip[slot] = (slot + 1) % self._n
        self._dead.append(slot)
        self._live -= 1
        return moved

    def commit(self) -> None:
        """Compress the slab, dropping every queued slot in one pass."""
        if self._committed:
            raise RingError("batch removal already committed")
        self._committed = True
        alive = np.frombuffer(self._alive, dtype=bool)
        self._state._compress_alive(alive, dead=self._dead)
        self._state._loads_dirty = True


class BatchInsertion:
    """Batched slot insertion with sequential-equivalent key partitioning.

    ``add`` resolves each new identity's predecessor/successor against
    the *merged* view of the live ring plus already-pending insertions,
    and partitions the successor's remaining keys exactly as a sequential
    :meth:`RingState.insert_slot` would; :meth:`commit` splices all
    pending slots into the slab in one pass.
    """

    def __init__(self, state: RingState):
        self._state = state
        self._pend_ids: list[int] = []  # sorted
        self._pend_set: set[int] = set()
        # ident -> (owner, is_main, provenance)
        self._records: dict[int, tuple[int, bool, int]] = {}
        # live slot -> pending idents landing in its arc
        self._by_slot: dict[int, list[int]] = {}
        # live slot -> (pred_id, remaining-keys view) of its arc
        self._arc: dict[int, tuple[int, np.ndarray]] = {}
        self._committed = False
        # hot references — stable for the lifetime of the batch, since
        # pending slots are only spliced into the slab at commit()
        self._ids = state.ids
        self._keys = state.keys
        self._counts = state.counts
        self._size = state.space.size
        self._wrap = _U64(state.space.max_id)
        # uint64 arithmetic wraps mod 2**64 already when the space is the
        # full 64 bits, so the reduce-mod-size masking can be skipped
        self._mask = None if state.space.bits == 64 else self._wrap
        self._searchsorted = self._ids.searchsorted
        # the engine probes id_exists immediately before add: remember
        # the last miss so add() can skip the repeated ring lookup
        self._last_miss: tuple[int, int] | None = None

    def id_exists(self, ident: int) -> bool:
        """Membership test over live plus pending identities."""
        if ident in self._pend_set:
            return True
        ids = self._ids
        # _U64 needle matters: a small python int infers int64 and makes
        # searchsorted cast the whole uint64 array per call
        pos = int(self._searchsorted(_U64(ident)))
        if pos < ids.size and int(ids[pos]) == ident:
            return True
        self._last_miss = (int(ident), pos)
        return False

    def add(
        self,
        ident: int,
        owner: int,
        *,
        is_main: bool,
        provenance: int | None = None,
    ) -> int:
        """Queue one insertion; returns the number of keys acquired.

        The acquired count is the number of keys the identity would take
        if inserted right now — counted by a range query over the
        enclosing live slot's sorted arc offsets — but no keys actually
        move until :meth:`commit` redistributes each affected arc in one
        vectorized pass.  Since splits consume no randomness, the counts
        and the final key layout are bit-identical to sequential
        :meth:`RingState.insert_slot` calls.
        """
        size = self._size
        nid = int(ident)
        if nid < 0 or nid >= size:
            self._state.space.validate(nid)  # raises with the right message
        ids = self._ids
        n = ids.size
        last = self._last_miss
        if last is not None and last[0] == nid:
            # the caller just probed id_exists(nid): reuse its lookup
            self._last_miss = None
            pos = last[1]
            if nid in self._pend_set:
                raise IdSpaceError(f"identifier {ident} already on the ring")
        else:
            pos = int(self._searchsorted(_U64(nid), side="left"))
            if (pos < n and ids[pos] == nid) or nid in self._pend_set:
                raise IdSpaceError(f"identifier {ident} already on the ring")
        slot = pos if pos < n else 0
        arc = self._arc.get(slot)
        if arc is None:
            pred_id = int(ids[slot - 1])  # negative index wraps
            remaining = self._keys[slot][: int(self._counts[slot])]
            arc = (pred_id, remaining)
            self._arc[slot] = arc
        pred_id, remaining = arc
        # own offset, and the offset of the nearest pending predecessor
        # inside the same arc (keys below it were already claimed)
        dv = (nid - pred_id) % size
        dp = 0
        pend = self._pend_ids
        if pend:
            i = bisect.bisect_left(pend, nid)
            p_pred = pend[i - 1] if i > 0 else pend[-1]
            d = (nid - p_pred) % size
            if d < dv:
                dp = dv - d
        # count keys whose arc offset lies in (dp, dv]: shifting the arc
        # start past dp turns the range test into one compare — a key at
        # offset <= dp (including 0, the arc start itself) wraps to a
        # huge value and is excluded, matching the (pred, self] rule
        rel = remaining - (pred_id + dp + 1) % size
        if self._mask is not None:
            rel &= self._mask
        acquired = int(np.count_nonzero(rel <= dv - dp - 1))
        if provenance is None:
            provenance = PROV_HONEST if is_main else PROV_BENEVOLENT
        bisect.insort(pend, nid)
        self._pend_set.add(nid)
        self._records[nid] = (int(owner), bool(is_main), int(provenance))
        lst = self._by_slot.get(slot)
        if lst is None:
            self._by_slot[slot] = [nid]
        else:
            lst.append(nid)
        return acquired

    def commit(self) -> None:
        """Redistribute every affected arc and splice in one merge pass.

        Arcs that attracted exactly one pending identity (the common case
        under realistic churn) are partitioned together in one vectorized
        compress over the concatenation of their remaining keys; arcs
        with several pending identities fall back to a per-arc pass.
        """
        if self._committed:
            raise RingError("batch insertion already committed")
        self._committed = True
        state = self._state
        m = len(self._pend_ids)
        if m == 0:
            return
        size = self._size
        keys = self._keys
        counts = self._counts
        pool = state._pool
        mask = self._mask
        taken: dict[int, np.ndarray] = {}

        v_slots: list[int] = []
        v_idents: list[int] = []
        multi: list[tuple[int, list[int]]] = []
        if self._ids.size > 1:
            for slot, idents in self._by_slot.items():
                if len(idents) == 1:
                    v_slots.append(slot)
                    v_idents.append(idents[0])
                else:
                    multi.append((slot, idents))
        else:
            # the full-circle arc needs its offset-0 special case below
            multi = list(self._by_slot.items())

        if v_slots:
            arc = self._arc
            key_parts = [arc[s][1] for s in v_slots]
            cnts = np.fromiter(
                (k.size for k in key_parts), dtype=_I64, count=len(v_slots)
            )
            all_keys = np.concatenate(key_parts)
            preds = np.array([arc[s][0] for s in v_slots], dtype=_U64)
            bounds = np.array(v_idents, dtype=_U64)
            # key in (pred, bound] ⟺ (key - pred - 1) mod size <= span
            lo = preds + _U64(1)
            span = bounds - preds - _U64(1)
            rel = all_keys - np.repeat(lo, cnts)
            if mask is not None:
                span &= mask
                rel &= mask
            tmask = rel <= np.repeat(span, cnts)
            tk = all_keys[tmask]
            kp = all_keys[~tmask]
            key_rank = np.repeat(np.arange(len(v_slots)), cnts)
            tcnt = np.bincount(key_rank[tmask], minlength=len(v_slots))
            kcnt = cnts - tcnt
            tends = np.cumsum(tcnt).tolist()
            kends = np.cumsum(kcnt).tolist()
            counts[np.array(v_slots, dtype=_I64)] = kcnt
            prev = 0
            for i, ident in enumerate(v_idents):
                end = tends[i]
                taken[ident] = tk[prev:end]
                prev = end
            prev = 0
            for i, slot in enumerate(v_slots):
                end = kends[i]
                pool.give(keys[slot])
                keys[slot] = kp[prev:end]
                prev = end

        single = self._ids.size == 1
        for slot, idents in multi:
            pred_id, remaining = self._arc[slot]
            idents.sort(key=lambda p: (p - pred_id) % size)
            bound_offs = np.array(
                [(p - pred_id) % size for p in idents], dtype=_U64
            )
            offs = (remaining - _U64(pred_id)) & self._wrap
            # each key goes to the first boundary at-or-past its offset;
            # past the last boundary it stays with the live slot
            tgt = bound_offs.searchsorted(offs, side="left")
            if single:
                # full-circle arc: a key equal to the slot's own id has
                # offset 0 but belongs to the slot itself
                tgt[offs == 0] = len(idents)
            order = np.argsort(tgt, kind="stable")
            grouped = remaining[order]
            seg = np.bincount(tgt, minlength=len(idents) + 1)
            hi = 0
            for j, ident in enumerate(idents):
                lo, hi = hi, hi + int(seg[j])
                taken[ident] = grouped[lo:hi]
            kept = grouped[hi:].copy()
            pool.give(keys[slot])
            keys[slot] = kept
            counts[slot] = kept.size

        pend_ids = np.array(self._pend_ids, dtype=_U64)
        records = [self._records[i] for i in self._pend_ids]
        pend_owner = np.array([r[0] for r in records], dtype=_I64)
        pend_main = np.array([r[1] for r in records], dtype=bool)
        pend_prov = np.array([r[2] for r in records], dtype=np.int8)
        pend_keys = [taken[i] for i in self._pend_ids]
        positions = state.ids.searchsorted(pend_ids, side="left")
        state._admit_pending(
            positions.astype(_I64),
            pend_ids,
            pend_owner,
            pend_main,
            pend_prov,
            pend_keys,
        )
