"""Consumption kernels: the tick loop's hottest arithmetic, per backend.

The engine's consumption phase distributes each owner's per-tick rate
across its ring identities, heaviest identity first (§V of the paper).
This module isolates that arithmetic into standalone kernels so it can
be (a) swapped between a pure-NumPy implementation and an optional
numba-jitted one, (b) executed by shard workers against shared-memory
slab views (:mod:`repro.sim.shard`), and (c) property-checked against
the historical lexsort implementation, the same reference-equivalence
pattern the slab rewrite used (``NaiveRingState`` vs ``RingState``).

Consumption semantics (the contract every backend must meet bit-for-bit)
-----------------------------------------------------------------------

Given per-slot remaining ``counts``, per-owner ``rates``, and a CSR
grouping of the live slots by owner (see
:meth:`repro.sim.state.RingState.consumption_groups`):

1. an owner wants ``min(rate, sum of its slots' counts)`` tasks;
2. the *heaviest* slot (max count; ties broken by lowest ring position)
   absorbs as much of that demand as it can;
3. any residual drains the owner's remaining slots in descending count
   order, ties again broken by lowest ring position (a *stable*
   descending order).

Step 3's tie-break deserves a note: the historical engine used
``np.argsort(-group)`` (introsort).  Owner groups are bounded by
``max_sybils + 1 <= 7`` slots and NumPy's introsort degenerates to a
(stable) insertion sort below 16 elements, so the stable rule above is
bit-identical to every trajectory the old code could produce — but
unlike "whatever introsort does", it is implementable identically in
NumPy, numba, and any future compiled backend.

Backends
--------

``numpy``
    Default.  Fully vectorized: segmented max / first-of-max via
    ``ufunc.reduceat`` over the cached CSR grouping — O(n) per tick
    instead of the old per-tick ``lexsort`` — and a vectorized
    cumulative-clip pass for the (rare) residual slots.
``numba``
    Optional, feature-flagged, off by default.  A ``@njit`` translation
    of the same contract.  Requires the ``numba`` package; selecting it
    without numba installed raises :class:`~repro.errors.ConfigError`
    (the dependency is never auto-installed).  Enable per run with
    ``TickEngine(config, backend="numba")``, ``repro simulate --backend
    numba``, or globally with ``REPRO_SIM_BACKEND=numba``.

Consumption draws no randomness and the kernels are pure integer
arithmetic over ``int64`` arrays, so seeded results are bit-identical
across backends and across any partition of the CSR grouping into
contiguous chunks — the property the sharded engine is built on.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HAVE_NUMBA",
    "available_backends",
    "consume_fast",
    "consume_grouped",
    "consume_grouped_reference",
    "grouped_kernel",
    "fast_kernel",
    "resolve_backend",
]

try:  # feature-flagged accelerator: absence is a supported configuration
    import numba  # type: ignore[import-not-found, import-untyped]

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less installs
    numba = None
    HAVE_NUMBA = False

#: Recognized backend names, in preference order.
BACKENDS = ("numpy", "numba")
DEFAULT_BACKEND = "numpy"
#: Environment override consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_SIM_BACKEND"

_I64 = np.int64


def available_backends() -> tuple[str, ...]:
    """The backends usable in this environment."""
    return BACKENDS if HAVE_NUMBA else ("numpy",)


def resolve_backend(name: str | None = None) -> str:
    """Validate a backend request (or the env default) to a usable name.

    ``None`` falls back to ``$REPRO_SIM_BACKEND``, then ``"numpy"``.
    Requesting ``"numba"`` without numba installed is an explicit
    :class:`~repro.errors.ConfigError`, never a silent fallback — a
    benchmark that silently ran the wrong backend would lie.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown simulation backend {name!r}; expected one of "
            f"{BACKENDS}"
        )
    if name == "numba" and not HAVE_NUMBA:
        raise ConfigError(
            "backend 'numba' requested but the numba package is not "
            "installed; install numba or use backend 'numpy'"
        )
    return name


# ----------------------------------------------------------------------
# numpy backend
# ----------------------------------------------------------------------
def consume_fast(counts: np.ndarray, owner: np.ndarray,
                 rates: np.ndarray) -> int:
    """One-slot-per-owner consumption: each slot is its own group.

    Mutates ``counts`` in place; returns the total consumed.
    """
    take = np.minimum(counts, rates[owner])
    if take.dtype != counts.dtype:
        take = take.astype(counts.dtype)
    counts -= take
    return int(take.sum())


def consume_grouped(
    counts: np.ndarray,
    rates: np.ndarray,
    gorder: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    group_owner: np.ndarray,
) -> int:
    """Grouped heaviest-first consumption over a CSR slot grouping.

    ``gorder`` lists slot indices grouped by owner (ascending ring
    position within a group); group ``g`` spans
    ``gorder[starts[g] : starts[g] + sizes[g]]`` and belongs to owner
    ``group_owner[g]``.  ``starts`` must begin at 0 — shard workers pass
    re-based CSR chunks, and the kernel's output is invariant under any
    contiguous partition into such chunks.

    Mutates ``counts`` in place; returns the total consumed.
    """
    if starts.size == 0:
        return 0
    gcounts = counts[gorder]
    loads = np.add.reduceat(gcounts, starts)
    maxes = np.maximum.reduceat(gcounts, starts)
    want = np.minimum(rates[group_owner], loads)
    # first-of-max per group: positions not achieving the max are pushed
    # past the end, so a segmented min yields the lowest ring position
    pos = np.arange(gcounts.size, dtype=_I64)
    cand = np.where(gcounts == np.repeat(maxes, sizes), pos, gcounts.size)
    heavy = gorder[np.minimum.reduceat(cand, starts)]
    take = np.minimum(want, maxes)
    counts[heavy] -= take
    consumed = int(take.sum())

    residual = want - take
    if residual.any():
        consumed += _drain_residual_numpy(
            counts, gorder, starts, sizes, residual
        )
    return consumed


def _drain_residual_numpy(
    counts: np.ndarray,
    gorder: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    residual: np.ndarray,
) -> int:
    """Drain deficient owners' remaining slots, stable-descending.

    Only groups whose heaviest slot could not cover their demand reach
    this path; their slots are gathered, sorted descending by post-grab
    count (stable: ties keep ascending ring position), and consumed with
    one cumulative-clip pass.
    """
    didx = np.flatnonzero(residual > 0)
    dsizes = sizes[didx]
    ends = np.cumsum(dsizes)
    bases = ends - dsizes
    # within-group offsets 0..size-1, flattened across deficient groups
    offs = np.arange(int(ends[-1]), dtype=_I64) - np.repeat(bases, dsizes)
    sel = gorder[np.repeat(starts[didx], dsizes) + offs]
    group_counts = counts[sel]
    labels = np.repeat(np.arange(didx.size, dtype=_I64), dsizes)
    order = np.lexsort((offs, -group_counts, labels))
    sorted_counts = group_counts[order]
    prefix = np.cumsum(sorted_counts) - sorted_counts
    prefix -= np.repeat(prefix[bases], dsizes)
    take = np.clip(
        np.repeat(residual[didx], dsizes) - prefix, 0, sorted_counts
    )
    counts[sel[order]] -= take
    return int(take.sum())


# ----------------------------------------------------------------------
# reference implementation (the historical per-tick lexsort path)
# ----------------------------------------------------------------------
def consume_grouped_reference(
    counts: np.ndarray, owner: np.ndarray, rates: np.ndarray
) -> int:
    """The pre-kernel engine consumption, kept as the equivalence oracle.

    One ``lexsort`` groups slots by owner with counts descending; the
    first slot of each group absorbs what it can of the owner's demand
    and a Python loop settles the residual.  Property tests pin every
    backend against this, the same way slab structural ops are pinned
    against ``NaiveRingState``.
    """
    loads = np.bincount(
        owner, weights=counts, minlength=rates.size
    ).astype(_I64)
    want = np.minimum(rates, loads)

    order = np.lexsort((-counts, owner))
    owners_sorted = owner[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = owners_sorted[1:] != owners_sorted[:-1]
    heavy_slots = order[first]
    heavy_owners = owners_sorted[first]

    take = np.minimum(want[heavy_owners], counts[heavy_slots])
    counts[heavy_slots] -= take
    consumed = int(take.sum())

    residual = want[heavy_owners] - take
    if residual.any():
        deficient = residual > 0
        for o, r in zip(heavy_owners[deficient], residual[deficient]):
            r = int(r)
            slots = np.flatnonzero(owner == int(o))
            group = counts[slots]
            for j in np.argsort(-group, kind="stable"):
                if r == 0:
                    break
                grab = min(r, int(group[j]))
                counts[slots[j]] -= grab
                r -= grab
                consumed += grab
    return consumed


# ----------------------------------------------------------------------
# numba backend (optional)
# ----------------------------------------------------------------------
if HAVE_NUMBA:

    @numba.njit(cache=False)
    def _consume_fast_numba(counts, owner, rates):  # pragma: no cover
        consumed = 0
        for i in range(counts.shape[0]):
            c = counts[i]
            r = rates[owner[i]]
            t = r if r < c else c
            counts[i] = c - t
            consumed += t
        return consumed

    @numba.njit(cache=False)
    def _consume_grouped_numba(  # pragma: no cover
        counts, rates, gorder, starts, sizes, group_owner
    ):
        consumed = 0
        for g in range(starts.shape[0]):
            s = starts[g]
            m = sizes[g]
            load = 0
            heaviest = -1
            heavy_at = -1
            for j in range(m):
                c = counts[gorder[s + j]]
                load += c
                if c > heaviest:
                    heaviest = c
                    heavy_at = s + j
            rate = rates[group_owner[g]]
            want = rate if rate < load else load
            if want <= 0:
                continue
            take = want if want < heaviest else heaviest
            counts[gorder[heavy_at]] -= take
            consumed += take
            r = want - take
            # stable descending drain: repeatedly take the first-of-max
            # (full takes zero the slot; a partial take ends the loop)
            while r > 0:
                best = 0
                pick = -1
                for j in range(m):
                    c = counts[gorder[s + j]]
                    if c > best:
                        best = c
                        pick = s + j
                grab = r if r < best else best
                counts[gorder[pick]] -= grab
                r -= grab
                consumed += grab
        return consumed

    def _numba_fast(counts, owner, rates):
        # type: (np.ndarray, np.ndarray, np.ndarray) -> int
        return int(_consume_fast_numba(counts, owner, rates))

    def _numba_grouped(counts, rates, gorder, starts, sizes, group_owner):
        # type: (...) -> int
        return int(
            _consume_grouped_numba(
                counts, rates, gorder, starts, sizes, group_owner
            )
        )


def fast_kernel(backend: str) -> Callable[..., int]:
    """The one-slot-per-owner kernel for a resolved backend name."""
    if backend == "numba" and HAVE_NUMBA:
        return _numba_fast
    return consume_fast


def grouped_kernel(backend: str) -> Callable[..., int]:
    """The grouped (multi-slot) kernel for a resolved backend name."""
    if backend == "numba" and HAVE_NUMBA:
        return _numba_grouped
    return consume_grouped
