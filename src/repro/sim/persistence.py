"""Serialization of simulation results to JSON.

Full-scale runs are expensive; persisting their results lets the
experiment harness cache trials, lets the report builder aggregate runs
from different machines, and gives EXPERIMENTS.md a provenance trail.
Histograms and time series are stored losslessly; per-owner final loads
are optional (they dominate file size at 10k nodes).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.config import SimulationConfig
from repro.errors import PersistenceError
from repro.metrics.balance import LoadStats
from repro.metrics.histograms import Histogram
from repro.metrics.timeseries import TickSeries
from repro.sim.results import SimulationResult, TrialSet

__all__ = [
    "RESULT_FORMAT",
    "TRIALSET_FORMAT",
    "SWEEP_FORMAT",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_trialset",
    "load_trialset",
    "save_sweep",
    "load_sweep",
]

#: On-disk format tags.  The trial cache folds :data:`RESULT_FORMAT`
#: into its keys, so bumping a version here invalidates cached trials.
#: v2 adds the failure-model fields (termination_reason,
#: total_injected, n_survivors); v3 adds the adversary summary block.
#: v1 and v2 documents remain readable.
RESULT_FORMAT = "repro.simulation_result.v3"
_RESULT_FORMATS_READ = (
    "repro.simulation_result.v1",
    "repro.simulation_result.v2",
    RESULT_FORMAT,
)
TRIALSET_FORMAT = "repro.trialset.v1"
SWEEP_FORMAT = "repro.sweep.v1"


def _histogram_to_dict(hist: Histogram) -> dict:
    return {
        "tick": hist.tick,
        "edges": hist.edges.tolist(),
        "counts": hist.counts.tolist(),
        "stats": hist.stats.as_dict(),
        "label": hist.label,
    }


def _histogram_from_dict(data: dict) -> Histogram:
    return Histogram(
        tick=data["tick"],
        edges=np.asarray(data["edges"], dtype=float),
        counts=np.asarray(data["counts"], dtype=np.int64),
        stats=LoadStats(**data["stats"]),
        label=data.get("label", ""),
    )


def _series_to_dict(series: TickSeries) -> dict:
    return {k: v.tolist() for k, v in series.as_arrays().items()}


def _series_from_dict(data: dict) -> TickSeries:
    series = TickSeries()
    for tick, consumed, remaining, n_slots, n_in, idle in zip(
        data["ticks"],
        data["consumed"],
        data["remaining"],
        data["n_slots"],
        data["n_in_network"],
        data["idle_owners"],
    ):
        series.append(tick, consumed, remaining, n_slots, n_in, idle)
    return series


def result_to_dict(
    result: SimulationResult, *, include_final_loads: bool = False
) -> dict[str, Any]:
    """JSON-safe dict capturing a result (and its exact config)."""
    payload: dict[str, Any] = {
        "format": RESULT_FORMAT,
        "config": result.config.as_dict(),
        "runtime_ticks": result.runtime_ticks,
        "ideal_ticks": result.ideal_ticks,
        "completed": result.completed,
        "total_consumed": result.total_consumed,
        "counters": dict(result.counters),
        "snapshots": [_histogram_to_dict(h) for h in result.snapshots],
        "timeseries": (
            _series_to_dict(result.timeseries)
            if result.timeseries is not None
            else None
        ),
        "termination_reason": result.termination_reason,
        "total_injected": result.total_injected,
        "n_survivors": result.n_survivors,
        "adversary": result.adversary,
    }
    if include_final_loads and result.final_loads is not None:
        payload["final_loads"] = result.final_loads.tolist()
    return payload


def result_from_dict(data: dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict` (reads v1, v2 and v3 documents)."""
    if data.get("format") not in _RESULT_FORMATS_READ:
        raise PersistenceError(
            f"unknown result format {data.get('format')!r}"
        )
    config_data = dict(data["config"])
    config_data["snapshot_ticks"] = tuple(config_data.get("snapshot_ticks", ()))
    final = data.get("final_loads")
    return SimulationResult(
        config=SimulationConfig(**config_data),
        runtime_ticks=data["runtime_ticks"],
        ideal_ticks=data["ideal_ticks"],
        completed=data["completed"],
        total_consumed=data["total_consumed"],
        counters=dict(data["counters"]),
        snapshots=[_histogram_from_dict(h) for h in data["snapshots"]],
        timeseries=(
            _series_from_dict(data["timeseries"])
            if data.get("timeseries") is not None
            else None
        ),
        final_loads=(
            np.asarray(final, dtype=np.int64) if final is not None else None
        ),
        termination_reason=data.get("termination_reason"),
        total_injected=data.get("total_injected"),
        n_survivors=data.get("n_survivors"),
        adversary=data.get("adversary"),
    )


def save_result(
    result: SimulationResult,
    path: str | Path,
    *,
    include_final_loads: bool = False,
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(
            result_to_dict(
                result, include_final_loads=include_final_loads
            )
        )
    )
    return path


def load_result(path: str | Path) -> SimulationResult:
    return result_from_dict(json.loads(Path(path).read_text()))


def save_trialset(trials: TrialSet, path: str | Path) -> Path:
    """Persist a whole trial set (one JSON document)."""
    path = Path(path)
    payload = _trialset_to_dict(trials)
    path.write_text(json.dumps(payload))
    return path


def _trialset_to_dict(trials: TrialSet) -> dict[str, Any]:
    return {
        "format": TRIALSET_FORMAT,
        "config": trials.config.as_dict(),
        "results": [result_to_dict(r) for r in trials.results],
    }


def _trialset_from_dict(data: dict[str, Any]) -> TrialSet:
    if data.get("format") != TRIALSET_FORMAT:
        raise PersistenceError(
            f"unknown trialset format {data.get('format')!r}"
        )
    config_data = dict(data["config"])
    config_data["snapshot_ticks"] = tuple(config_data.get("snapshot_ticks", ()))
    return TrialSet(
        config=SimulationConfig(**config_data),
        results=[result_from_dict(r) for r in data["results"]],
    )


def load_trialset(path: str | Path) -> TrialSet:
    return _trialset_from_dict(json.loads(Path(path).read_text()))


def save_sweep(trialsets: list[TrialSet], path: str | Path) -> Path:
    """Persist a parameter sweep (one TrialSet per point, one document).

    The document is byte-deterministic for a given sweep: re-running the
    same sweep (cached or not) and saving it again produces identical
    bytes, which is what ``make sweep-resume-check`` asserts.
    """
    path = Path(path)
    payload = {
        "format": SWEEP_FORMAT,
        "points": [_trialset_to_dict(ts) for ts in trialsets],
    }
    path.write_text(json.dumps(payload))
    return path


def load_sweep(path: str | Path) -> list[TrialSet]:
    data = json.loads(Path(path).read_text())
    if data.get("format") != SWEEP_FORMAT:
        raise PersistenceError(
            f"unknown sweep format {data.get('format')!r}"
        )
    return [_trialset_from_dict(p) for p in data["points"]]
