"""Workload generation: node identifiers and task keys (§V-A of the paper).

The paper draws node IDs and task keys from SHA-1 of random inputs.  In
the ≤64-bit simulation space a SHA-1 of a random input is exactly a
uniform draw, so we sample uniformly (see DESIGN.md "Substitutions").
Node IDs must be unique (a real DHT rejects a colliding join); task keys
may collide freely (two files can hash near each other).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hashspace.hashing import uniform_ids_array
from repro.hashspace.idspace import IdSpace

__all__ = ["draw_unique_ids", "draw_task_keys", "draw_new_node_id", "ideal_runtime"]


def draw_unique_ids(
    count: int, space: IdSpace, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct uniform identifiers (uint64).

    Collisions are vanishingly rare in a 64-bit space but are handled by
    redrawing, so the function is exact for any space width ≥ 8 bits.
    """
    if count > space.size:
        raise ConfigError(
            f"cannot draw {count} unique ids from a 2**{space.bits} space"
        )
    ids = np.unique(uniform_ids_array(count, space, rng))
    while ids.size < count:
        extra = uniform_ids_array(count - ids.size, space, rng)
        ids = np.unique(np.concatenate((ids, extra)))
    # np.unique sorted the ids; a random permutation restores exchangeable
    # assignment of ids to owners
    return rng.permutation(ids)


def draw_task_keys(
    count: int, space: IdSpace, rng: np.random.Generator
) -> np.ndarray:
    """``count`` uniform task keys (collisions allowed, like real hashes)."""
    return uniform_ids_array(count, space, rng)


def draw_new_node_id(
    space: IdSpace, rng: np.random.Generator, exists
) -> int:
    """Draw a uniform identifier not currently on the ring.

    ``exists`` is a predicate (e.g. ``RingState.id_exists``).  A joining
    node or Sybil must not collide with a live identity.
    """
    for _ in range(64):
        candidate = int(uniform_ids_array(1, space, rng)[0])
        if not exists(candidate):
            return candidate
    raise ConfigError(
        "could not find a free identifier after 64 draws; id space too dense"
    )


def ideal_runtime(n_tasks: int, initial_capacity: int) -> float:
    """The paper's ideal runtime: tasks split evenly over the initial
    network and consumed with no churn or Sybils.

    For the homogeneous one-task-per-tick default this is
    ``n_tasks / n_nodes`` (e.g. 100,000 tasks on 1,000 nodes → 100 ticks).
    For heterogeneous strength-based consumption we use the aggregate
    initial capacity per tick (see DESIGN.md "Interpretation decisions").
    """
    if initial_capacity <= 0:
        raise ConfigError("initial capacity must be positive")
    return n_tasks / initial_capacity
