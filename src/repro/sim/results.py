"""Result containers for single runs and multi-trial aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.metrics.histograms import Histogram
from repro.metrics.runtime import FactorSummary, summarize_factors
from repro.metrics.timeseries import TickSeries
from repro.config import SimulationConfig

__all__ = ["SimulationResult", "TrialSet"]


@dataclass
class SimulationResult:
    """Everything measured in one simulated computation.

    Attributes
    ----------
    config:
        The exact configuration that produced this run (provenance).
    runtime_ticks:
        Ticks until the last task finished (== ``max_ticks`` if aborted).
    ideal_ticks:
        The paper's ideal runtime for this configuration.
    completed:
        False when the run hit the ``max_ticks`` safety cap.
    snapshots:
        Workload histograms at the configured ``snapshot_ticks``.
    timeseries:
        Per-tick series (only populated when ``collect_timeseries``).
    counters:
        Event totals: sybils created/retired, churn joins/leaves,
        strategy messages, tasks acquired by Sybils, decision rounds;
        with failure injection also crashes, tasks_lost, and
        recovered_from_backup.
    final_loads:
        Remaining per-owner workload at the end (all zeros if completed).
    termination_reason:
        Why an incomplete run stopped: ``"max_ticks"`` (truncated),
        ``"data_loss"`` (crashes destroyed tasks; the surviving work
        finished), ``"ring_empty"`` (churn/crashes removed the last
        node).  None for completed runs.
    total_injected:
        Tasks ever submitted (initial load plus streaming arrivals).
    n_survivors:
        In-network physical nodes when the run ended.
    adversary:
        Attack/defense summary (captured keys, stranded tasks, detection
        precision/recall — see docs/adversarial.md) when the run had an
        enabled :class:`~repro.config.AdversaryModel`; None otherwise.
    """

    config: SimulationConfig
    runtime_ticks: int
    ideal_ticks: float
    completed: bool
    total_consumed: int
    snapshots: list[Histogram] = field(default_factory=list)
    timeseries: TickSeries | None = None
    counters: dict[str, int] = field(default_factory=dict)
    final_loads: np.ndarray | None = None
    termination_reason: str | None = None
    total_injected: int | None = None
    n_survivors: int | None = None
    adversary: dict[str, Any] | None = None

    @property
    def runtime_factor(self) -> float:
        return self.runtime_ticks / self.ideal_ticks

    @property
    def finished(self) -> bool:
        """Whether the run ran to a natural end (alias of ``completed``
        for runs without data loss; False for any early termination)."""
        return self.completed

    @property
    def tasks_lost(self) -> int:
        """Tasks destroyed by crash-stop failures."""
        return int(self.counters.get("tasks_lost", 0))

    @property
    def completed_fraction(self) -> float:
        """Share of injected work that actually ran to completion."""
        injected = self.total_injected
        if injected is None:
            injected = self.total_consumed + self.tasks_lost
        return self.total_consumed / injected if injected else 1.0

    @property
    def completed_work_factor(self) -> float:
        """Runtime factor over *completed* work.

        For a lossy run the plain :attr:`runtime_factor` flatters the
        network: losing tasks shrinks the workload, so the run "ends"
        sooner.  This normalizes the ideal to the work that was actually
        done — a run that consumed half the submitted tasks in the
        nominal ideal time scores 2.0, not 1.0.
        """
        frac = self.completed_fraction
        if frac == 0.0:
            return float("inf")
        return self.runtime_ticks / (self.ideal_ticks * frac)

    def snapshot_at(self, tick: int) -> Histogram:
        for snap in self.snapshots:
            if snap.tick == tick:
                return snap
        raise KeyError(f"no snapshot recorded at tick {tick}")

    def summary(self) -> dict[str, Any]:
        return {
            "strategy": self.config.strategy,
            "n_nodes": self.config.n_nodes,
            "n_tasks": self.config.n_tasks,
            "runtime_ticks": self.runtime_ticks,
            "ideal_ticks": self.ideal_ticks,
            "runtime_factor": self.runtime_factor,
            "completed": self.completed,
            "termination_reason": self.termination_reason,
            **{f"n_{k}": v for k, v in sorted(self.counters.items())},
        }


@dataclass
class TrialSet:
    """Aggregate of several independent trials of one configuration."""

    config: SimulationConfig
    results: list[SimulationResult]

    @property
    def n_trials(self) -> int:
        return len(self.results)

    @property
    def factors(self) -> np.ndarray:
        return np.array([r.runtime_factor for r in self.results])

    def factor_summary(self) -> FactorSummary:
        return summarize_factors(self.factors)

    @property
    def mean_factor(self) -> float:
        return float(self.factors.mean())

    def factor_ci(self, confidence: float = 0.95) -> tuple[float, float, float]:
        """(mean, lower, upper) CI of the runtime factor across trials."""
        from repro.metrics.stats_tests import mean_ci

        return mean_ci(self.factors, confidence)

    def compare_with(self, other: "TrialSet") -> dict[str, Any]:
        """Statistical comparison against another TrialSet (Welch t)."""
        from repro.metrics.stats_tests import compare_factors

        return compare_factors(self.factors, other.factors)

    @property
    def n_truncated(self) -> int:
        """Trials that hit ``max_ticks`` without finishing.

        Their runtime factors understate the truth (the run was cut off,
        not done), so any aggregate containing them deserves a flag.
        Results persisted before termination reasons existed carry
        ``termination_reason=None``; an incomplete one of those can only
        be a truncation.
        """
        return sum(
            1
            for r in self.results
            if not r.completed
            and r.termination_reason in (None, "max_ticks")
        )

    @property
    def n_data_loss(self) -> int:
        """Trials that lost tasks to crashes or ring death."""
        return sum(
            1
            for r in self.results
            if r.tasks_lost > 0
            or r.termination_reason in ("data_loss", "ring_empty")
        )

    @property
    def mean_completed_work_factor(self) -> float:
        return float(
            np.mean([r.completed_work_factor for r in self.results])
        )

    def counter_means(self) -> dict[str, float]:
        keys: set[str] = set()
        for r in self.results:
            keys.update(r.counters)
        return {
            k: float(np.mean([r.counters.get(k, 0) for r in self.results]))
            for k in sorted(keys)
        }
