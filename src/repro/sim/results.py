"""Result containers for single runs and multi-trial aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.histograms import Histogram
from repro.metrics.runtime import FactorSummary, summarize_factors
from repro.metrics.timeseries import TickSeries
from repro.config import SimulationConfig

__all__ = ["SimulationResult", "TrialSet"]


@dataclass
class SimulationResult:
    """Everything measured in one simulated computation.

    Attributes
    ----------
    config:
        The exact configuration that produced this run (provenance).
    runtime_ticks:
        Ticks until the last task finished (== ``max_ticks`` if aborted).
    ideal_ticks:
        The paper's ideal runtime for this configuration.
    completed:
        False when the run hit the ``max_ticks`` safety cap.
    snapshots:
        Workload histograms at the configured ``snapshot_ticks``.
    timeseries:
        Per-tick series (only populated when ``collect_timeseries``).
    counters:
        Event totals: sybils created/retired, churn joins/leaves,
        strategy messages, tasks acquired by Sybils, decision rounds.
    final_loads:
        Remaining per-owner workload at the end (all zeros if completed).
    """

    config: SimulationConfig
    runtime_ticks: int
    ideal_ticks: float
    completed: bool
    total_consumed: int
    snapshots: list[Histogram] = field(default_factory=list)
    timeseries: TickSeries | None = None
    counters: dict[str, int] = field(default_factory=dict)
    final_loads: np.ndarray | None = None

    @property
    def runtime_factor(self) -> float:
        return self.runtime_ticks / self.ideal_ticks

    def snapshot_at(self, tick: int) -> Histogram:
        for snap in self.snapshots:
            if snap.tick == tick:
                return snap
        raise KeyError(f"no snapshot recorded at tick {tick}")

    def summary(self) -> dict:
        return {
            "strategy": self.config.strategy,
            "n_nodes": self.config.n_nodes,
            "n_tasks": self.config.n_tasks,
            "runtime_ticks": self.runtime_ticks,
            "ideal_ticks": self.ideal_ticks,
            "runtime_factor": self.runtime_factor,
            "completed": self.completed,
            **{f"n_{k}": v for k, v in sorted(self.counters.items())},
        }


@dataclass
class TrialSet:
    """Aggregate of several independent trials of one configuration."""

    config: SimulationConfig
    results: list[SimulationResult]

    @property
    def n_trials(self) -> int:
        return len(self.results)

    @property
    def factors(self) -> np.ndarray:
        return np.array([r.runtime_factor for r in self.results])

    def factor_summary(self) -> FactorSummary:
        return summarize_factors(self.factors)

    @property
    def mean_factor(self) -> float:
        return float(self.factors.mean())

    def factor_ci(self, confidence: float = 0.95) -> tuple[float, float, float]:
        """(mean, lower, upper) CI of the runtime factor across trials."""
        from repro.metrics.stats_tests import mean_ci

        return mean_ci(self.factors, confidence)

    def compare_with(self, other: "TrialSet") -> dict:
        """Statistical comparison against another TrialSet (Welch t)."""
        from repro.metrics.stats_tests import compare_factors

        return compare_factors(self.factors, other.factors)

    def counter_means(self) -> dict[str, float]:
        keys: set[str] = set()
        for r in self.results:
            keys.update(r.counters)
        return {
            k: float(np.mean([r.counters.get(k, 0) for r in self.results]))
            for k in sorted(keys)
        }
