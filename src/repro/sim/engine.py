"""The tick engine: the paper's simulation loop (§V).

One **tick** is "the amount of time it takes a node to complete one task
... and perform the appropriate maintenance" — maintenance is assumed
free and instantaneous (the active/aggressive ChordReduce model), so the
loop reduces to, per tick:

1. **strategy round** (every ``decision_interval`` ticks, starting at the
   first multiple — the paper's "this check occurs every 5 ticks", which
   yields exactly 7 load-balancing operations by the tick-35 snapshots of
   Figures 7–14);
2. **churn**: each in-network node leaves with probability ``churn_rate``
   (tasks flow losslessly to its successor), each waiting node joins with
   the same probability at a random identifier and immediately acquires
   the work in its range (§IV-A);
3. **consumption**: every in-network physical node completes up to its
   per-tick rate of tasks, drawn from its identities' remaining work,
   heaviest identity first;
4. **measurement**: snapshots and time series.

The run ends when no tasks remain; the runtime in ticks and the runtime
factor versus the ideal are the primary outputs (§V-C).

Performance: consumption is fully vectorized.  When no Sybils exist every
owner has exactly one slot and the per-tick cost is two NumPy ops over
the slot arrays; with Sybils the engine consumes over the owner-grouped
CSR layout cached by :meth:`RingState.consumption_groups` using a
backend kernel from :mod:`repro.sim.kernels` (pure NumPy by default, an
optional numba-jitted variant behind ``backend="numba"``) — no per-owner
Python loops at all, and no per-tick sort between structural mutations.
When neither a trace sink nor a real profiler is attached, ``step()``
takes an observer-free path that skips every piece of observability
bookkeeping (no phase contexts, no event dicts); see
``docs/scaling.md``.  :class:`repro.sim.shard.ShardedTickEngine` extends
this engine with multiprocess consumption over shared-memory slabs.
"""

from __future__ import annotations

import numpy as np

from repro import sanitize
from repro.core.registry import make_strategy
from repro.core.strategy import Strategy
from repro.errors import RingEmptyError
from repro.hashspace.idspace import IdSpace
from repro.metrics.histograms import histogram, shared_edges
from repro.metrics.timeseries import TickSeries
from repro.config import SimulationConfig
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.trace import TraceSink
from repro.sim.adversary import AdversaryPlane
from repro.sim.kernels import fast_kernel, grouped_kernel, resolve_backend
from repro.sim.owners import OwnerRegistry
from repro.sim.results import SimulationResult
from repro.sim.state import RingState
from repro.sim.view import SimView
from repro.sim.keydist import generate_task_keys
from repro.sim.workload import (
    draw_new_node_id,
    draw_unique_ids,
    ideal_runtime,
)
from repro.util.rng import make_rng

__all__ = ["TickEngine", "run_simulation"]


class TickEngine:
    """Drives one simulated computation to completion.

    Build with a :class:`SimulationConfig` (plus optionally a pre-built
    strategy); call :meth:`run` for the full loop or :meth:`step` to
    advance tick by tick (examples and tests use stepping).
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        strategy: Strategy | None = None,
        rng: np.random.Generator | None = None,
        trace: TraceSink | None = None,
        profiler: Profiler | None = None,
        backend: str | None = None,
    ):
        self.config = config
        self.trace = trace
        # both trace and profiler are pure observers: attaching them
        # must leave seeded results bit-identical (no RNG draws, no
        # state writes) — the observability smoke test pins this
        self.profiler: Profiler = (
            profiler if profiler is not None else NULL_PROFILER
        )
        # observer flags are fixed at construction: when neither sink is
        # real, step() takes the bookkeeping-free path
        self._tracing = trace is not None
        self._observed = self._tracing or self.profiler is not NULL_PROFILER
        self.backend = resolve_backend(backend)
        self._fast_kernel = fast_kernel(self.backend)
        self._grouped_kernel = grouped_kernel(self.backend)
        self.rng = rng if rng is not None else make_rng(config.seed)
        if sanitize.enabled():
            # Every engine claims the single global stream under one
            # label: sequential engines may legitimately share it, but a
            # concurrent consumer (a stress worker, a shard-local phase)
            # claiming the same BitGenerator is stream aliasing.
            sanitize.track_rng(self.rng, "tick-engine")
        self.space = IdSpace(config.bits)
        self.owners = OwnerRegistry(config, self.rng)

        node_ids = draw_unique_ids(config.n_nodes, self.space, self.rng)
        node_owners = np.arange(config.n_nodes, dtype=np.int64)
        self.owners.main_id[: config.n_nodes] = node_ids
        task_keys = generate_task_keys(
            config.n_tasks, config, self.space, self.rng
        )
        self.state = RingState.build(
            self.space, node_ids, node_owners, task_keys, self.rng
        )

        self.strategy = strategy if strategy is not None else make_strategy(config)
        self.view = SimView(
            config, self.state, self.owners, self.rng,
            event_sink=self._emit if self._tracing else None,
        )
        self.strategy.on_attach(self.view)

        self.tick = 0
        self.total_consumed = 0
        self.total_injected = config.n_tasks
        self.ideal_ticks = ideal_runtime(
            max(config.n_tasks, 1), self.owners.initial_capacity()
        ) if config.n_tasks else 0.0
        self.counters: dict[str, int] = {
            "churn_joins": 0,
            "churn_leaves": 0,
            "churn_keys_moved": 0,
            "decision_rounds": 0,
        }
        self.failures = config.failures
        self.tasks_lost = 0
        self.termination_reason: str | None = None
        if self.failures.crash_fraction > 0:
            # failure counters exist only when crashes are possible, so
            # default-config results keep their historical counter set
            self.counters["crashes"] = 0
            self.counters["tasks_lost"] = 0
            self.counters["recovered_from_backup"] = 0
        # the adversary plane exists only when the model is on: disabled
        # runs skip the phase entirely (no RNG draws, no allocations, no
        # extra counters) and stay bit-identical to pre-feature seeds
        self._adversary = (
            AdversaryPlane(self) if config.adversary.enabled else None
        )
        self.timeseries = TickSeries() if config.collect_timeseries else None
        self._snapshot_loads: dict[int, np.ndarray] = {}
        if 0 in config.snapshot_ticks:
            self._record_snapshot(0)

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        return self.state.total_remaining()

    @property
    def arrivals_pending(self) -> bool:
        return (
            self.config.arrival_rate > 0
            and self.tick < self.config.arrival_until
        )

    @property
    def finished(self) -> bool:
        return self.remaining == 0 and not self.arrivals_pending

    @property
    def terminated(self) -> bool:
        """Whether the run stopped early (ring death, unrecoverable loss)."""
        return self.termination_reason is not None

    def network_loads(self) -> np.ndarray:
        """Remaining workload of each *in-network* physical node."""
        loads = self.state.owner_loads(self.owners.n_total)
        return loads[self.owners.in_network]

    def step(self) -> int:
        """Advance one tick; returns the number of tasks consumed.

        Dispatches to one of two equivalent drivers: the observed one
        wraps each phase in profiler contexts, the fast one runs the
        same phases with zero observability bookkeeping.  Both mutate
        identical state in identical order, so seeded trajectories do
        not depend on which driver ran (obs-smoke pins this).
        """
        if self.finished or self.terminated:
            return 0
        self.tick += 1
        if self._observed:
            return self._step_observed()
        return self._step_fast()

    def _step_fast(self) -> int:
        """The no-observer tick: no phase contexts, no event dicts."""
        cfg = self.config
        if cfg.decision_interval and self.tick % cfg.decision_interval == 0:
            self._run_strategy_round()
        if cfg.churn_rate > 0:
            self._apply_churn()
            if self.terminated:
                return 0
        if self._adversary is not None:
            self._adversary.run_tick(self.tick)
        if cfg.arrival_rate > 0 and self.tick <= cfg.arrival_until:
            self._apply_arrivals()
        consumed = self._consume_tick()
        self.total_consumed += consumed
        self._measure(consumed)
        return consumed

    def _step_observed(self) -> int:
        cfg = self.config
        prof = self.profiler
        if cfg.decision_interval and self.tick % cfg.decision_interval == 0:
            with prof.phase("strategy"):
                self._run_strategy_round()
        if cfg.churn_rate > 0:
            with prof.phase("churn"):
                self._apply_churn()
            if self.terminated:
                return 0
        if self._adversary is not None:
            with prof.phase("adversary"):
                self._adversary.run_tick(self.tick)
        if cfg.arrival_rate > 0 and self.tick <= cfg.arrival_until:
            with prof.phase("arrivals"):
                self._apply_arrivals()
        with prof.phase("consumption"):
            consumed = self._consume_tick()
        self.total_consumed += consumed
        with prof.phase("measurement"):
            self._measure(consumed)
        return consumed

    def _measure(self, consumed: int) -> None:
        cfg = self.config
        want_snapshot = self.tick in cfg.snapshot_ticks
        if want_snapshot or self.timeseries is not None:
            # One owner_loads pass serves both measurements.
            loads = self.network_loads()
        if want_snapshot:
            self._snapshot_loads[self.tick] = loads.copy()
        if self.timeseries is not None:
            self.timeseries.append(
                tick=self.tick,
                consumed=consumed,
                remaining=self.remaining,
                n_slots=self.state.n_slots,
                n_in_network=self.owners.n_in_network,
                idle_owners=int((loads == 0).sum()),
            )

    def run(self) -> SimulationResult:
        """Run to completion (or the ``max_ticks`` cap) and package results.

        Runs that can no longer complete — the ring emptied, or crashes
        destroyed tasks — terminate with a structured result
        (``completed=False``, ``termination_reason`` set) instead of
        raising or spinning to ``max_ticks``.
        """
        while (
            not self.finished
            and not self.terminated
            and self.tick < self.config.max_ticks
        ):
            try:
                self.step()
            except RingEmptyError:
                self.termination_reason = "ring_empty"
                break
        return self._build_result()

    # ------------------------------------------------------------------
    # tick phases
    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(self.tick, kind, **fields)

    def _run_strategy_round(self) -> None:
        stats = self.view.begin_round()
        self.strategy.decide(self.view)
        stats.merge_into(self.counters)
        self.counters["decision_rounds"] += 1

    def _apply_churn(self) -> None:
        """One churn phase, batched (see DESIGN.md §5).

        All departures are applied as one virtual-removal pass plus a
        single slab compress; all joins as one partition pass plus a
        single merge splice.  Key movements (and therefore RNG draws)
        replay the sequential per-node order exactly, so seeded runs are
        bit-identical to the historical one-``np.insert``/``np.delete``-
        per-event loop while doing O(n + events) structural work.
        """
        rate = self.config.churn_rate
        rng = self.rng
        cf = self.failures.crash_fraction
        # hoisted flag: per-event _emit calls build a kwargs dict even
        # when no sink is attached, so the no-observer path skips them
        tracing = self._tracing
        # departures: each in-network *honest* node flips a coin (§IV-A);
        # adversarial identities never leave voluntarily.  With no
        # adversaries the honest view is the plain network view, so the
        # RNG draw (and the seeded trajectory) is unchanged.
        net = self.owners.honest_network_indices
        leaving = net[rng.random(net.size) < rate]
        if leaving.size:
            # one vectorized draw, gated on cf > 0 so default configs
            # consume no extra RNG and stay bit-identical
            crashing = (
                rng.random(leaving.size) < cf if cf > 0 else None
            )
            ring_died = False
            removal = self.state.begin_batch_removal(leaving)
            for i, owner in enumerate(leaving):
                owner = int(owner)
                if crashing is not None and crashing[i]:
                    # crash-stop: un-replicated tasks are lost
                    res = removal.crash_owner_guarded(
                        owner, self.failures.replication_factor
                    )
                    if res is None:
                        # the last live node crashed: the ring is dead
                        ring_died = True
                        continue
                    recovered, lost = res
                    self.counters["crashes"] += 1
                    self.counters["churn_leaves"] += 1
                    self.counters["churn_keys_moved"] += recovered
                    self.counters["recovered_from_backup"] += recovered
                    self.counters["tasks_lost"] += lost
                    self.tasks_lost += lost
                    self.owners.leave_network(owner)
                    if tracing:
                        self._emit(
                            "churn_crash", owner=owner,
                            recovered=recovered, lost=lost,
                        )
                    continue
                # never empty the ring: the last identities stay put
                moved = removal.remove_owner_guarded(owner)
                if moved is None:
                    continue
                self.counters["churn_keys_moved"] += moved
                self.owners.leave_network(owner)
                self.counters["churn_leaves"] += 1
                if tracing:
                    self._emit("churn_leave", owner=owner, keys_moved=moved)
            removal.commit()
            if ring_died:
                # everything still on the wreck is unrecoverable
                lost = self.state.total_remaining()
                self.counters["tasks_lost"] += lost
                self.tasks_lost += lost
                self.termination_reason = "ring_empty"
                self._emit("ring_empty", tick=self.tick, tasks_lost=lost)
                return
        # arrivals: each *honest* waiting node flips the same coin.
        # Evicted or crashed adversarial identities are quarantined — they
        # never resurrect through the benign waiting pool.
        waiting = self.owners.honest_waiting_indices
        joining = waiting[rng.random(waiting.size) < rate]
        if joining.size:
            insertion = self.state.begin_batch_insertion()
            for owner in joining:
                owner = int(owner)
                ident = draw_new_node_id(self.space, rng, insertion.id_exists)
                acquired = insertion.add(ident, owner, is_main=True)
                self.counters["churn_keys_moved"] += acquired
                self.owners.join_network(owner, ident)
                self.counters["churn_joins"] += 1
                if tracing:
                    self._emit("churn_join", owner=owner, ident=ident,
                               acquired=acquired)
            insertion.commit()

    def _apply_arrivals(self) -> None:
        """Streaming-arrival extension: new tasks trickle in each tick."""
        count = int(self.rng.poisson(self.config.arrival_rate))
        if count == 0:
            return
        keys = generate_task_keys(count, self.config, self.space, self.rng)
        self.state.add_tasks(keys)
        self.total_injected += count
        if self._tracing:
            self._emit("arrivals", count=count)
        self.counters["tasks_arrived"] = (
            self.counters.get("tasks_arrived", 0) + count
        )

    def _consume_tick(self) -> int:
        state = self.state
        counts = state.counts
        if state.n_slots == 0:
            raise RingEmptyError(
                f"ring became empty at tick {self.tick}",
                tick=self.tick,
                strategy=self.config.strategy,
                churn_rate=self.config.churn_rate,
                crash_fraction=self.failures.crash_fraction,
            )
        rates = self.owners.rate
        if state.n_sybil_slots == 0:
            # FAST PATH: one slot per owner — consume directly per slot.
            consumed = self._fast_kernel(counts, state.owner, rates)
        else:
            consumed = self._consume_multi_slot()
        state.mark_loads_dirty()
        return consumed

    def _consume_multi_slot(self) -> int:
        """Distribute each owner's rate across its identities.

        Heaviest identity first, over the owner-grouped CSR layout
        cached by the state (rebuilt only on structural mutation).  The
        arithmetic lives in :mod:`repro.sim.kernels`; the sharded engine
        overrides this method to run the same kernel on arc chunks in
        worker processes.
        """
        state = self.state
        groups = state.consumption_groups()
        return self._grouped_kernel(
            state.counts,
            self.owners.rate,
            groups.order,
            groups.starts,
            groups.sizes,
            groups.owners,
        )

    # ------------------------------------------------------------------
    # measurement and packaging
    # ------------------------------------------------------------------
    def _record_snapshot(self, tick: int) -> None:
        self._snapshot_loads[tick] = self.network_loads().copy()

    def _build_result(self) -> SimulationResult:
        snapshots = []
        if self._snapshot_loads:
            edges = shared_edges(list(self._snapshot_loads.values()))
            snapshots = [
                histogram(
                    loads,
                    edges,
                    tick=tick,
                    label=self.config.strategy,
                )
                for tick, loads in sorted(self._snapshot_loads.items())
            ]
        ideal = (
            ideal_runtime(self.total_injected, self.owners.initial_capacity())
            if self.total_injected
            else float(max(self.tick, 1))
        )
        self.ideal_ticks = ideal
        reason = self.termination_reason
        if reason is None:
            if self.finished and self.tasks_lost > 0:
                # every surviving task ran, but crashes destroyed some:
                # the computation as submitted can never complete
                reason = "data_loss"
            elif not self.finished:
                reason = "max_ticks"
        completed = (
            self.finished
            and self.tasks_lost == 0
            and self.termination_reason is None
        )
        return SimulationResult(
            config=self.config,
            runtime_ticks=self.tick,
            ideal_ticks=ideal,
            completed=completed,
            total_consumed=self.total_consumed,
            snapshots=snapshots,
            timeseries=self.timeseries,
            counters=dict(self.counters),
            final_loads=self.network_loads().copy(),
            termination_reason=reason,
            total_injected=self.total_injected,
            n_survivors=self.owners.n_in_network,
            adversary=(
                self._adversary.summary()
                if self._adversary is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    def snapshot_loads(self) -> dict[int, np.ndarray]:
        """Raw per-owner load vectors captured at the snapshot ticks."""
        return dict(self._snapshot_loads)


def run_simulation(
    config: SimulationConfig, *, backend: str | None = None
) -> SimulationResult:
    """Convenience wrapper: build an engine from config and run it."""
    return TickEngine(config, backend=backend).run()
