"""Sharded parallel ticking over shared-memory slab views.

:class:`ShardedTickEngine` extends :class:`~repro.sim.engine.TickEngine`
with a consumption phase that fans out across a persistent worker pool.
The live slab arrays are mirrored into ``multiprocessing.shared_memory``
segments; each worker attaches zero-copy NumPy views and runs the same
grouped kernel (:mod:`repro.sim.kernels`) over one contiguous **arc** of
the owner-grouped CSR layout, decrementing disjoint slots of the shared
``counts`` array in place.

Determinism (the non-negotiable)
--------------------------------

Seeded results are bit-identical across shard counts, and identical to
the single-process engine, by construction:

* **Sharding follows owner groups, not raw ring positions.**  The CSR
  grouping (:meth:`RingState.consumption_groups`) is cut into contiguous
  chunks of *whole groups*, so no owner's identities ever straddle a
  shard boundary and each worker's arithmetic equals the sequential
  kernel restricted to its groups.  The grouped kernel is partition-
  invariant: running it on the chunks in any order produces the same
  post-tick ``counts`` as one sequential pass, because chunks touch
  disjoint slots.
* **The cross-shard merge is a fixed-order reduction.**  Per-shard
  consumed totals are combined in ascending shard index (the pool's
  ``map`` preserves submission order), never in completion order.
* **Every RNG-consuming phase stays on the single global stream.**
  Strategy rounds, churn, and arrivals — everything that draws
  randomness or restructures the ring — run sequentially on the trial's
  seeded generator, exactly as in the plain engine; only the RNG-free
  integer arithmetic of consumption is parallelized.
  :func:`shard_seed_streams` derives per-shard child streams from the
  trial seed (the same ``SeedSequence.spawn`` derivation ``run_trials``
  uses per trial) for future shard-local stochastic phases; no current
  phase consumes them, which is precisely why shard count cannot
  perturb a trajectory.

Lifecycle
---------

The pool and the shared segments are created lazily on the first tick
that crosses ``min_parallel_slots`` and live until :meth:`close` (also
invoked by a ``weakref.finalize``, so abandoned engines do not leak
segments).  Segments are sized to the slab's power-of-two capacity and
replaced (new name, workers re-attach) when the ring outgrows them.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Any

# Sanctioned parallelism + shared memory: consumption workers mutate
# disjoint slots and merge in fixed shard order (see module docstring);
# no RNG or wall-clock dependence can enter through this import.
import multiprocessing as mp  # reprolint: disable=R002 (shard worker pool)
from multiprocessing import shared_memory

import numpy as np

from repro import sanitize
from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.sim.engine import TickEngine
from repro.sim.kernels import grouped_kernel

__all__ = [
    "ShardedTickEngine",
    "ShardPlan",
    "plan_shards",
    "shard_seed_streams",
]

_I64 = np.int64

#: Below this many live slots a parallel tick costs more in IPC than it
#: saves; the sequential kernel runs instead (tests shrink this to force
#: the parallel path on tiny rings).
DEFAULT_MIN_PARALLEL_SLOTS = 65536


def shard_seed_streams(
    seed: int | np.random.SeedSequence, n_shards: int
) -> list[np.random.SeedSequence]:
    """Derive one child seed stream per shard from a trial seed.

    Mirrors the per-trial ``SeedSequence.spawn`` derivation in
    :func:`repro.sim.trials.run_trials`: children are independent and a
    function of (trial seed, shard index) only.  Reserved for future
    shard-local stochastic phases — today every random phase runs on the
    global stream so that shard count cannot change a trajectory.
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return seq.spawn(n_shards)


class ShardPlan:
    """Contiguous whole-group chunks of a CSR grouping, one per shard.

    ``bounds[k] : bounds[k + 1]`` is shard ``k``'s group range;
    ``el_bounds`` holds the matching element (slot-entry) offsets into
    the CSR ``order`` array.  Chunks are balanced by slot count, so a
    few giant Sybil groups cannot starve the other workers.
    """

    __slots__ = ("bounds", "el_bounds")

    def __init__(self, bounds: np.ndarray, el_bounds: np.ndarray) -> None:
        self.bounds = bounds
        self.el_bounds = el_bounds

    @property
    def n_shards(self) -> int:
        return self.bounds.size - 1

    def chunks(self) -> list[tuple[int, int, int, int]]:
        """``(g_lo, g_hi, el_lo, el_hi)`` per shard (empty ones kept:
        the fixed-order merge wants one result slot per shard index)."""
        return [
            (
                int(self.bounds[k]),
                int(self.bounds[k + 1]),
                int(self.el_bounds[k]),
                int(self.el_bounds[k + 1]),
            )
            for k in range(self.n_shards)
        ]


def plan_shards(
    starts: np.ndarray, n_elements: int, n_shards: int
) -> ShardPlan:
    """Partition ``n_groups`` CSR groups into ``n_shards`` contiguous
    chunks with roughly equal slot counts.

    ``starts[g]`` is group ``g``'s first element offset, so it doubles
    as the cumulative-slot-count vector; splitting at the groups nearest
    the ideal element quantiles balances work without ever splitting a
    group.
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    n_groups = starts.size
    targets = (n_elements * np.arange(1, n_shards, dtype=_I64)) // n_shards
    cuts = np.searchsorted(starts, targets, side="left").astype(_I64)
    bounds = np.concatenate(([0], cuts, [n_groups])).astype(_I64)
    np.maximum.accumulate(bounds, out=bounds)  # monotone under tiny rings
    el_bounds = np.append(starts, _I64(n_elements))[bounds]
    return ShardPlan(bounds, el_bounds)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: name -> (SharedMemory, ndarray view); keeps attachments alive across
#: ticks so re-attachment cost is paid once per segment generation
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _attach(name: str, size: int, dtype: np.dtype) -> np.ndarray:
    entry = _ATTACHED.get(name)
    if entry is None:
        if len(_ATTACHED) > 32:  # stale generations after slab growth
            for shm, _ in _ATTACHED.values():
                shm.close()
            # Per-process attachment cache: fork workers never share this
            # dict (copy-on-write isolates each worker's copy), so the
            # mutation R008 sees cannot race across processes.
            _ATTACHED.clear()  # reprolint: disable=R008 (per-process cache)
        shm = shared_memory.SharedMemory(name=name)
        view = np.frombuffer(shm.buf, dtype=dtype)
        _ATTACHED[name] = (shm, view)  # reprolint: disable=R008 (per-process cache)
    else:
        view = entry[1]
    return view[:size]


def _consume_shard(task: tuple) -> int:
    """Run the grouped kernel over one CSR chunk (executes in a worker).

    Mutates the shared ``counts`` segment in place on this shard's
    (disjoint) slot set and returns the shard's consumed total.
    """
    if sanitize.enabled():
        # A Generator in the task tuple would be duplicated by pickling
        # (parent and worker then draw identical numbers); tasks carry
        # only names, sizes, and offsets.
        sanitize.forbid_generators(task, "shard worker task")
    (
        backend,
        counts_name,
        n_slots,
        rates_name,
        n_rates,
        order_name,
        starts_name,
        sizes_name,
        owners_name,
        n_groups,
        g_lo,
        g_hi,
        el_lo,
        el_hi,
    ) = task
    if g_hi <= g_lo:
        return 0
    counts = _attach(counts_name, n_slots, _I64)
    rates = _attach(rates_name, n_rates, _I64)
    order = _attach(order_name, n_slots, _I64)
    starts = _attach(starts_name, n_groups, _I64)
    sizes = _attach(sizes_name, n_groups, _I64)
    owners = _attach(owners_name, n_groups, _I64)
    kernel = grouped_kernel(backend)
    return kernel(
        counts,
        rates,
        order[el_lo:el_hi],
        starts[g_lo:g_hi] - _I64(el_lo),
        sizes[g_lo:g_hi],
        owners[g_lo:g_hi],
    )


# ----------------------------------------------------------------------
# engine side
# ----------------------------------------------------------------------
class _ShmMirror:
    """A shared-memory mirror of one int64 array, grown by replacement."""

    __slots__ = ("shm", "capacity")

    def __init__(self) -> None:
        self.shm: shared_memory.SharedMemory | None = None
        self.capacity = 0

    def ensure(self, n: int) -> None:
        if n <= self.capacity and self.shm is not None:
            return
        self.release()
        cap = max(8, 1 << max(0, (n - 1).bit_length()))
        self.shm = shared_memory.SharedMemory(
            create=True, size=cap * 8
        )
        self.capacity = cap

    def write(self, arr: np.ndarray) -> None:
        self.ensure(arr.size)
        assert self.shm is not None
        view = np.frombuffer(self.shm.buf, dtype=_I64)
        view[: arr.size] = arr

    def view(self, n: int) -> np.ndarray:
        assert self.shm is not None
        return np.frombuffer(self.shm.buf, dtype=_I64)[:n]

    @property
    def name(self) -> str:
        assert self.shm is not None
        return self.shm.name

    def release(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # already unlinked at interpreter exit
                pass
            self.shm = None
            self.capacity = 0


def _release_resources(
    pool: ProcessPoolExecutor | None, mirrors: "tuple[_ShmMirror, ...]"
) -> None:
    """Module-level so ``weakref.finalize`` holds no engine reference."""
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    for m in mirrors:
        m.release()


class ShardedTickEngine(TickEngine):
    """A :class:`TickEngine` whose consumption phase runs on ``shards``
    worker processes over shared-memory slab views.

    ``shards=1`` degenerates to the parent engine (no pool, no
    segments).  All other phases — and therefore every RNG draw — are
    inherited unchanged, which is what makes seeded results bit-identical
    across shard counts (see the module docstring).
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        shards: int = 1,
        min_parallel_slots: int = DEFAULT_MIN_PARALLEL_SLOTS,
        **kwargs: Any,
    ) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        super().__init__(config, **kwargs)
        self.shards = shards
        self.min_parallel_slots = min_parallel_slots
        self._pool: ProcessPoolExecutor | None = None
        self._counts_shm = _ShmMirror()
        self._rates_shm = _ShmMirror()
        self._csr_shm = tuple(_ShmMirror() for _ in range(4))
        self._mirrored_groups: object | None = None
        self._plan: ShardPlan | None = None
        self._finalizer = weakref.finalize(
            self,
            _release_resources,
            None,  # replaced once the pool exists
            (self._counts_shm, self._rates_shm, *self._csr_shm),
        )

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # fork keeps worker start cheap and inherits sys.path; fall
            # back to the default (spawn) where fork is unavailable
            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self.shards, mp_context=ctx
            )
            self._finalizer.detach()
            self._finalizer = weakref.finalize(
                self,
                _release_resources,
                self._pool,
                (self._counts_shm, self._rates_shm, *self._csr_shm),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool and unlink the shared segments."""
        self._finalizer()
        self._pool = None
        self._mirrored_groups = None
        self._plan = None

    def __enter__(self) -> "ShardedTickEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _consume_multi_slot(self) -> int:
        state = self.state
        if self.shards <= 1 or state.n_slots < self.min_parallel_slots:
            return super()._consume_multi_slot()
        return self._consume_sharded()

    def _consume_sharded(self) -> int:
        state = self.state
        n = state.n_slots
        groups = state.consumption_groups()
        if groups is not self._mirrored_groups:
            # new structural epoch: re-mirror the CSR and re-plan arcs
            for mirror, arr in zip(
                self._csr_shm,
                (groups.order, groups.starts, groups.sizes, groups.owners),
            ):
                mirror.write(arr)
            self._plan = plan_shards(groups.starts, n, self.shards)
            self._mirrored_groups = groups
        rates = self.owners.rate
        if self._rates_shm.shm is None:  # static after init: write once
            self._rates_shm.write(rates.astype(_I64, copy=False))
        self._counts_shm.write(state.counts)

        plan = self._plan
        assert plan is not None
        order_m, starts_m, sizes_m, owners_m = self._csr_shm
        n_groups = groups.starts.size
        tasks = [
            (
                self.backend,
                self._counts_shm.name,
                n,
                self._rates_shm.name,
                rates.size,
                order_m.name,
                starts_m.name,
                sizes_m.name,
                owners_m.name,
                n_groups,
                g_lo,
                g_hi,
                el_lo,
                el_hi,
            )
            for g_lo, g_hi, el_lo, el_hi in plan.chunks()
        ]
        if sanitize.enabled():
            sanitize.check_shard_plan(
                plan.el_bounds, groups.starts, groups.order, n
            )
        pool = self._ensure_pool()
        # fixed-order merge: map() yields results in shard-index order.
        # The guard pins the phase's RNG-free contract: shard count can
        # only leave trajectories untouched if no draw happens here.
        with sanitize.maybe_guard(self.rng, "sharded consumption"):
            consumed = sum(pool.map(_consume_shard, tasks))
        state.counts[:] = self._counts_shm.view(n)
        return int(consumed)
