"""Content-addressed cache of completed trials.

Every table and figure in the paper is "the average of 100 trials", and
trials are pure functions of ``(config, seed path)`` — so a finished
:class:`~repro.sim.results.SimulationResult` never needs to be computed
twice.  This module keys each trial by a SHA-256 over

* the **canonical config** (every field of :class:`SimulationConfig`,
  JSON-serialized with sorted keys),
* the **trial seed path** (the root entropy and spawn key of the trial's
  ``numpy.random.SeedSequence`` child — trial *i* of seed *s* is always
  ``SeedSequence(s).spawn(n)[i]``), and
* the **code-schema version** — :data:`CACHE_SCHEMA_VERSION` plus the
  persistence format tag.  Bump :data:`CACHE_SCHEMA_VERSION` whenever a
  change alters simulation semantics for an unchanged config (engine
  behavior, RNG consumption order, result packaging); stale entries then
  simply stop matching.

Results are stored one JSON file per trial under
``<cache root>/trials/<key[:2]>/<key>.json`` via
:mod:`repro.sim.persistence`, written atomically (temp file + rename) so
a SIGKILL mid-write never leaves a truncated entry.  The cache root is
``~/.cache/repro`` (or ``$XDG_CACHE_HOME/repro``), overridable with
``REPRO_CACHE_DIR``; set ``REPRO_CACHE=0`` to disable caching entirely.

Because keys include the full seed path, an interrupted sweep resumes
for free: re-running it hits the cache for every completed trial and
computes only the missing ones, bit-identically (same seeds, same
results).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import SimulationConfig
from repro.sim.persistence import (
    RESULT_FORMAT,
    result_from_dict,
    result_to_dict,
)
from repro.sim.results import SimulationResult

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "STALE_TMP_SECONDS",
    "TrialCache",
    "cache_enabled",
    "default_cache_dir",
    "get_cache",
    "trial_key",
]

#: Bump when a code change makes identical configs produce different
#: results (see module docstring); this invalidates every cached trial.
#: 2: failure-model fields joined the config and the result payload.
#: 3: adversary model joined the config and the result payload.
CACHE_SCHEMA_VERSION = 3


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``,
    else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled() -> bool:
    """Whether trial caching is on (``REPRO_CACHE=0`` turns it off)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def _canonical_config(config: SimulationConfig) -> str:
    data = {}
    for key, value in config.as_dict().items():
        if isinstance(value, tuple):
            value = list(value)
        data[key] = value
    return json.dumps(data, sort_keys=True, default=repr)


def trial_key(
    config: SimulationConfig, seed_seq: np.random.SeedSequence
) -> str:
    """Content address of one trial (hex SHA-256)."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "format": RESULT_FORMAT,
            "config": _canonical_config(config),
            "entropy": str(seed_seq.entropy),
            "spawn_key": [int(k) for k in seed_seq.spawn_key],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Orphaned ``.tmp-*`` write files older than this (seconds) are swept
#: on cache construction.  Generous on purpose: a temp file younger than
#: this may belong to a store() in flight in another process.
STALE_TMP_SECONDS = 3600.0


class TrialCache:
    """File-backed store of completed trials, addressed by content key.

    Safe for concurrent writers (the fabric settles trials from many
    processes at once): stores are atomic (temp file + rename), readers
    never see the ``.tmp-*`` staging files, and maintenance tolerates
    entries vanishing mid-scan.
    """

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove orphaned ``.tmp-*`` files left by a SIGKILL mid-store.

        ``store()`` cleans its temp file on every *exception*, but a
        SIGKILL between ``mkstemp`` and ``os.replace`` leaks it; without
        this sweep they accumulate forever.  Only files older than
        :data:`STALE_TMP_SECONDS` go — a younger one may be another
        process's write in flight.
        """
        if not self.trials_dir.is_dir():
            return
        # wall-clock file age is maintenance metadata, never sim state
        now = time.time()  # reprolint: disable=R002 (cache maintenance)
        for tmp in self.trials_dir.glob("*/.tmp-*"):
            try:
                if now - tmp.stat().st_mtime > STALE_TMP_SECONDS:
                    tmp.unlink()
            except (FileNotFoundError, OSError):
                continue

    @property
    def trials_dir(self) -> Path:
        return self.root / "trials"

    def path_for(self, key: str) -> Path:
        return self.trials_dir / key[:2] / f"{key}.json"

    def load(self, key: str) -> SimulationResult | None:
        """Return the cached result for ``key``, or None.

        Unreadable or corrupted entries (e.g. a torn write from a kernel
        crash) are treated as misses and removed.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            result = result_from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> Path:
        """Persist a result atomically (temp file + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result_to_dict(result, include_final_loads=True))
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- maintenance ----------------------------------------------------
    def entries(self) -> list[Path]:
        """Committed cache entries — ``.tmp-*`` staging files excluded.

        ``mkstemp`` names end in ``.json`` too, so the bare ``*/*.json``
        glob this used to be counted half-written temp files in
        ``size_bytes()`` and deleted them out from under a concurrent
        ``store()`` in ``clear()``.
        """
        if not self.trials_dir.is_dir():
            return []
        return sorted(
            p
            for p in self.trials_dir.glob("*/*.json")
            if not p.name.startswith(".tmp-")
        )

    def size_bytes(self) -> int:
        total = 0
        for p in self.entries():
            try:
                total += p.stat().st_size
            except FileNotFoundError:
                # unlinked by a concurrent clear()/load() between the
                # glob and the stat — it no longer occupies bytes
                continue
        return total

    def clear(self) -> int:
        """Delete every cached trial; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


def get_cache() -> TrialCache | None:
    """The default cache honoring the environment, or None if disabled."""
    if not cache_enabled():
        return None
    return TrialCache()
