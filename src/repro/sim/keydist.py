"""Non-uniform task-key distributions (extension beyond the paper).

The paper keys every task with SHA-1 of its name, giving uniform keys.
Real corpora are rarely uniform at the *application* level: chunks of
the same file hash to unrelated places, but tasks derived from shared
inputs (replicas, hot datasets, range-partitioned keys) can concentrate.
Two skew models stress the strategies:

``clustered``
    Keys gather around ``n_clusters`` uniformly placed centers with a
    Gaussian spread of ``cluster_spread`` of the ring per cluster, all
    clusters equally likely — a "range-partitioned inputs" workload.
``zipf``
    Same centers, but the cluster choice follows a Zipf law with the
    configured exponent — a few red-hot regions hold most of the work.

Both keep keys valid uniform-independent *within* their neighbourhood,
so responsibility arithmetic is unchanged; only the spatial density of
work differs.  The ``ext_skew`` experiment measures how much worse the
baseline gets (much) and which strategies still rescue it.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationConfig
from repro.hashspace.idspace import IdSpace
from repro.sim.workload import draw_task_keys

__all__ = ["generate_task_keys", "clustered_keys", "zipf_cluster_keys"]

_U64 = np.uint64


def _cluster_centers(
    n_clusters: int, space: IdSpace, rng: np.random.Generator
) -> np.ndarray:
    return draw_task_keys(n_clusters, space, rng)


def _scatter_around(
    centers: np.ndarray,
    assignment: np.ndarray,
    spread: float,
    space: IdSpace,
    rng: np.random.Generator,
) -> np.ndarray:
    """Gaussian jitter around each key's assigned center, wrapping."""
    sigma = spread * space.size
    offsets = rng.normal(0.0, sigma, size=assignment.size)
    # signed offsets as two's-complement uint64: uint64 addition wraps
    # mod 2**64, and masking reduces that to mod 2**bits exactly
    off_u = np.clip(offsets, -(2.0**62), 2.0**62).astype(np.int64)
    keys = centers[assignment] + off_u.astype(_U64)
    return keys & _U64(space.max_id)


def clustered_keys(
    count: int,
    space: IdSpace,
    rng: np.random.Generator,
    *,
    n_clusters: int = 8,
    spread: float = 0.01,
) -> np.ndarray:
    """Keys clustered around uniformly placed centers (equal weights)."""
    centers = _cluster_centers(n_clusters, space, rng)
    assignment = rng.integers(0, n_clusters, size=count)
    return _scatter_around(centers, assignment, spread, space, rng)


def zipf_cluster_keys(
    count: int,
    space: IdSpace,
    rng: np.random.Generator,
    *,
    n_clusters: int = 8,
    spread: float = 0.01,
    exponent: float = 1.2,
) -> np.ndarray:
    """Keys clustered with Zipf-weighted cluster popularity."""
    centers = _cluster_centers(n_clusters, space, rng)
    weights = 1.0 / np.arange(1, n_clusters + 1, dtype=float) ** exponent
    weights /= weights.sum()
    assignment = rng.choice(n_clusters, size=count, p=weights)
    return _scatter_around(centers, assignment, spread, space, rng)


def generate_task_keys(
    count: int,
    config: SimulationConfig,
    space: IdSpace,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` task keys per the config's key distribution."""
    if config.key_distribution == "uniform":
        return draw_task_keys(count, space, rng)
    if config.key_distribution == "clustered":
        return clustered_keys(
            count,
            space,
            rng,
            n_clusters=config.n_clusters,
            spread=config.cluster_spread,
        )
    return zipf_cluster_keys(
        count,
        space,
        rng,
        n_clusters=config.n_clusters,
        spread=config.cluster_spread,
        exponent=config.zipf_exponent,
    )
