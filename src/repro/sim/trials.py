"""Multi-trial execution: reproducible seeds, fault tolerance, caching.

Every table in the paper is "the average of 100 trials".  This module
is the *semantic* surface for running N independent trials of a
configuration — seeding rules, failure records, run statistics — while
the actual dispatch lives in :mod:`repro.fabric`: :func:`run_trials`
and :func:`sweep` build a trial grid and hand it to a
:class:`~repro.fabric.broker.Broker` (single-process by default), so
every caller gains the fabric's incremental caching, retry machinery and
remote-worker attach path without signature changes.

Seeding: trial *i* of a config with seed *s* always uses the *i*-th child
of ``SeedSequence(s)``, so results are bit-reproducible regardless of
``n_jobs``, caching, retries, interruption, or which fabric worker ran
the trial.

Fault tolerance: trials are dispatched individually (not ``Pool.map``),
so one crashed or raising worker cannot discard its finished siblings.
Failed trials are retried with the same seed up to ``retries`` times;
what still fails raises a structured :class:`~repro.errors.TrialError`
naming each trial index and seed path.  Completed results are persisted
through :mod:`repro.sim.cache` as they arrive, so a killed run resumes
at the first missing trial.

Environment knobs
-----------------
``REPRO_N_JOBS``
    Overrides :func:`default_n_jobs` (``n_jobs=0``) — pin worker counts
    on CI or laptops.
``REPRO_CACHE`` / ``REPRO_CACHE_DIR``
    Disable / relocate the trial cache (see :mod:`repro.sim.cache`).
``REPRO_TRIAL_DELAY_MS``
    Testing hook: sleep this long inside each trial, so interruption
    tests can reliably SIGKILL a run midway.
"""

from __future__ import annotations

import functools
import os
import threading
from dataclasses import dataclass, replace
from hashlib import sha256
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.config import SimulationConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import TraceSink
from repro.sim.cache import TrialCache
from repro.sim.engine import TickEngine
from repro.sim.results import SimulationResult, TrialSet
from repro.sim.shard import ShardedTickEngine
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.queue import GridPoint

__all__ = [
    "run_trial",
    "run_trials",
    "sweep",
    "sweep_grid",
    "default_n_jobs",
    "make_trial_fn",
    "TrialFailure",
    "RunStats",
    "reset_run_stats",
    "run_stats",
]

TrialFn = Callable[
    [SimulationConfig, "np.random.SeedSequence | None"], SimulationResult
]


def run_trial(
    config: SimulationConfig,
    seed_seq: np.random.SeedSequence | None = None,
    *,
    trace: "TraceSink | None" = None,
    profiler: "Profiler | None" = None,
    backend: str | None = None,
    shards: int = 1,
    min_parallel_slots: int | None = None,
) -> SimulationResult:
    """Run one trial; ``seed_seq`` overrides the config seed when given.

    ``trace`` and ``profiler`` attach observability side channels to the
    engine (see :mod:`repro.obs`); both leave the seeded result
    bit-identical.  They are keyword-only and unpicklable-by-design
    sinks stay out of multi-process paths: :func:`run_trials` always
    calls this without them.

    ``backend`` and ``shards`` are *execution* parameters (see
    :mod:`repro.sim.kernels` / :mod:`repro.sim.shard`): they change how
    fast the trial runs, never its seeded result, and are deliberately
    not part of :class:`SimulationConfig` so the trial cache keys stay
    purely semantic — a result cached under ``shards=4`` is bit-valid
    for a ``shards=1`` re-run and vice versa.
    """
    rng = make_rng(seed_seq) if seed_seq is not None else None
    if shards > 1:
        kwargs = {}
        if min_parallel_slots is not None:
            kwargs["min_parallel_slots"] = min_parallel_slots
        with ShardedTickEngine(
            config, shards=shards, rng=rng, trace=trace,
            profiler=profiler, backend=backend, **kwargs,
        ) as engine:
            return engine.run()
    eng = TickEngine(
        config, rng=rng, trace=trace, profiler=profiler, backend=backend
    )
    return eng.run()


def make_trial_fn(
    *,
    backend: str | None = None,
    shards: int = 1,
    min_parallel_slots: int | None = None,
) -> TrialFn:
    """A picklable :data:`TrialFn` pinning execution parameters.

    ``functools.partial`` over the module-level :func:`run_trial`
    survives the spawn-context pickling that ``run_trials(n_jobs > 1)``
    requires, unlike a closure; the CLI uses this to honor
    ``--backend`` / ``--shards`` on multi-process trial runs and
    ``repro fabric worker``.
    """
    if backend is None and shards == 1 and min_parallel_slots is None:
        return run_trial
    return functools.partial(
        run_trial,
        backend=backend,
        shards=shards,
        min_parallel_slots=min_parallel_slots,
    )


def default_n_jobs() -> int:
    """A reasonable process count: logical CPUs, capped at 8.

    ``os.cpu_count()`` reports *logical* CPUs (hyperthreads included);
    trials are CPU-bound so more workers than that never helps.  Set
    ``REPRO_N_JOBS`` to pin the count explicitly (CI, shared machines).
    """
    override = os.environ.get("REPRO_N_JOBS")
    if override:
        try:
            n = int(override)
        except ValueError:
            raise ConfigError(
                f"REPRO_N_JOBS must be an integer, got {override!r}"
            ) from None
        if n < 1:
            raise ConfigError(f"REPRO_N_JOBS must be >= 1, got {n}")
        return n
    return max(1, min(8, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# failure records and run statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialFailure:
    """What went wrong with one trial, with enough context to replay it.

    ``seed_entropy`` and ``spawn_key`` pin the exact
    ``numpy.random.SeedSequence`` child, so
    ``run_trial(config, SeedSequence(entropy, spawn_key=spawn_key))``
    reproduces the failure deterministically.
    """

    trial_index: int
    seed_entropy: int | None
    spawn_key: tuple[int, ...]
    attempts: int
    error: str

    def __str__(self) -> str:
        return (
            f"trial {self.trial_index} (entropy={self.seed_entropy}, "
            f"spawn_key={self.spawn_key}) failed after "
            f"{self.attempts} attempt(s): {self.error}"
        )


@dataclass
class RunStats:
    """Aggregate accounting of trial work since the last reset.

    Accumulated by every :func:`run_trials` call into a module-level
    collector so the CLI and the experiment report can surface
    done/cached/failed counts and wall-clock per trial without threading
    a stats object through every experiment signature.

    ``trials_remote`` counts trials settled by attached ``repro fabric
    worker`` processes (a subset of ``trials_run``).
    """

    trials_run: int = 0
    trials_cached: int = 0
    trials_failed: int = 0
    trials_remote: int = 0
    retries: int = 0
    trial_seconds: float = 0.0
    trials_truncated: int = 0
    trials_data_loss: int = 0

    @property
    def trials_total(self) -> int:
        return self.trials_run + self.trials_cached

    @property
    def avg_trial_seconds(self) -> float:
        return self.trial_seconds / self.trials_run if self.trials_run else 0.0

    def note_outcome(self, result: SimulationResult) -> None:
        """Record a settled trial's ending (truncation / data loss)."""
        if not result.completed and result.termination_reason in (
            None,
            "max_ticks",
        ):
            self.trials_truncated += 1
        if result.tasks_lost > 0 or result.termination_reason in (
            "data_loss",
            "ring_empty",
        ):
            self.trials_data_loss += 1

    def as_dict(self) -> dict:
        return {
            "trials_run": self.trials_run,
            "trials_cached": self.trials_cached,
            "trials_failed": self.trials_failed,
            "trials_remote": self.trials_remote,
            "retries": self.retries,
            "trial_seconds": round(self.trial_seconds, 4),
            "avg_trial_seconds": round(self.avg_trial_seconds, 4),
            "trials_truncated": self.trials_truncated,
            "trials_data_loss": self.trials_data_loss,
        }

    def summary_line(self) -> str:
        parts = [
            f"{self.trials_total} trials",
            f"{self.trials_cached} cached",
            f"{self.trials_run} run",
        ]
        if self.trials_remote:
            parts.append(f"{self.trials_remote} remote")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.trials_failed:
            parts.append(f"{self.trials_failed} FAILED")
        if self.trials_truncated:
            parts.append(f"{self.trials_truncated} TRUNCATED")
        if self.trials_data_loss:
            parts.append(f"{self.trials_data_loss} with data loss")
        if self.trials_run:
            parts.append(f"{self.avg_trial_seconds:.3f}s/trial")
        return ", ".join(parts)


# The collector is mutated from wherever the fabric settles trials —
# the broker's dispatch thread *and* its listener thread (remote
# settles) — so every touch goes through the lock below.  A bare
# ``_RUN_STATS.trials_run += 1`` is a read-modify-write and loses
# updates under that concurrency (the pre-fabric bug this fixes).
# ``_FABRIC_METRICS`` rides along: each finished broker merges its
# ``fabric.*`` registry here so experiment manifests can carry queue /
# lease / remote accounting without threading a registry through every
# experiment signature.
_RUN_STATS = RunStats()
_FABRIC_METRICS = MetricsRegistry()
_RUN_STATS_LOCK = threading.Lock()


def reset_run_stats() -> None:
    """Zero the module-level collectors (call before an experiment)."""
    global _RUN_STATS, _FABRIC_METRICS
    with _RUN_STATS_LOCK:
        _RUN_STATS = RunStats()
        _FABRIC_METRICS = MetricsRegistry()


def run_stats() -> RunStats:
    """Snapshot of the collector since the last reset."""
    with _RUN_STATS_LOCK:
        return replace(_RUN_STATS)


def fabric_metrics() -> MetricsRegistry:
    """Accumulated ``fabric.*`` metrics since the last reset."""
    snapshot = MetricsRegistry()
    with _RUN_STATS_LOCK:
        exported = _FABRIC_METRICS.as_dict()
    snapshot.merge_counters(exported["counters"])
    snapshot.merge_gauges(exported["gauges"])
    return snapshot


def merge_fabric_metrics(registry: MetricsRegistry) -> None:
    """Fold one broker's registry into the module collector
    (thread-safe; called by :meth:`repro.fabric.broker.Broker.run`)."""
    exported = registry.as_dict()
    with _RUN_STATS_LOCK:
        _FABRIC_METRICS.merge_counters(exported["counters"])
        _FABRIC_METRICS.merge_gauges(exported["gauges"])


def record_trial_run(
    result: SimulationResult, seconds: float, *, remote: bool = False
) -> None:
    """Thread-safe accounting for one freshly computed trial."""
    with _RUN_STATS_LOCK:
        _RUN_STATS.trials_run += 1
        _RUN_STATS.trial_seconds += seconds
        if remote:
            _RUN_STATS.trials_remote += 1
        _RUN_STATS.note_outcome(result)


def record_trial_cached(result: SimulationResult) -> None:
    """Thread-safe accounting for one cache-settled trial."""
    with _RUN_STATS_LOCK:
        _RUN_STATS.trials_cached += 1
        _RUN_STATS.note_outcome(result)


def record_retries(n: int = 1) -> None:
    """Thread-safe accounting for ``n`` trial re-dispatches."""
    with _RUN_STATS_LOCK:
        _RUN_STATS.retries += n


def record_trials_failed(n: int = 1) -> None:
    """Thread-safe accounting for ``n`` trials failed beyond retry."""
    with _RUN_STATS_LOCK:
        _RUN_STATS.trials_failed += n


# ----------------------------------------------------------------------
# public entry points (delegate to the fabric broker)
# ----------------------------------------------------------------------
def run_trials(
    config: SimulationConfig,
    n_trials: int,
    *,
    n_jobs: int = 1,
    cache: TrialCache | bool | None = None,
    retries: int = 1,
    timeout: float | None = None,
    trial_fn: TrialFn | None = None,
    progress: Callable[[dict], None] | None = None,
) -> TrialSet:
    """Run ``n_trials`` independent trials of ``config``.

    A thin wrapper over a single-point
    :class:`~repro.fabric.broker.Broker` grid — the fabric owns
    dispatch, caching, retries and timeouts; this function owns nothing
    but the signature.

    Parameters
    ----------
    config:
        The configuration; its ``seed`` field roots the trial seeds.
    n_trials:
        Number of independent repetitions (the paper uses 100).
    n_jobs:
        Worker processes; 1 = in-process (deterministic *and* easier to
        debug), 0 = :func:`default_n_jobs` (honors ``REPRO_N_JOBS``).
    cache:
        ``None`` — use the default content-addressed cache (honors
        ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``); ``False`` — disable;
        ``True`` — force the default cache; or a
        :class:`~repro.sim.cache.TrialCache` instance.  Seedless configs
        (``seed=None``) are never cached.
    retries:
        Re-dispatches of a failed trial (fresh worker, same seed) before
        giving up.
    timeout:
        Seconds to wait for the next trial completion before declaring
        in-flight workers hung, killing them and retrying (parallel runs
        only).
    trial_fn:
        Replacement for :func:`run_trial` ``(config, seed_seq) ->
        SimulationResult`` — must be picklable for ``n_jobs > 1``.  Used
        by fault-injection tests and custom engines.
    progress:
        Optional callback receiving one dict per settled trial:
        ``{"trial": i, "point": p, "status": "cached"|"ok"|"err",
        "seconds": s}``.

    Raises
    ------
    TrialError
        When any trial still fails after ``retries`` re-dispatches.  The
        exception lists every failure's trial index and seed path;
        completed siblings are already in the cache, so a re-run redoes
        only the failed trials.
    """
    from repro.fabric.broker import Broker
    from repro.fabric.queue import GridPoint

    broker = Broker(
        [GridPoint(config=config, n_trials=n_trials)],
        n_jobs=n_jobs,
        cache=cache,
        retries=retries,
        timeout=timeout,
        trial_fn=trial_fn,
        progress=progress,
    )
    return broker.run()[0]


def _point_seed(root_seed: int, fld: str, value: object) -> int:
    """Deterministic 63-bit seed for one sweep point.

    Derived from ``(root seed, field name, value)`` with SHA-256 (not
    Python's salted ``hash``), so sweeps are reproducible across runs
    and machines while trials at different points draw decorrelated
    streams.
    """
    payload = f"{root_seed}|{fld}|{value!r}".encode()
    return int.from_bytes(sha256(payload).digest()[:8], "little") >> 1


def sweep_grid(
    base: SimulationConfig,
    field: str,
    values: Sequence,
    n_trials: int,
    *,
    common_random_numbers: bool = False,
) -> "list[GridPoint]":
    """The :class:`~repro.fabric.queue.GridPoint` list for a 1-D sweep.

    This is the seed-derivation half of :func:`sweep`, split out so the
    CLI's ``repro fabric run`` can build the identical grid (identical
    per-point seeds, hence identical cache keys) and hand it to a
    broker with fabric-only knobs attached.
    """
    from repro.fabric.queue import GridPoint

    points = []
    for v in values:
        point = base.with_updates(**{field: v})
        if (
            not common_random_numbers
            and field != "seed"
            and base.seed is not None
        ):
            point = point.with_updates(seed=_point_seed(base.seed, field, v))
        points.append(GridPoint(config=point, n_trials=n_trials))
    return points


def sweep(
    base: SimulationConfig,
    field: str,
    values: Sequence,
    n_trials: int,
    *,
    n_jobs: int = 1,
    common_random_numbers: bool = False,
    cache: TrialCache | bool | None = None,
    retries: int = 1,
    timeout: float | None = None,
    progress: Callable[[dict], None] | None = None,
) -> list[TrialSet]:
    """Run a one-dimensional parameter sweep (a row or column of a table).

    Each sweep point gets its own seed, derived from ``(base.seed,
    field, value)`` — historically every point reused ``base.seed``
    verbatim, which silently ran *identical* trial seed streams at every
    parameter value (common random numbers).  CRN is a legitimate
    variance-reduction design, but it must be a choice, not an accident:
    pass ``common_random_numbers=True`` to opt back in.

    The whole grid runs under **one** broker: one worker pool for the
    sweep (instead of one per point), work units interleaving freely
    across points, and — through ``repro fabric run`` — remote workers
    that join mid-sweep.  Completion is recorded per trial in the
    content-addressed cache, so an interrupted sweep re-run resumes at
    the first missing trial and the merged result is bit-identical to an
    uninterrupted run.
    """
    from repro.fabric.broker import Broker

    grid = sweep_grid(
        base,
        field,
        values,
        n_trials,
        common_random_numbers=common_random_numbers,
    )
    broker = Broker(
        grid,
        n_jobs=n_jobs,
        cache=cache,
        retries=retries,
        timeout=timeout,
        progress=progress,
    )
    return broker.run()
