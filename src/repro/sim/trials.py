"""Multi-trial execution with reproducible independent seeds.

Every table in the paper is "the average of 100 trials".  This module
runs N independent trials of a configuration — optionally across
processes, since trials share nothing — and aggregates them into a
:class:`~repro.sim.results.TrialSet`.

Seeding: trial *i* of a config with seed *s* always uses the *i*-th child
of ``SeedSequence(s)``, so results are bit-reproducible regardless of
``n_jobs``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.config import SimulationConfig
from repro.sim.engine import TickEngine
from repro.sim.results import SimulationResult, TrialSet
from repro.util.rng import make_rng

__all__ = ["run_trial", "run_trials", "default_n_jobs"]


def run_trial(
    config: SimulationConfig, seed_seq: np.random.SeedSequence | None = None
) -> SimulationResult:
    """Run one trial; ``seed_seq`` overrides the config seed when given."""
    rng = make_rng(seed_seq) if seed_seq is not None else None
    engine = TickEngine(config, rng=rng)
    return engine.run()


def _trial_worker(
    args: tuple[SimulationConfig, np.random.SeedSequence]
) -> SimulationResult:
    config, seed_seq = args
    return run_trial(config, seed_seq)


def default_n_jobs() -> int:
    """A reasonable process count: physical cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def run_trials(
    config: SimulationConfig,
    n_trials: int,
    *,
    n_jobs: int = 1,
) -> TrialSet:
    """Run ``n_trials`` independent trials of ``config``.

    Parameters
    ----------
    config:
        The configuration; its ``seed`` field roots the trial seeds.
    n_trials:
        Number of independent repetitions (the paper uses 100).
    n_jobs:
        Worker processes; 1 = in-process (deterministic *and* easier to
        debug), 0 = :func:`default_n_jobs`.
    """
    if n_trials < 1:
        raise ConfigError(f"n_trials must be >= 1, got {n_trials}")
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(n_trials)

    if n_jobs == 0:
        n_jobs = default_n_jobs()
    if n_jobs > 1 and n_trials > 1:
        ctx = mp.get_context("spawn")
        with ctx.Pool(min(n_jobs, n_trials)) as pool:
            results = pool.map(
                _trial_worker, [(config, child) for child in children]
            )
    else:
        results = [run_trial(config, child) for child in children]
    return TrialSet(config=config, results=list(results))


def sweep(
    base: SimulationConfig,
    field: str,
    values: Sequence,
    n_trials: int,
    *,
    n_jobs: int = 1,
) -> list[TrialSet]:
    """Run a one-dimensional parameter sweep (a row or column of a table)."""
    return [
        run_trials(base.with_updates(**{field: v}), n_trials, n_jobs=n_jobs)
        for v in values
    ]
