"""Multi-trial execution: reproducible seeds, fault tolerance, caching.

Every table in the paper is "the average of 100 trials".  This module
runs N independent trials of a configuration — optionally across
processes, since trials share nothing — and aggregates them into a
:class:`~repro.sim.results.TrialSet`.

Seeding: trial *i* of a config with seed *s* always uses the *i*-th child
of ``SeedSequence(s)``, so results are bit-reproducible regardless of
``n_jobs``, caching, retries, or interruption.

Fault tolerance: trials are dispatched individually (not ``Pool.map``),
so one crashed or raising worker cannot discard its finished siblings.
Failed trials are retried in a fresh worker with the same seed up to
``retries`` times; what still fails raises a structured
:class:`~repro.errors.TrialError` naming each trial index and seed path.
Completed results are persisted through :mod:`repro.sim.cache` as they
arrive, so a killed run resumes at the first missing trial.

Environment knobs
-----------------
``REPRO_N_JOBS``
    Overrides :func:`default_n_jobs` (``n_jobs=0``) — pin worker counts
    on CI or laptops.
``REPRO_CACHE`` / ``REPRO_CACHE_DIR``
    Disable / relocate the trial cache (see :mod:`repro.sim.cache`).
``REPRO_TRIAL_DELAY_MS``
    Testing hook: sleep this long inside each trial, so interruption
    tests can reliably SIGKILL a run midway.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from hashlib import sha256
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, TrialError
from repro.config import SimulationConfig
from repro.obs.profile import Profiler
from repro.obs.trace import TraceSink
from repro.sim.cache import TrialCache, get_cache, trial_key
from repro.sim.engine import TickEngine
from repro.sim.results import SimulationResult, TrialSet
from repro.sim.shard import ShardedTickEngine
from repro.util.rng import make_rng

__all__ = [
    "run_trial",
    "run_trials",
    "sweep",
    "default_n_jobs",
    "make_trial_fn",
    "TrialFailure",
    "RunStats",
    "reset_run_stats",
    "run_stats",
]

TrialFn = Callable[
    [SimulationConfig, "np.random.SeedSequence | None"], SimulationResult
]


def run_trial(
    config: SimulationConfig,
    seed_seq: np.random.SeedSequence | None = None,
    *,
    trace: "TraceSink | None" = None,
    profiler: "Profiler | None" = None,
    backend: str | None = None,
    shards: int = 1,
    min_parallel_slots: int | None = None,
) -> SimulationResult:
    """Run one trial; ``seed_seq`` overrides the config seed when given.

    ``trace`` and ``profiler`` attach observability side channels to the
    engine (see :mod:`repro.obs`); both leave the seeded result
    bit-identical.  They are keyword-only and unpicklable-by-design
    sinks stay out of multi-process paths: :func:`run_trials` always
    calls this without them.

    ``backend`` and ``shards`` are *execution* parameters (see
    :mod:`repro.sim.kernels` / :mod:`repro.sim.shard`): they change how
    fast the trial runs, never its seeded result, and are deliberately
    not part of :class:`SimulationConfig` so the trial cache keys stay
    purely semantic — a result cached under ``shards=4`` is bit-valid
    for a ``shards=1`` re-run and vice versa.
    """
    rng = make_rng(seed_seq) if seed_seq is not None else None
    if shards > 1:
        kwargs = {}
        if min_parallel_slots is not None:
            kwargs["min_parallel_slots"] = min_parallel_slots
        with ShardedTickEngine(
            config, shards=shards, rng=rng, trace=trace,
            profiler=profiler, backend=backend, **kwargs,
        ) as engine:
            return engine.run()
    eng = TickEngine(
        config, rng=rng, trace=trace, profiler=profiler, backend=backend
    )
    return eng.run()


def make_trial_fn(
    *,
    backend: str | None = None,
    shards: int = 1,
    min_parallel_slots: int | None = None,
) -> TrialFn:
    """A picklable :data:`TrialFn` pinning execution parameters.

    ``functools.partial`` over the module-level :func:`run_trial`
    survives the spawn-context pickling that ``run_trials(n_jobs > 1)``
    requires, unlike a closure; the CLI uses this to honor
    ``--backend`` / ``--shards`` on multi-process trial runs.
    """
    if backend is None and shards == 1 and min_parallel_slots is None:
        return run_trial
    return functools.partial(
        run_trial,
        backend=backend,
        shards=shards,
        min_parallel_slots=min_parallel_slots,
    )


def default_n_jobs() -> int:
    """A reasonable process count: logical CPUs, capped at 8.

    ``os.cpu_count()`` reports *logical* CPUs (hyperthreads included);
    trials are CPU-bound so more workers than that never helps.  Set
    ``REPRO_N_JOBS`` to pin the count explicitly (CI, shared machines).
    """
    override = os.environ.get("REPRO_N_JOBS")
    if override:
        try:
            n = int(override)
        except ValueError:
            raise ConfigError(
                f"REPRO_N_JOBS must be an integer, got {override!r}"
            ) from None
        if n < 1:
            raise ConfigError(f"REPRO_N_JOBS must be >= 1, got {n}")
        return n
    return max(1, min(8, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# failure records and run statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialFailure:
    """What went wrong with one trial, with enough context to replay it.

    ``seed_entropy`` and ``spawn_key`` pin the exact
    ``numpy.random.SeedSequence`` child, so
    ``run_trial(config, SeedSequence(entropy, spawn_key=spawn_key))``
    reproduces the failure deterministically.
    """

    trial_index: int
    seed_entropy: int | None
    spawn_key: tuple[int, ...]
    attempts: int
    error: str

    def __str__(self) -> str:
        return (
            f"trial {self.trial_index} (entropy={self.seed_entropy}, "
            f"spawn_key={self.spawn_key}) failed after "
            f"{self.attempts} attempt(s): {self.error}"
        )


@dataclass
class RunStats:
    """Aggregate accounting of trial work since the last reset.

    Accumulated by every :func:`run_trials` call into a module-level
    collector so the CLI and the experiment report can surface
    done/cached/failed counts and wall-clock per trial without threading
    a stats object through every experiment signature.
    """

    trials_run: int = 0
    trials_cached: int = 0
    trials_failed: int = 0
    retries: int = 0
    trial_seconds: float = 0.0
    trials_truncated: int = 0
    trials_data_loss: int = 0

    @property
    def trials_total(self) -> int:
        return self.trials_run + self.trials_cached

    @property
    def avg_trial_seconds(self) -> float:
        return self.trial_seconds / self.trials_run if self.trials_run else 0.0

    def note_outcome(self, result: SimulationResult) -> None:
        """Record a settled trial's ending (truncation / data loss)."""
        if not result.completed and result.termination_reason in (
            None,
            "max_ticks",
        ):
            self.trials_truncated += 1
        if result.tasks_lost > 0 or result.termination_reason in (
            "data_loss",
            "ring_empty",
        ):
            self.trials_data_loss += 1

    def as_dict(self) -> dict:
        return {
            "trials_run": self.trials_run,
            "trials_cached": self.trials_cached,
            "trials_failed": self.trials_failed,
            "retries": self.retries,
            "trial_seconds": round(self.trial_seconds, 4),
            "avg_trial_seconds": round(self.avg_trial_seconds, 4),
            "trials_truncated": self.trials_truncated,
            "trials_data_loss": self.trials_data_loss,
        }

    def summary_line(self) -> str:
        parts = [
            f"{self.trials_total} trials",
            f"{self.trials_cached} cached",
            f"{self.trials_run} run",
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.trials_failed:
            parts.append(f"{self.trials_failed} FAILED")
        if self.trials_truncated:
            parts.append(f"{self.trials_truncated} TRUNCATED")
        if self.trials_data_loss:
            parts.append(f"{self.trials_data_loss} with data loss")
        if self.trials_run:
            parts.append(f"{self.avg_trial_seconds:.3f}s/trial")
        return ", ".join(parts)


_RUN_STATS = RunStats()


def reset_run_stats() -> None:
    """Zero the module-level collector (call before an experiment)."""
    global _RUN_STATS
    _RUN_STATS = RunStats()


def run_stats() -> RunStats:
    """Snapshot of the collector since the last reset."""
    return replace(_RUN_STATS)


# ----------------------------------------------------------------------
# worker plumbing
# ----------------------------------------------------------------------
def _trial_worker(
    args: tuple[TrialFn | None, SimulationConfig, int, np.random.SeedSequence]
) -> tuple[int, str, object, float]:
    """Run one trial in a worker; exceptions come back as data.

    Returns ``(index, "ok", result, seconds)`` or
    ``(index, "err", traceback_string, seconds)`` — a raising trial must
    not take down the pool (or, pre-3.11 ``Pool.map``, its siblings).
    """
    trial_fn, config, index, seed_seq = args
    delay_ms = os.environ.get("REPRO_TRIAL_DELAY_MS")
    if delay_ms:
        time.sleep(int(delay_ms) / 1000.0)
    # trial duration is reporting metadata, never simulation state
    t0 = time.perf_counter()  # reprolint: disable=R002 (duration meta)
    try:
        fn = trial_fn if trial_fn is not None else run_trial
        result = fn(config, seed_seq)
        elapsed = time.perf_counter() - t0  # reprolint: disable=R002 (meta)
        return (index, "ok", result, elapsed)
    # worker boundary: *any* failure must come back as data, not take
    # down the pool
    except BaseException:  # reprolint: disable=R004 (worker boundary)
        elapsed = time.perf_counter() - t0  # reprolint: disable=R002 (meta)
        return (
            index,
            "err",
            traceback.format_exc(limit=20),
            elapsed,
        )


def _kill_workers(executor: ProcessPoolExecutor) -> None:
    """Best-effort SIGKILL of a pool's workers (hung-trial recovery)."""
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass


def _run_batch_serial(
    config: SimulationConfig,
    batch: list[tuple[int, np.random.SeedSequence]],
    trial_fn: TrialFn | None,
    on_done: Callable[[int, str, object, float], None],
) -> None:
    for index, seed_seq in batch:
        on_done(*_trial_worker((trial_fn, config, index, seed_seq)))


def _run_batch_parallel(
    config: SimulationConfig,
    batch: list[tuple[int, np.random.SeedSequence]],
    n_jobs: int,
    timeout: float | None,
    trial_fn: TrialFn | None,
    on_done: Callable[[int, str, object, float], None],
) -> None:
    """Dispatch one attempt of every trial in ``batch`` to a fresh pool.

    Per-trial dispatch (``submit`` per trial, not ``map``) means a dead
    worker only loses the trials it was actually running: completed
    futures have already been consumed, and the broken-pool error is
    attributed to the in-flight trials, which the caller retries.

    ``timeout`` bounds the wait for the *next* completion; trials of one
    config do comparable work, so a window with zero completions means
    the in-flight workers are hung and they are killed and retried.
    """
    ctx = mp.get_context("spawn")
    executor = ProcessPoolExecutor(
        max_workers=min(n_jobs, len(batch)), mp_context=ctx
    )
    try:
        futures = {
            executor.submit(_trial_worker, (trial_fn, config, i, seq)): i
            for i, seq in batch
        }
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # sorted: `pending` is a set; iterating it raw would
                # attribute timeouts in hash order, making error order
                # (and on_done bookkeeping) vary run to run.
                stranded = sorted(pending, key=futures.__getitem__)
                for fut in stranded:
                    fut.cancel()
                _kill_workers(executor)
                for fut in stranded:
                    on_done(
                        futures[fut],
                        "err",
                        f"trial timed out (no completion within "
                        f"{timeout}s window)",
                        float(timeout or 0.0),
                    )
                return
            for fut in sorted(done, key=futures.__getitem__):
                index = futures[fut]
                try:
                    on_done(*fut.result())
                # pool boundary: BrokenProcessPool / unpickle failures
                except BaseException as exc:  # reprolint: disable=R004 (pool boundary)
                    on_done(index, "err", f"worker died: {exc!r}", 0.0)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def run_trials(
    config: SimulationConfig,
    n_trials: int,
    *,
    n_jobs: int = 1,
    cache: TrialCache | bool | None = None,
    retries: int = 1,
    timeout: float | None = None,
    trial_fn: TrialFn | None = None,
    progress: Callable[[dict], None] | None = None,
) -> TrialSet:
    """Run ``n_trials`` independent trials of ``config``.

    Parameters
    ----------
    config:
        The configuration; its ``seed`` field roots the trial seeds.
    n_trials:
        Number of independent repetitions (the paper uses 100).
    n_jobs:
        Worker processes; 1 = in-process (deterministic *and* easier to
        debug), 0 = :func:`default_n_jobs` (honors ``REPRO_N_JOBS``).
    cache:
        ``None`` — use the default content-addressed cache (honors
        ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``); ``False`` — disable;
        ``True`` — force the default cache; or a
        :class:`~repro.sim.cache.TrialCache` instance.  Seedless configs
        (``seed=None``) are never cached.
    retries:
        Re-dispatches of a failed trial (fresh worker, same seed) before
        giving up.
    timeout:
        Seconds to wait for the next trial completion before declaring
        in-flight workers hung, killing them and retrying (parallel runs
        only).
    trial_fn:
        Replacement for :func:`run_trial` ``(config, seed_seq) ->
        SimulationResult`` — must be picklable for ``n_jobs > 1``.  Used
        by fault-injection tests and custom engines.
    progress:
        Optional callback receiving one dict per settled trial:
        ``{"trial": i, "status": "cached"|"ok"|"err", "seconds": s}``.

    Raises
    ------
    TrialError
        When any trial still fails after ``retries`` re-dispatches.  The
        exception lists every failure's trial index and seed path;
        completed siblings are already in the cache, so a re-run redoes
        only the failed trials.
    """
    if n_trials < 1:
        raise ConfigError(f"n_trials must be >= 1, got {n_trials}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(n_trials)

    if cache is None or cache is True:
        cache_obj = get_cache() if (cache or config.seed is not None) else None
    elif cache is False:
        cache_obj = None
    else:
        cache_obj = cache
    if config.seed is None:
        # Fresh entropy every run: keys would never match again.
        cache_obj = None

    if n_jobs == 0:
        n_jobs = default_n_jobs()

    stats = _RUN_STATS
    results: dict[int, SimulationResult] = {}
    keys: dict[int, str] = {}

    pending: list[int] = []
    for i, child in enumerate(children):
        if cache_obj is not None:
            keys[i] = trial_key(config, child)
            cached = cache_obj.load(keys[i])
            if cached is not None:
                results[i] = cached
                stats.trials_cached += 1
                stats.note_outcome(cached)
                if progress is not None:
                    progress({"trial": i, "status": "cached", "seconds": 0.0})
                continue
        pending.append(i)

    attempts: dict[int, int] = {i: 0 for i in pending}
    last_error: dict[int, str] = {}

    def on_done(index: int, status: str, payload: object, seconds: float):
        attempts[index] += 1
        if status == "ok":
            assert isinstance(payload, SimulationResult)
            results[index] = payload
            stats.trials_run += 1
            stats.trial_seconds += seconds
            stats.note_outcome(payload)
            if cache_obj is not None:
                cache_obj.store(keys[index], payload)
        else:
            last_error[index] = str(payload)
        if progress is not None:
            progress({"trial": index, "status": status, "seconds": seconds})

    attempt = 0
    while pending:
        batch = [(i, children[i]) for i in pending]
        if n_jobs > 1 and len(batch) > 1:
            _run_batch_parallel(
                config, batch, n_jobs, timeout, trial_fn, on_done
            )
        else:
            _run_batch_serial(config, batch, trial_fn, on_done)
        pending = sorted(i for i in pending if i not in results)
        if not pending:
            break
        attempt += 1
        if attempt > retries:
            break
        stats.retries += len(pending)

    if pending:
        stats.trials_failed += len(pending)
        failures = tuple(
            TrialFailure(
                trial_index=i,
                seed_entropy=children[i].entropy,
                spawn_key=tuple(int(k) for k in children[i].spawn_key),
                attempts=attempts[i],
                error=last_error.get(i, "unknown error"),
            )
            for i in pending
        )
        lines = "\n".join(f"  - {f}" for f in failures)
        raise TrialError(
            f"{len(failures)}/{n_trials} trial(s) failed after "
            f"{retries} retr{'y' if retries == 1 else 'ies'} "
            f"({len(results)} completed and preserved):\n{lines}",
            failures=failures,
            n_completed=len(results),
        )

    return TrialSet(config=config, results=[results[i] for i in range(n_trials)])


def _point_seed(root_seed: int, fld: str, value: object) -> int:
    """Deterministic 63-bit seed for one sweep point.

    Derived from ``(root seed, field name, value)`` with SHA-256 (not
    Python's salted ``hash``), so sweeps are reproducible across runs
    and machines while trials at different points draw decorrelated
    streams.
    """
    payload = f"{root_seed}|{fld}|{value!r}".encode()
    return int.from_bytes(sha256(payload).digest()[:8], "little") >> 1


def sweep(
    base: SimulationConfig,
    field: str,
    values: Sequence,
    n_trials: int,
    *,
    n_jobs: int = 1,
    common_random_numbers: bool = False,
    cache: TrialCache | bool | None = None,
    retries: int = 1,
    timeout: float | None = None,
    progress: Callable[[dict], None] | None = None,
) -> list[TrialSet]:
    """Run a one-dimensional parameter sweep (a row or column of a table).

    Each sweep point gets its own seed, derived from ``(base.seed,
    field, value)`` — historically every point reused ``base.seed``
    verbatim, which silently ran *identical* trial seed streams at every
    parameter value (common random numbers).  CRN is a legitimate
    variance-reduction design, but it must be a choice, not an accident:
    pass ``common_random_numbers=True`` to opt back in.

    Completion is recorded per trial in the content-addressed cache, so
    an interrupted sweep re-run resumes at the first missing trial and
    the merged result is bit-identical to an uninterrupted run.
    """
    out: list[TrialSet] = []
    for v in values:
        point = base.with_updates(**{field: v})
        if (
            not common_random_numbers
            and field != "seed"
            and base.seed is not None
        ):
            point = point.with_updates(seed=_point_seed(base.seed, field, v))
        out.append(
            run_trials(
                point,
                n_trials,
                n_jobs=n_jobs,
                cache=cache,
                retries=retries,
                timeout=timeout,
                progress=progress,
            )
        )
    return out
