"""Registry of physical nodes ("owners") behind ring slots.

The paper distinguishes *physical* nodes from the (possibly several)
*virtual* identities they present on the ring: a node's main identity
plus any Sybils it has injected.  The tick simulator mirrors this split:

* a **slot** is one position on the ring (see :mod:`repro.sim.state`);
* an **owner** is the physical machine behind one or more slots.

Owners carry the per-machine attributes from §V-B of the paper — strength
(heterogeneity), per-tick consumption rate (work measurement), and the
Sybil budget — plus churn bookkeeping (in-network vs. waiting pool).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.config import SimulationConfig

__all__ = [
    "OwnerRegistry",
    "PROV_HONEST",
    "PROV_BENEVOLENT",
    "PROV_ADVERSARIAL",
]

#: Slot/owner provenance codes (int8): who is behind an identity.
#: ``PROV_BENEVOLENT`` marks Sybil slots created by the paper's
#: balancing strategies; ``PROV_ADVERSARIAL`` marks attacker identities
#: injected by the adversary plane (see repro.sim.adversary).
PROV_HONEST = 0
PROV_BENEVOLENT = 1
PROV_ADVERSARIAL = 2


class OwnerRegistry:
    """Array-of-attributes store for all physical nodes in an experiment.

    Owners are identified by dense integer indices ``0 .. n_owners-1``.
    In churn experiments the registry holds *both* the initial network and
    the waiting pool (the paper starts the pool at network size); the
    ``in_network`` flag tracks which side each owner currently sits on.
    """

    def __init__(self, config: SimulationConfig, rng: np.random.Generator):
        n = config.n_nodes
        # The waiting pool only exists when churn can occur.
        self.pool_size = n if config.churn_rate > 0 else 0
        #: first adversarial owner index; == n_total when none exist.
        #: Honest owners occupy [0, adversary_start), adversarial owners
        #: the tail — honest views are cheap prefix slices.
        self.adversary_start = n + self.pool_size
        n_adv = config.adversary.n_adversaries if config.adversary.enabled else 0
        total = self.adversary_start + n_adv

        if config.heterogeneous:
            # strength drawn uniformly from 1..maxSybils (§V-B Homogeneity)
            self.strength = rng.integers(
                1, config.max_sybils + 1, size=total, dtype=np.int64
            )
            self.strength[self.adversary_start:] = 1
        else:
            self.strength = np.ones(total, dtype=np.int64)

        if config.work_measurement == "strength":
            self.rate = self.strength.copy()
        else:
            self.rate = np.ones(total, dtype=np.int64)
        # Adversaries accept keys but never consume: rate 0.  The rate
        # array is write-once after this, which keeps the sharded
        # engine's shared-memory rates mirror valid for the whole run.
        self.rate[self.adversary_start:] = 0

        if config.heterogeneous:
            # a heterogeneous node may have up to `strength` Sybils (§IV-B)
            self.sybil_cap = self.strength.copy()
        else:
            self.sybil_cap = np.full(total, config.max_sybils, dtype=np.int64)
        # Attackers ignore the benevolent Sybil cap; the eclipse owner
        # needs room for its whole coordinated arc (budget still gates).
        self.sybil_cap[self.adversary_start:] = config.adversary.eclipse_sybils

        self.in_network = np.zeros(total, dtype=bool)
        self.in_network[:n] = True
        #: live Sybil count per owner (main identity excluded)
        self.n_sybils = np.zeros(total, dtype=np.int64)
        #: ring id of the owner's main identity (valid while in_network)
        self.main_id = np.zeros(total, dtype=np.uint64)
        #: owner provenance (PROV_HONEST / PROV_ADVERSARIAL)
        self.provenance = np.zeros(total, dtype=np.int8)
        self.provenance[self.adversary_start:] = PROV_ADVERSARIAL

        # SybilControl-style join-cost accounts (None when disabled).
        # Accounts start full so the first Sybil/join is affordable;
        # the adversary plane refills them each tick.
        cost = config.adversary.join_cost
        self.join_budget: np.ndarray | None = (
            np.full(total, cost, dtype=np.int64) if cost > 0 else None
        )

        self._config = config
        # flatnonzero caches over ``in_network``; invalidated by the two
        # membership mutators (leave_network / join_network).  Callers
        # must treat the returned arrays as read-only.
        self._network_cache: np.ndarray | None = None
        self._waiting_cache: np.ndarray | None = None
        self._honest_network_cache: np.ndarray | None = None
        self._honest_waiting_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_total(self) -> int:
        """All physical nodes, in-network plus waiting."""
        return self.strength.shape[0]

    @property
    def network_indices(self) -> np.ndarray:
        """Indices of owners currently participating in the network."""
        if self._network_cache is None:
            self._network_cache = np.flatnonzero(self.in_network)
            self._network_cache.setflags(write=False)
        return self._network_cache

    @property
    def waiting_indices(self) -> np.ndarray:
        """Indices of owners currently in the waiting pool."""
        if self._waiting_cache is None:
            self._waiting_cache = np.flatnonzero(~self.in_network)
            self._waiting_cache.setflags(write=False)
        return self._waiting_cache

    @property
    def honest_network_indices(self) -> np.ndarray:
        """In-network owners excluding the adversarial tail segment.

        Strategies balance over these (adversaries do not cooperate),
        and churn departures are drawn from them (adversaries do not
        leave voluntarily).  When no adversaries exist this *is* the
        plain network view — same array, no copy.
        """
        net = self.network_indices
        if self.adversary_start == self.n_total:
            return net
        if self._honest_network_cache is None:
            cut = int(np.searchsorted(net, self.adversary_start))
            self._honest_network_cache = net[:cut]
        return self._honest_network_cache

    @property
    def honest_waiting_indices(self) -> np.ndarray:
        """Waiting-pool owners excluding adversaries.

        Churn joins draw from these: un-joined (or evicted) adversaries
        must never re-enter the ring through the benign waiting pool.
        """
        waiting = self.waiting_indices
        if self.adversary_start == self.n_total:
            return waiting
        if self._honest_waiting_cache is None:
            cut = int(np.searchsorted(waiting, self.adversary_start))
            self._honest_waiting_cache = waiting[:cut]
        return self._honest_waiting_cache

    @property
    def n_in_network(self) -> int:
        return self.network_indices.size

    def network_capacity(self) -> int:
        """Aggregate tasks consumed per tick by the current network."""
        return int(self.rate[self.in_network].sum())

    def initial_capacity(self) -> int:
        """Aggregate per-tick rate of the *initial* network (owners 0..n-1).

        This is the denominator of the ideal runtime: the paper's ideal is
        computed from the starting network composition, before any churn
        or Sybil activity.
        """
        n = self._config.n_nodes
        return int(self.rate[:n].sum())

    # ------------------------------------------------------------------
    def can_add_sybil(self, owner: int) -> bool:
        """Whether ``owner`` may inject one more Sybil right now.

        Folds the join-cost defense in: an owner whose budget cannot
        cover one join is not eligible, so strategies respect the knob
        without any strategy-code changes (and without wasting RNG
        draws on placements that would be refused).
        """
        return bool(
            self.in_network[owner]
            and self.n_sybils[owner] < self.sybil_cap[owner]
            and (
                self.join_budget is None
                or self.join_budget[owner]
                >= self._config.adversary.join_cost
            )
        )

    def register_sybil(self, owner: int) -> None:
        if not self.can_add_sybil(owner):
            raise SimulationError(
                f"owner {owner} cannot add a Sybil "
                f"(in_network={bool(self.in_network[owner])}, "
                f"sybils={int(self.n_sybils[owner])}/"
                f"{int(self.sybil_cap[owner])})"
            )
        if self.join_budget is not None:
            self.join_budget[owner] -= self._config.adversary.join_cost
        self.n_sybils[owner] += 1

    def spend_join_budget(self, owner: int) -> bool:
        """Pay the join cost for a *main-identity* join, if affordable.

        Used by the adversary plane for attack joins (free-riders and
        the eclipse owner's entry).  Returns False — join refused this
        tick — when the account cannot cover the cost.
        """
        if self.join_budget is None:
            return True
        cost = self._config.adversary.join_cost
        if self.join_budget[owner] < cost:
            return False
        self.join_budget[owner] -= cost
        return True

    def refill_join_budgets(self) -> None:
        """Tick refill: add ``join_budget_refill``, capped at the cost."""
        if self.join_budget is None:
            return
        adv = self._config.adversary
        np.minimum(
            self.join_budget + adv.join_budget_refill,
            adv.join_cost,
            out=self.join_budget,
        )

    def join_budget_remaining(self, owner: int) -> int | None:
        """Current join-cost account balance (None when disabled)."""
        if self.join_budget is None:
            return None
        return int(self.join_budget[owner])

    def unregister_sybils(self, owner: int, count: int) -> None:
        if count < 0 or count > self.n_sybils[owner]:
            raise SimulationError(
                f"owner {owner} cannot drop {count} Sybils "
                f"(has {int(self.n_sybils[owner])})"
            )
        self.n_sybils[owner] -= count

    def leave_network(self, owner: int) -> None:
        """Move an owner to the waiting pool (its slots must be removed
        separately by the ring state)."""
        if not self.in_network[owner]:
            raise SimulationError(f"owner {owner} is not in the network")
        self.in_network[owner] = False
        self.n_sybils[owner] = 0
        self._network_cache = None
        self._waiting_cache = None
        self._honest_network_cache = None
        self._honest_waiting_cache = None

    def join_network(self, owner: int, main_id: int) -> None:
        """Move a waiting owner into the network with a fresh main id."""
        if self.in_network[owner]:
            raise SimulationError(f"owner {owner} is already in the network")
        self.in_network[owner] = True
        self.n_sybils[owner] = 0
        self.main_id[owner] = np.uint64(main_id)
        self._network_cache = None
        self._waiting_cache = None
        self._honest_network_cache = None
        self._honest_waiting_cache = None

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        if (self.strength < 1).any():
            raise ConfigError("owner strengths must be >= 1")
        if (self.n_sybils < 0).any() or (
            self.n_sybils > self.sybil_cap
        ).any():
            raise SimulationError("sybil counts out of bounds")
        if (self.n_sybils[~self.in_network] != 0).any():
            raise SimulationError("waiting owners must have no sybils")
