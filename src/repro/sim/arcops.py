"""Vectorized ring-arc operations on ``uint64`` identifier arrays.

The tick simulator stores node IDs and task keys as NumPy ``uint64``
arrays.  These helpers implement the wrapping-arc predicates and geometry
(`(start, end]` membership, arc lengths, responsibility lookup) without
per-element Python work — they are the hot primitives behind initial task
assignment, joins, and Sybil splits.

All arcs follow the Chord convention used throughout the library: the
node with identifier ``end`` and predecessor ``start`` is responsible for
keys in the clockwise arc ``(start, end]``, and ``start == end`` denotes
the full circle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IdSpaceError

__all__ = [
    "in_arc_mask",
    "arc_length",
    "arc_lengths",
    "responsible_slots",
    "slot_arc_starts",
]

_U64 = np.uint64


def in_arc_mask(keys: np.ndarray, start: int, end: int) -> np.ndarray:
    """Boolean mask of ``keys`` lying in the clockwise arc ``(start, end]``.

    ``start == end`` selects everything (full circle).
    """
    k = np.asarray(keys, dtype=_U64)
    s = _U64(start)
    e = _U64(end)
    if s == e:
        return np.ones(k.shape, dtype=bool)
    if s < e:
        return (k > s) & (k <= e)
    return (k > s) | (k <= e)


def arc_length(start: int, end: int, size: int) -> int:
    """Number of identifiers in ``(start, end]``; full circle when equal."""
    span = (end - start) % size
    return span if span != 0 else size


def arc_lengths(ids: np.ndarray, size: int) -> np.ndarray:
    """Responsibility-arc length of every slot on a sorted ring.

    ``ids`` must be strictly increasing.  Slot ``i`` owns
    ``(ids[i-1], ids[i]]`` (slot 0 wraps around from the last slot).
    Returned as ``uint64``; a single-slot ring owns the whole space, which
    only fits when ``size <= 2**64`` — callers use a <=64-bit space.
    """
    ids = np.asarray(ids, dtype=_U64)
    n = ids.size
    if n == 0:
        return np.zeros(0, dtype=_U64)
    gaps = np.empty(n, dtype=_U64)
    gaps[1:] = ids[1:] - ids[:-1]
    if n == 1:
        # Full circle.  2**64 does not fit in uint64, so saturate to the
        # largest representable length; callers only compare lengths.
        gaps[0] = _U64(min(size, 1 << 64) - 1)
    else:
        gaps[0] = _U64((int(ids[0]) - int(ids[-1])) % size)
    return gaps


def responsible_slots(ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Index of the slot responsible for each key.

    ``ids`` must be sorted ascending (the ring array).  Key ``k`` belongs
    to the first slot with ``ids[i] >= k``; keys above the last id wrap to
    slot 0.
    """
    ids = np.asarray(ids, dtype=_U64)
    if ids.size == 0:
        raise IdSpaceError("cannot assign keys on an empty ring")
    idx = np.searchsorted(ids, np.asarray(keys, dtype=_U64), side="left")
    idx[idx == ids.size] = 0
    return idx


def slot_arc_starts(ids: np.ndarray) -> np.ndarray:
    """Predecessor id (arc start, exclusive) for every slot on the ring."""
    ids = np.asarray(ids, dtype=_U64)
    return np.roll(ids, 1)
