"""The tick simulator's implementation of the strategy-facing view.

:class:`SimView` adapts (:class:`~repro.sim.state.RingState`,
:class:`~repro.sim.owners.OwnerRegistry`) to the
:class:`~repro.core.strategy.NetworkView` interface.  It also owns the
per-round accounting (Sybils created/retired, tasks acquired, messages),
and realizes the paper's placement assumption: Sybil identifiers are
*searched for* inside a target range, not chosen exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategy import NetworkView, RoundStats
from repro.errors import IdSpaceError
from repro.config import SimulationConfig
from repro.sim.owners import OwnerRegistry
from repro.sim.state import RingState
from repro.sim.workload import draw_new_node_id

__all__ = ["SimView"]


class SimView(NetworkView):
    """Local-information window onto the simulated network."""

    def __init__(
        self,
        config: SimulationConfig,
        state: RingState,
        owners: OwnerRegistry,
        rng: np.random.Generator,
        *,
        event_sink=None,
    ):
        self._config = config
        self._state = state
        self._owners = owners
        self._rng = rng
        self._loads: np.ndarray | None = None
        self._stats = RoundStats()
        self._emit = event_sink if event_sink is not None else (
            lambda kind, **fields: None
        )

    # ------------------------------------------------------------------
    # round lifecycle (driven by the engine)
    # ------------------------------------------------------------------
    def begin_round(self) -> RoundStats:
        """Snapshot owner loads and reset round accounting.

        All nodes decide "simultaneously" from the workloads observed at
        the start of the round, as in the paper's Figure 7 description of
        a single load-balancing operation.
        """
        self._loads = self._state.owner_loads(self._owners.n_total)
        self._stats = RoundStats()
        return self._stats

    # ------------------------------------------------------------------
    # NetworkView: static context
    # ------------------------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def total_tasks(self) -> int:
        return self._config.n_tasks

    @property
    def initial_nodes(self) -> int:
        return self._config.n_nodes

    # ------------------------------------------------------------------
    # NetworkView: owner census
    # ------------------------------------------------------------------
    def network_owners(self) -> np.ndarray:
        # Honest owners only: adversarial identities never run the
        # balancing protocol (they are not cooperating peers).  With no
        # adversaries configured this is the plain network view.
        return self._owners.honest_network_indices

    def owner_loads(self) -> np.ndarray:
        if self._loads is None:
            self._loads = self._state.owner_loads(self._owners.n_total)
        return self._loads

    def live_owner_load(self, owner: int) -> int:
        return self._state.owner_load(owner)

    def n_sybils(self, owner: int) -> int:
        return int(self._owners.n_sybils[owner])

    def can_add_sybil(self, owner: int) -> bool:
        return self._owners.can_add_sybil(owner)

    def join_budget_remaining(self, owner: int) -> int | None:
        return self._owners.join_budget_remaining(owner)

    # ------------------------------------------------------------------
    # NetworkView: topology
    # ------------------------------------------------------------------
    def main_slot(self, owner: int) -> int:
        return self._state.main_slot_of(owner)

    def heaviest_slot(self, owner: int) -> int:
        slots = self._state.slots_of_owner(owner)
        counts = self._state.counts[slots]
        return int(slots[int(np.argmax(counts))])

    def successor_slots(self, slot: int, k: int) -> np.ndarray:
        k = min(k, self._state.n_slots - 1)
        return self._state.successor_slots(slot, k)

    def predecessor_slots(self, slot: int, k: int) -> np.ndarray:
        k = min(k, self._state.n_slots - 1)
        return self._state.predecessor_slots(slot, k)

    def slot_owner(self, slot: int) -> int:
        return int(self._state.owner[slot])

    def slot_count(self, slot: int) -> int:
        return int(self._state.counts[slot])

    def slot_gap(self, slot: int) -> int:
        return self._state.slot_gap(slot)

    def slot_id(self, slot: int) -> int:
        return int(self._state.ids[slot])

    # ------------------------------------------------------------------
    # NetworkView: actions
    # ------------------------------------------------------------------
    def create_sybil_random(self, owner: int) -> int:
        ident = draw_new_node_id(
            self._state.space, self._rng, self._state.id_exists
        )
        return self._create_sybil(owner, ident)

    def create_sybil_in_slot_arc(self, owner: int, slot: int) -> int | None:
        ident = self._place_in_slot(slot)
        if ident is None:
            return None
        return self._create_sybil(owner, ident)

    def retire_sybils(self, owner: int) -> int:
        removed = self._state.retire_sybils(owner)
        self._owners.unregister_sybils(owner, removed)
        self._stats.sybils_retired += removed
        if removed:
            # int() coercion: strategies pass numpy-scalar owners, and
            # trace sinks JSON-serialize these fields
            self._emit("sybils_retired", owner=int(owner), count=int(removed))
        return removed

    def owner_strength(self, owner: int) -> int:
        return int(self._owners.strength[owner])

    def relocate_main(self, owner: int, target_slot: int) -> int | None:
        """Move the owner's main identity into ``target_slot``'s arc
        (§VII "choose your own ID" extension).

        The new identity is inserted first (acquiring its share of the
        target's keys), then the old main slot is removed — its leftover
        tasks flow to its old successor, like any graceful departure.
        """
        state = self._state
        ident = self._place_in_slot(target_slot)
        if ident is None:
            return None
        old_main = state.main_slot_of(owner)
        pos, acquired = state.insert_slot(ident, owner, is_main=True)
        old_idx = old_main + 1 if pos <= old_main else old_main
        state.remove_slot(old_idx)
        self._owners.main_id[owner] = np.uint64(ident)
        self._stats.relocations += 1
        self._stats.tasks_acquired += acquired
        self._stats.messages += 2  # leave handshake + join handshake
        self._emit("relocation", owner=int(owner), ident=int(ident),
                   acquired=int(acquired))
        return acquired

    def count_messages(self, n: int = 1) -> None:
        self._stats.messages += n

    @property
    def stats(self) -> RoundStats:
        return self._stats

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _create_sybil(self, owner: int, ident: int) -> int:
        self._owners.register_sybil(owner)  # validates the budget
        _, acquired = self._state.insert_slot(ident, owner, is_main=False)
        self._stats.sybils_created += 1
        self._stats.tasks_acquired += acquired
        # joining is at least one message (the join handshake)
        self._stats.messages += 1
        self._emit("sybil_created", owner=int(owner), ident=int(ident),
                   acquired=int(acquired))
        return acquired

    def _place_in_slot(self, slot: int) -> int | None:
        """Choose an unoccupied identifier inside ``slot``'s arc, honouring
        ``config.placement`` (random / midpoint / median-split)."""
        state = self._state
        start, end = state.slot_arc(slot)
        placement = self._config.placement
        if placement == "median":
            ident = state.median_key(slot)
            if ident is not None and not state.id_exists(ident):
                return ident
            placement = "random"  # fall back when the slot is nearly empty
        if placement == "midpoint":
            ident = state.space.midpoint(start, end)
            if not state.id_exists(ident) and state.space.in_interval(
                ident, start, end, closed_right=False
            ):
                return ident
            placement = "random"
        for _ in range(8):
            try:
                ident = state.space.random_in_interval(self._rng, start, end)
            except IdSpaceError:
                return None  # arc too small to host a new identity
            if ident != end and not state.id_exists(ident):
                return ident
        return None
