"""Naive reference ring state — the executable specification.

:class:`NaiveRingState` is the original one-``np.insert``/``np.delete``-
per-operation implementation of the ring, kept verbatim as the semantic
baseline for the slab-allocated :class:`~repro.sim.state.RingState`.
Every structural operation reallocates the four slot arrays, and the
owner queries are full scans — O(n) per op, trivially correct.

It exists for two consumers:

* the equivalence property tests (``tests/test_state_slab_equivalence.py``)
  drive both implementations with identically-seeded generators through
  randomized operation sequences and require the full observable state —
  ids, owners, main flags, remaining key multisets, *and* the RNG stream
  position — to stay identical;
* the churn-storm / Sybil-storm microbenchmarks in
  ``benchmarks/bench_core_ops.py`` measure the slab's speedup against
  this baseline.

Do not optimise this class.  Its value is being obviously correct.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IdSpaceError, RingError
from repro.hashspace.idspace import IdSpace
from repro.sim.arcops import in_arc_mask, responsible_slots
from repro.sim.owners import PROV_BENEVOLENT, PROV_HONEST

__all__ = ["NaiveRingState"]

_U64 = np.uint64


class NaiveRingState:
    """Reference ring with exact task-key accounting (unoptimised)."""

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        owner: np.ndarray,
        is_main: np.ndarray,
        keys: list[np.ndarray],
        rng: np.random.Generator,
        provenance: np.ndarray | None = None,
    ):
        if space.bits > 64:
            raise IdSpaceError("NaiveRingState requires a <=64-bit id space")
        self.space = space
        self.ids = np.asarray(ids, dtype=_U64)
        self.owner = np.asarray(owner, dtype=np.int64)
        self.is_main = np.asarray(is_main, dtype=bool)
        self.keys: list[np.ndarray] = [np.asarray(k, dtype=_U64) for k in keys]
        self.counts = np.array([k.size for k in self.keys], dtype=np.int64)
        if provenance is None:
            self.provenance = np.where(
                self.is_main, PROV_HONEST, PROV_BENEVOLENT
            ).astype(np.int8)
        else:
            self.provenance = np.asarray(provenance, dtype=np.int8)
        self.rng = rng
        self.n_sybil_slots = int((~self.is_main).sum())
        if self.ids.size and not (self.ids[:-1] < self.ids[1:]).all():
            raise RingError("slot ids must be strictly increasing")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        space: IdSpace,
        node_ids: np.ndarray,
        node_owners: np.ndarray,
        task_keys: np.ndarray,
        rng: np.random.Generator,
    ) -> "NaiveRingState":
        node_ids = np.asarray(node_ids, dtype=_U64)
        node_owners = np.asarray(node_owners, dtype=np.int64)
        if node_ids.size == 0:
            raise RingError("cannot build an empty ring")
        if np.unique(node_ids).size != node_ids.size:
            raise RingError("node ids must be unique")
        order = np.argsort(node_ids)
        ids = node_ids[order]
        owner = node_owners[order]
        is_main = np.ones(ids.size, dtype=bool)

        task_keys = np.asarray(task_keys, dtype=_U64)
        slot_idx = responsible_slots(ids, task_keys)
        grouping = np.argsort(slot_idx, kind="stable")
        grouped = task_keys[grouping]
        per_slot = np.bincount(slot_idx, minlength=ids.size)
        offsets = np.concatenate(([0], np.cumsum(per_slot)))
        keys = [
            grouped[offsets[i] : offsets[i + 1]].copy()
            for i in range(ids.size)
        ]
        return cls(space, ids, owner, is_main, keys, rng)

    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return self.ids.size

    def total_remaining(self) -> int:
        return int(self.counts.sum())

    def remaining_keys(self, slot: int) -> np.ndarray:
        return self.keys[slot][: self.counts[slot]]

    def pred_id(self, slot: int) -> int:
        return int(self.ids[slot - 1])

    def id_exists(self, ident: int) -> bool:
        pos = int(np.searchsorted(self.ids, _U64(ident)))
        return pos < self.n_slots and int(self.ids[pos]) == ident

    def slots_of_owner(self, owner: int) -> np.ndarray:
        return np.flatnonzero(self.owner == owner)

    def owner_loads(self, n_owners: int) -> np.ndarray:
        loads = np.bincount(
            self.owner, weights=self.counts, minlength=n_owners
        )
        return loads.astype(np.int64)

    # ------------------------------------------------------------------
    def add_tasks(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=_U64)
        if keys.size == 0:
            return
        slot_idx = responsible_slots(self.ids, keys)
        for slot in np.unique(slot_idx):
            fresh = keys[slot_idx == slot]
            merged = np.concatenate((self.remaining_keys(int(slot)), fresh))
            merged = self.rng.permutation(merged)
            self.keys[int(slot)] = merged
            self.counts[int(slot)] = merged.size

    def consume_at(self, slots: np.ndarray, amounts: np.ndarray) -> None:
        self.counts[slots] -= amounts
        if (self.counts[slots] < 0).any():
            raise RingError("consumed more tasks than a slot holds")

    def insert_slot(
        self,
        new_id: int,
        owner: int,
        *,
        is_main: bool,
        provenance: int | None = None,
    ) -> tuple[int, int]:
        if provenance is None:
            provenance = PROV_HONEST if is_main else PROV_BENEVOLENT
        nid = _U64(self.space.validate(new_id))
        pos = int(np.searchsorted(self.ids, nid, side="left"))
        if pos < self.n_slots and self.ids[pos] == nid:
            raise IdSpaceError(f"identifier {new_id} already on the ring")
        succ = pos if pos < self.n_slots else 0
        pred = self.pred_id(succ)

        remaining = self.remaining_keys(succ)
        mask = in_arc_mask(remaining, pred, int(nid))
        taken = remaining[mask]
        kept = remaining[~mask]

        self.ids = np.insert(self.ids, pos, nid)
        self.owner = np.insert(self.owner, pos, owner)
        self.is_main = np.insert(self.is_main, pos, is_main)
        self.counts = np.insert(self.counts, pos, taken.size)
        self.provenance = np.insert(
            self.provenance, pos, np.int8(provenance)
        )
        self.keys.insert(pos, taken)
        if not is_main:
            self.n_sybil_slots += 1

        succ_new = succ + 1 if pos <= succ else succ
        self.keys[succ_new] = kept
        self.counts[succ_new] = kept.size
        return pos, int(taken.size)

    def remove_slot(self, slot: int) -> int:
        if self.n_slots <= 1:
            raise RingError("cannot remove the last slot on the ring")
        succ = (slot + 1) % self.n_slots
        moved = self.remaining_keys(slot)
        if moved.size:
            merged = np.concatenate((moved, self.remaining_keys(succ)))
            merged = self.rng.permutation(merged)
        else:
            merged = self.remaining_keys(succ).copy()

        if not self.is_main[slot]:
            self.n_sybil_slots -= 1
        self.ids = np.delete(self.ids, slot)
        self.owner = np.delete(self.owner, slot)
        self.is_main = np.delete(self.is_main, slot)
        self.counts = np.delete(self.counts, slot)
        self.provenance = np.delete(self.provenance, slot)
        self.keys.pop(slot)

        succ_new = succ - 1 if succ > slot else succ
        self.keys[succ_new] = merged
        self.counts[succ_new] = merged.size
        return int(moved.size)

    def remove_owner(self, owner: int) -> int:
        moved = 0
        while True:
            slots = self.slots_of_owner(owner)
            if slots.size == 0:
                return moved
            moved += self.remove_slot(int(slots[0]))

    def retire_sybils(self, owner: int) -> int:
        removed = 0
        while True:
            slots = np.flatnonzero((self.owner == owner) & ~self.is_main)
            # never empty the ring: a Sybil that is the last slot alive
            # (its owner's main already gone to churn) stays put
            if slots.size == 0 or self.n_slots <= 1:
                return removed
            self.remove_slot(int(slots[0]))
            removed += 1

    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        if self.n_slots == 0:
            raise RingError("empty ring")
        if not (self.ids[:-1] < self.ids[1:]).all():
            raise RingError("ids not strictly increasing")
        if (self.counts < 0).any():
            raise RingError("negative remaining count")
        for i in range(self.n_slots):
            if self.counts[i] > self.keys[i].size:
                raise RingError(f"slot {i}: count exceeds stored keys")
        if self.n_sybil_slots != int((~self.is_main).sum()):
            raise RingError("sybil slot counter out of sync")
        if self.provenance.size != self.n_slots:
            raise RingError("slot provenance out of sync")
